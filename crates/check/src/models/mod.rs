//! The five protocol models, each mirroring one concurrency core of
//! the real system path for path:
//!
//! * [`demand_publish`] — the lock-free demand snapshot's
//!   remaining → mode → epoch publication order
//!   ([`fastmatch_engine::shared`]).
//! * [`park_exit`] — `ParallelMatch`'s parked/exited worker
//!   accounting ([`fastmatch_engine::exec::all_live_parked`]).
//! * [`admission_steal`] — the service's admission bound and
//!   per-worker queues with stealing
//!   ([`fastmatch_engine::service::queue_scan_order`]).
//! * [`live_lifecycle`] — the live table's append → freeze →
//!   install-before-seal → snapshot lifecycle
//!   ([`fastmatch_store::live`]).
//! * [`wal_recovery`] — the WAL → seal → crash → recovery side of the
//!   same lifecycle ([`fastmatch_store::live::wal`]).
//!
//! Every model imports the extracted pure step functions the real code
//! executes, so protocol drift between implementation and model shows
//! up as a compile error or a checker violation, not silence. Each
//! also carries test-only mutations that reintroduce a historical (or
//! plausible) bug; the `finds_*` unit tests assert the explorer
//! catches them.

pub mod admission_steal;
pub mod demand_publish;
pub mod live_lifecycle;
pub mod park_exit;
pub mod wal_recovery;

pub use admission_steal::AdmissionSteal;
pub use demand_publish::DemandPublish;
pub use live_lifecycle::LiveLifecycle;
pub use park_exit::ParkExit;
pub use wal_recovery::WalRecovery;
