//! Model of the live table's append → freeze → install-before-seal →
//! snapshot lifecycle ([`fastmatch_store::live`]).
//!
//! Appenders fill the in-memory delta under the state lock; a full
//! delta is *frozen and installed in the same critical section* (the
//! entry is visible to snapshots immediately) and only then queued for
//! the background sealer, whose `Mem → File` swap never changes row or
//! block counts — and whose *failure* leaves the in-memory entry
//! serving reads. Snapshot clients take, clone and drop snapshots
//! concurrently; the watermark arithmetic
//! ([`build_seg_starts`], [`locate_segment`]) and the pin accounting
//! ([`snapshot_pinned_bytes`]) are the extracted functions the real
//! [`fastmatch_store::live::LiveTable::snapshot`] runs. Named
//! invariants (DESIGN.md § "Concurrency protocols"):
//!
//! * `no-visibility-gap` — every snapshot covers exactly the rows
//!   appended before it: sealed watermark plus tail equals the append
//!   count, with no frozen-but-invisible window.
//! * `snapshot-is-prefix` — a snapshot's watermark is immutable: the
//!   entries it references never change row/block extent afterwards,
//!   and its `seg_starts` stays the prefix-sum of those entries (so
//!   [`locate_segment`] keeps resolving identically for its lifetime).
//! * `pin-balance` — the table's pinned-bytes gauge always equals the
//!   sum of live snapshots' charges, and returns to zero once the last
//!   clone drops.
//!
//! `LiveLifecycle::with_install_after_seal` mutates freeze to
//! install the entry only when the seal completes — the plausible
//! "defer installation" refactor — and `finds_install_after_seal_gap`
//! asserts the explorer catches the visibility window it opens.

use std::collections::VecDeque;

use fastmatch_store::live::snapshot::locate_segment;
use fastmatch_store::live::{build_seg_starts, snapshot_pinned_bytes};

use crate::explorer::{Model, Step, Violation};

/// Attributes per row (matches the 2-attribute test schema; the pin
/// arithmetic scales linearly so one value suffices).
const N_ATTRS: usize = 2;

/// One installed segment entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Entry {
    rows: usize,
    blocks: usize,
    /// `false` = in-memory (`Mem`), `true` = sealed to file (`File`).
    sealed: bool,
}

/// One live snapshot with its frozen watermark.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Snap {
    seg_starts: Vec<usize>,
    sealed_rows: usize,
    tail_rows: usize,
    /// Appended rows at snapshot time (ghost; must equal
    /// `sealed_rows + tail_rows`).
    expected_rows: usize,
    pinned: u64,
    /// Live clones sharing the pin.
    refs: u8,
}

/// Full protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Ground-truth rows appended.
    appended: usize,
    /// Active delta rows.
    mem_rows: usize,
    /// Rows frozen but not yet installed (always 0 in the real
    /// protocol; nonzero only under the install-after-seal mutation).
    uninstalled_rows: usize,
    entries: Vec<Entry>,
    /// Pending seal jobs: (entry index or, under the mutation, the row
    /// count to install on completion).
    seal_queue: VecDeque<usize>,
    snaps: Vec<Snap>,
    /// The pinned-bytes gauge.
    gauge: u64,
    /// Snapshots taken so far (bounds the client).
    taken: u8,
    /// Clones made so far (bounds the client).
    cloned: u8,
    /// Seal failures observed (counted, never fatal).
    seal_fails: u8,
}

/// The live-table lifecycle model.
#[derive(Debug)]
pub struct LiveLifecycle {
    /// Rows the appender writes in total.
    appends: usize,
    /// Freeze threshold (rows per delta; one row per block, so blocks
    /// = rows).
    rows_per_delta: usize,
    /// Snapshot budget.
    max_snaps: u8,
    /// Clone budget.
    max_clones: u8,
    /// Mutation: install the frozen delta only after its seal
    /// completes.
    install_after_seal: bool,
}

impl LiveLifecycle {
    /// The real protocol: freeze installs the entry immediately.
    pub fn new(appends: usize, rows_per_delta: usize, max_snaps: u8, max_clones: u8) -> Self {
        LiveLifecycle {
            appends,
            rows_per_delta,
            max_snaps,
            max_clones,
            install_after_seal: false,
        }
    }

    /// Plausible-refactor mutation: defer installation to seal
    /// completion, opening a window where frozen rows are invisible to
    /// snapshots.
    #[cfg(test)]
    pub fn with_install_after_seal(
        appends: usize,
        rows_per_delta: usize,
        max_snaps: u8,
        max_clones: u8,
    ) -> Self {
        LiveLifecycle {
            appends,
            rows_per_delta,
            max_snaps,
            max_clones,
            install_after_seal: true,
        }
    }

    /// Rows held by still-in-memory (unsealed) installed entries —
    /// what a snapshot's pin charges for beyond its tail copy.
    fn frozen_mem_rows(s: &State) -> usize {
        s.entries.iter().filter(|e| !e.sealed).map(|e| e.rows).sum()
    }
}

/// Actor ids.
const APPENDER: usize = 0;
const SEALER: usize = 1;
const CLIENT: usize = 2;

/// Client step ids: take, then clone/drop keyed by snapshot index.
const TAKE: usize = 0;
const CLONE_BASE: usize = 10;
const DROP_BASE: usize = 40;

impl Model for LiveLifecycle {
    type State = State;

    fn name(&self) -> &'static str {
        "live_lifecycle"
    }

    fn initial(&self) -> State {
        State {
            appended: 0,
            mem_rows: 0,
            uninstalled_rows: 0,
            entries: Vec::new(),
            seal_queue: VecDeque::new(),
            snaps: Vec::new(),
            gauge: 0,
            taken: 0,
            cloned: 0,
            seal_fails: 0,
        }
    }

    fn enabled(&self, s: &State) -> Vec<Step> {
        let mut steps = Vec::new();
        if s.appended < self.appends {
            let freezes = s.mem_rows + 1 == self.rows_per_delta;
            let label = if freezes {
                "append row, freeze + install delta"
            } else {
                "append row"
            };
            steps.push(Step::new(APPENDER, 0, label));
        }
        if !s.seal_queue.is_empty() {
            steps.push(Step::new(SEALER, 0, "seal job: write ok, swap Mem→File"));
            steps.push(Step::new(SEALER, 1, "seal job: write fails, keep Mem"));
        }
        if s.taken < self.max_snaps {
            steps.push(Step::new(CLIENT, TAKE, "take snapshot"));
        }
        for (i, snap) in s.snaps.iter().enumerate() {
            if snap.refs > 0 {
                if s.cloned < self.max_clones {
                    steps.push(Step::new(
                        CLIENT,
                        CLONE_BASE + i,
                        format!("clone snapshot {i}"),
                    ));
                }
                steps.push(Step::new(
                    CLIENT,
                    DROP_BASE + i,
                    format!("drop snapshot {i}"),
                ));
            }
        }
        steps
    }

    fn apply(&self, s: &State, step: &Step) -> State {
        let mut n = s.clone();
        match step.actor {
            APPENDER => {
                // One critical section, like append_checked: extend the
                // delta and, if it filled, freeze + install + queue the
                // seal job before the lock drops.
                n.mem_rows += 1;
                n.appended += 1;
                if n.mem_rows == self.rows_per_delta {
                    if self.install_after_seal {
                        n.uninstalled_rows += n.mem_rows;
                        n.seal_queue.push_back(n.mem_rows);
                    } else {
                        n.entries.push(Entry {
                            rows: n.mem_rows,
                            blocks: n.mem_rows,
                            sealed: false,
                        });
                        n.seal_queue.push_back(n.entries.len() - 1);
                    }
                    n.mem_rows = 0;
                }
            }
            SEALER => {
                let job = n
                    .seal_queue
                    .pop_front()
                    .expect("seal enabled on empty queue");
                if self.install_after_seal {
                    // Mutation: the entry only becomes visible now (or,
                    // on failure, stays in memory but is installed too —
                    // the window is before this point either way).
                    n.entries.push(Entry {
                        rows: job,
                        blocks: job,
                        sealed: step.id == 0,
                    });
                    n.uninstalled_rows -= job;
                } else if step.id == 0 {
                    n.entries[job].sealed = true;
                }
                if step.id == 1 {
                    n.seal_fails += 1;
                }
            }
            CLIENT => match step.id {
                TAKE => {
                    // The real snapshot(): watermark, pin charge and
                    // gauge bump in one critical section, via the same
                    // extracted arithmetic LiveTable::snapshot uses.
                    let seg_starts = build_seg_starts(s.entries.iter().map(|e| e.blocks));
                    let sealed_rows: usize = s.entries.iter().map(|e| e.rows).sum();
                    let pinned =
                        snapshot_pinned_bytes(Self::frozen_mem_rows(s), s.mem_rows, N_ATTRS);
                    n.gauge += pinned;
                    n.taken += 1;
                    n.snaps.push(Snap {
                        seg_starts,
                        sealed_rows,
                        tail_rows: s.mem_rows,
                        expected_rows: s.appended,
                        pinned,
                        refs: 1,
                    });
                }
                id if id >= DROP_BASE => {
                    let snap = &mut n.snaps[id - DROP_BASE];
                    snap.refs -= 1;
                    if snap.refs == 0 {
                        // Last clone: SnapshotPin::drop releases the
                        // whole charge exactly once.
                        n.gauge -= snap.pinned;
                    }
                }
                id => {
                    n.snaps[id - CLONE_BASE].refs += 1;
                    n.cloned += 1;
                }
            },
            other => unreachable!("unknown actor {other}"),
        }
        n
    }

    fn check(&self, s: &State) -> Result<(), Violation> {
        for (i, snap) in s.snaps.iter().enumerate() {
            if snap.sealed_rows + snap.tail_rows != snap.expected_rows {
                return Err(Violation::new(
                    "no-visibility-gap",
                    format!(
                        "snapshot {i} sees {} sealed + {} tail rows but {} were appended",
                        snap.sealed_rows, snap.tail_rows, snap.expected_rows
                    ),
                ));
            }
            if snap.refs == 0 {
                continue;
            }
            // Watermark immutability: the entries this snapshot froze
            // must still prefix-sum to its seg_starts, and every sealed
            // block must resolve to the segment that owned it at
            // snapshot time.
            let frozen = snap.seg_starts.len() - 1;
            let current = build_seg_starts(s.entries.iter().take(frozen).map(|e| e.blocks));
            if s.entries.len() < frozen || current != snap.seg_starts {
                return Err(Violation::new(
                    "snapshot-is-prefix",
                    format!(
                        "snapshot {i} froze seg_starts {:?} but the table now prefixes to {:?}",
                        snap.seg_starts, current
                    ),
                ));
            }
            for b in 0..*snap.seg_starts.last().unwrap_or(&0) {
                let seg = locate_segment(&snap.seg_starts, b);
                if !(snap.seg_starts[seg]..snap.seg_starts[seg + 1]).contains(&b) {
                    return Err(Violation::new(
                        "snapshot-is-prefix",
                        format!("block {b} resolved outside segment {seg}"),
                    ));
                }
            }
        }
        let live: u64 = s
            .snaps
            .iter()
            .filter(|p| p.refs > 0)
            .map(|p| p.pinned)
            .sum();
        if s.gauge != live {
            return Err(Violation::new(
                "pin-balance",
                format!("gauge {} but live snapshots pin {live}", s.gauge),
            ));
        }
        Ok(())
    }

    fn check_quiescent(&self, s: &State) -> Result<(), Violation> {
        // Quiescence: appender done, sealer drained, every snapshot
        // dropped — so the gauge must be fully released.
        if s.gauge != 0 {
            return Err(Violation::new(
                "pin-balance",
                format!("gauge {} after the last snapshot dropped", s.gauge),
            ));
        }
        if !s.seal_queue.is_empty() {
            return Err(Violation::new(
                "pin-balance",
                "seal queue not drained at quiescence".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;

    #[test]
    fn current_lifecycle_is_clean() {
        // 4 appends at 2 rows/delta: two freezes, seal success *and*
        // failure branches, two snapshots with a clone racing appends
        // and seals.
        let stats = Explorer::new(LiveLifecycle::new(4, 2, 2, 1))
            .explore()
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.truncated, 0, "scope must be fully explored");
        assert!(stats.quiescent >= 1);
    }

    #[test]
    fn finds_install_after_seal_gap() {
        let failure = Explorer::new(LiveLifecycle::with_install_after_seal(2, 2, 1, 0))
            .explore()
            .expect_err("deferring installation must open a visibility gap");
        assert_eq!(failure.violation.invariant, "no-visibility-gap");
    }

    #[test]
    fn walk_mode_agrees_with_exhaustion() {
        let stats = Explorer::new(LiveLifecycle::new(4, 2, 2, 1))
            .walk(0x11fe_c7c1e, 500)
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.schedules, 500);
        let failure = Explorer::new(LiveLifecycle::with_install_after_seal(2, 2, 1, 0))
            .walk(0x11fe_c7c1e, 500)
            .expect_err("soak mode must also find the visibility gap");
        assert_eq!(failure.violation.invariant, "no-visibility-gap");
    }
}
