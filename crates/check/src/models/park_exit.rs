//! Model of `ParallelMatch`'s parked/exited worker accounting
//! ([`fastmatch_engine::exec::all_live_parked`]).
//!
//! Shard workers stream messages to the statistics loop: `Batch` for
//! ingested blocks, `IdlePass` when a full pass over their shard found
//! nothing matching current demand (then they park on the demand
//! epoch), `ShardExhausted` when every block is read (then they exit).
//! The engine's wake rule — escalate demand and bump the epoch when
//! *every still-live* worker is parked — is exactly the extracted
//! [`all_live_parked`] the real stats loop calls, both on `IdlePass`
//! **and again when an exhaustion shrinks the live set**. Named
//! invariants (DESIGN.md § "Concurrency protocols"):
//!
//! * `all-parked-implies-wake` — after every engine step, the engine's
//!   view never rests in a state where the whole live set is parked
//!   (the wake must have fired inside the same step).
//! * `no-all-parked-deadlock` — no worker is still parked at
//!   quiescence.
//! * `exact-finish-only-when-exhausted` — the engine declares the
//!   exact finish only once its view shows every worker exhausted, and
//!   every block was ingested by then.
//!
//! The historical PR-2 protocol tallied parked/exited workers as
//! anonymous counters and only ran the wake check when an `IdlePass`
//! arrived — a late `ShardExhausted` shrank the live set without
//! re-checking, leaving the last parked worker asleep forever.
//! `ParkExit::with_anonymous_tally` reintroduces that rule and
//! `finds_pr2_anonymous_park_tally_deadlock` asserts the explorer
//! re-finds the deadlock.

use std::collections::VecDeque;

use fastmatch_engine::exec::all_live_parked;

use crate::explorer::{Model, Step, Violation};

/// A message from a shard worker to the stats loop, mirroring the real
/// `Msg` enum.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Msg {
    /// One ingested block.
    Batch,
    /// A full pass found nothing; the sender is parking.
    IdlePass(usize),
    /// The sender's shard is fully read; the sender exited.
    ShardExhausted(usize),
}

/// Worker lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Worker {
    /// Scanning its shard.
    Scanning,
    /// Parked on the demand epoch it last observed.
    Parked(u8),
    /// Exited after `ShardExhausted`.
    Exited,
}

/// Full protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Per worker: blocks matching the initial (selective) demand.
    useful: Vec<u8>,
    /// Per worker: blocks matching only after demand escalates.
    stale: Vec<u8>,
    phase: Vec<Worker>,
    /// In-flight messages (the mpsc channel).
    queue: VecDeque<Msg>,
    /// Demand epoch; a bump wakes parked workers.
    epoch: u8,
    /// Whether demand has escalated (stale blocks now match).
    escalated: bool,
    /// Engine's per-worker idle view (`IdlePass` seen, not yet woken).
    idle: Vec<bool>,
    /// Engine's per-worker exhausted view.
    exhausted: Vec<bool>,
    /// Anonymous-tally mirror (used for decisions only under the
    /// mutation; always maintained so states stay canonical).
    parked_count: u8,
    live_count: u8,
    /// Blocks the engine has ingested.
    batches: u8,
    /// Engine declared the exact finish.
    done: bool,
}

/// The park/exit model. Construct with [`ParkExit::new`] for the real
/// identity-tracking protocol.
#[derive(Debug)]
pub struct ParkExit {
    /// Per worker: (useful blocks, stale blocks).
    shards: Vec<(u8, u8)>,
    /// Mutation flag: PR-2's anonymous counters without the
    /// exhaustion-time re-check.
    anonymous_tally: bool,
}

impl ParkExit {
    /// The real protocol: identity vectors, wake re-checked on both
    /// `IdlePass` and `ShardExhausted`.
    pub fn new(shards: Vec<(u8, u8)>) -> Self {
        ParkExit {
            shards,
            anonymous_tally: false,
        }
    }

    /// Historical PR-2 mutation: anonymous parked/live counters, wake
    /// checked only when an `IdlePass` arrives.
    #[cfg(test)]
    pub fn with_anonymous_tally(shards: Vec<(u8, u8)>) -> Self {
        ParkExit {
            shards,
            anonymous_tally: true,
        }
    }

    /// Actor id of the engine (workers are 0..n).
    fn engine_actor(&self) -> usize {
        self.shards.len()
    }

    /// Total blocks across all shards — the exact-finish target.
    fn total_blocks(&self) -> u8 {
        self.shards.iter().map(|(u, s)| u + s).sum()
    }

    /// Escalates demand: bump the epoch (waking parked workers) and
    /// reset the engine's idle view for the new pass.
    fn escalate(n: &mut State) {
        n.epoch += 1;
        n.escalated = true;
        n.idle.iter_mut().for_each(|i| *i = false);
        n.parked_count = 0;
    }
}

impl Model for ParkExit {
    type State = State;

    fn name(&self) -> &'static str {
        "park_exit"
    }

    fn initial(&self) -> State {
        let n = self.shards.len();
        State {
            useful: self.shards.iter().map(|&(u, _)| u).collect(),
            stale: self.shards.iter().map(|&(_, s)| s).collect(),
            phase: vec![Worker::Scanning; n],
            queue: VecDeque::new(),
            epoch: 0,
            escalated: false,
            idle: vec![false; n],
            exhausted: vec![false; n],
            parked_count: 0,
            live_count: n as u8,
            batches: 0,
            done: false,
        }
    }

    fn enabled(&self, s: &State) -> Vec<Step> {
        let mut steps = Vec::new();
        for w in 0..self.shards.len() {
            match s.phase[w] {
                Worker::Scanning => {
                    let label = if s.useful[w] > 0 || (s.escalated && s.stale[w] > 0) {
                        "send batch"
                    } else if !s.escalated && s.stale[w] > 0 {
                        "send idle-pass, park"
                    } else {
                        "send shard-exhausted, exit"
                    };
                    steps.push(Step::new(w, 0, label));
                }
                Worker::Parked(at) if s.epoch > at => {
                    steps.push(Step::new(w, 1, format!("wake e{}", s.epoch)));
                }
                Worker::Parked(_) | Worker::Exited => {}
            }
        }
        if let Some(msg) = s.queue.front() {
            let label = match msg {
                Msg::Batch => "recv batch".to_string(),
                Msg::IdlePass(w) => format!("recv idle-pass(w{w})"),
                Msg::ShardExhausted(w) => format!("recv shard-exhausted(w{w})"),
            };
            steps.push(Step::new(self.engine_actor(), 0, label));
        }
        steps
    }

    fn apply(&self, s: &State, step: &Step) -> State {
        let mut n = s.clone();
        if step.actor < self.shards.len() {
            let w = step.actor;
            match step.id {
                0 => {
                    if s.useful[w] > 0 {
                        n.useful[w] -= 1;
                        n.queue.push_back(Msg::Batch);
                    } else if s.escalated && s.stale[w] > 0 {
                        n.stale[w] -= 1;
                        n.queue.push_back(Msg::Batch);
                    } else if !s.escalated && s.stale[w] > 0 {
                        n.queue.push_back(Msg::IdlePass(w));
                        n.phase[w] = Worker::Parked(s.epoch);
                    } else {
                        n.queue.push_back(Msg::ShardExhausted(w));
                        n.phase[w] = Worker::Exited;
                    }
                }
                _ => n.phase[w] = Worker::Scanning,
            }
        } else {
            match n.queue.pop_front().expect("recv enabled on empty queue") {
                Msg::Batch => n.batches += 1,
                Msg::IdlePass(w) => {
                    n.idle[w] = true;
                    n.parked_count += 1;
                    let wake = if self.anonymous_tally {
                        n.live_count > 0 && n.parked_count >= n.live_count
                    } else {
                        all_live_parked(&n.idle, &n.exhausted)
                    };
                    if wake {
                        Self::escalate(&mut n);
                    }
                }
                Msg::ShardExhausted(w) => {
                    n.exhausted[w] = true;
                    n.idle[w] = false;
                    n.live_count -= 1;
                    // The load-bearing re-check: the live set just
                    // shrank, so the remaining workers may now all be
                    // parked. PR-2's anonymous tally skipped it.
                    if !self.anonymous_tally && all_live_parked(&n.idle, &n.exhausted) {
                        Self::escalate(&mut n);
                    }
                    if n.exhausted.iter().all(|&e| e) {
                        n.done = true;
                    }
                }
            }
        }
        n
    }

    fn check(&self, s: &State) -> Result<(), Violation> {
        if all_live_parked(&s.idle, &s.exhausted) {
            return Err(Violation::new(
                "all-parked-implies-wake",
                format!(
                    "engine view rests with every live worker parked \
                     (idle {:?}, exhausted {:?})",
                    s.idle, s.exhausted
                ),
            ));
        }
        if s.done && !s.exhausted.iter().all(|&e| e) {
            return Err(Violation::new(
                "exact-finish-only-when-exhausted",
                format!("finished exact with exhausted view {:?}", s.exhausted),
            ));
        }
        Ok(())
    }

    fn check_quiescent(&self, s: &State) -> Result<(), Violation> {
        if let Some(w) = s.phase.iter().position(|p| matches!(p, Worker::Parked(_))) {
            return Err(Violation::new(
                "no-all-parked-deadlock",
                format!("worker {w} is parked at quiescence — nobody left to wake it"),
            ));
        }
        if !s.done || s.batches != self.total_blocks() {
            return Err(Violation::new(
                "exact-finish-only-when-exhausted",
                format!(
                    "quiescent without the exact finish: done={}, {}/{} blocks ingested",
                    s.done,
                    s.batches,
                    self.total_blocks()
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;

    /// The minimal historical scenario: worker 0's shard holds nothing
    /// (it exhausts immediately); worker 1 holds one block that only
    /// matches after escalation (it idle-parks first).
    fn historical_shards() -> Vec<(u8, u8)> {
        vec![(0, 0), (0, 1)]
    }

    #[test]
    fn current_protocol_has_no_parked_deadlock() {
        for shards in [
            historical_shards(),
            vec![(1, 1), (0, 1)],
            vec![(0, 1), (0, 1), (1, 0)],
        ] {
            let stats = Explorer::new(ParkExit::new(shards))
                .explore()
                .unwrap_or_else(|f| panic!("{f}"));
            assert_eq!(stats.truncated, 0, "scope must be fully explored");
            assert!(stats.quiescent >= 1);
        }
    }

    #[test]
    fn finds_pr2_anonymous_park_tally_deadlock() {
        let failure = Explorer::new(ParkExit::with_anonymous_tally(historical_shards()))
            .explore()
            .expect_err("the anonymous-tally deadlock must be found");
        // Two lenses on the same bug: the engine's view rests all-parked
        // (safety) and the parked worker is never woken (liveness).
        // Which one the search trips first depends on visit order; both
        // are the historical deadlock.
        assert!(
            ["all-parked-implies-wake", "no-all-parked-deadlock"]
                .contains(&failure.violation.invariant),
            "unexpected invariant: {}",
            failure.violation
        );
        let trace = failure.to_string();
        assert!(
            trace.contains("recv shard-exhausted(w0)"),
            "the failing schedule must show the live set shrinking:\n{trace}"
        );
    }

    #[test]
    fn walk_mode_agrees_with_exhaustion() {
        let stats = Explorer::new(ParkExit::new(vec![(1, 1), (0, 1)]))
            .walk(0x9a12_77e1, 500)
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.schedules, 500);
        let failure = Explorer::new(ParkExit::with_anonymous_tally(historical_shards()))
            .walk(0x9a12_77e1, 500)
            .expect_err("soak mode must also find the historical deadlock");
        assert!(["all-parked-implies-wake", "no-all-parked-deadlock"]
            .contains(&failure.violation.invariant));
    }
}
