//! Model of the lock-free demand publication protocol
//! ([`fastmatch_engine::shared::SharedDemand`]).
//!
//! One publisher runs `rounds` publications, each executing the real
//! [`PUBLISH_ORDER`] action list (remaining → mode → epoch). Parked
//! readers wait on the epoch and, when woken, read the snapshot;
//! polling readers read mode then demand without touching the epoch.
//! Rounds double as ghost values: `rem_round` / `mode_round` track
//! *which publication's* stores are currently visible, and every epoch
//! bump records a *claim* — the round it announces as complete. The
//! named invariants (DESIGN.md § "Concurrency protocols"):
//!
//! * `wake-sees-complete-mode` — a reader woken at epoch `e` observes
//!   a mode at least as new as the round bump `e` claimed.
//! * `wake-sees-complete-demand` — likewise for the per-candidate
//!   demand counts.
//! * `mode-implies-demand` — a polling reader that observes round
//!   `r`'s mode observes demand from round ≥ `r` (the release-store
//!   pairing in the real code).
//! * `one-bump-per-publish` — at quiescence the epoch equals the
//!   number of publications (exactly one bump each).
//!
//! The historical PR-2 protocol bumped the epoch in both `set_mode`
//! and `publish_remaining`; `DemandPublish::with_two_bump_publish`
//! reintroduces that order and the `finds_pr2_two_bump_publish_bug`
//! test asserts the explorer re-finds the race.

use fastmatch_engine::shared::{PublishAction, PUBLISH_ORDER};

use crate::explorer::{Model, Step, Violation};

/// Reader lifecycle. `Parked` readers are woken only by an epoch they
/// have not seen; `Woken` readers read the snapshot next.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Reader {
    /// Waiting for `epoch > seen`.
    Parked {
        /// Epoch the reader went to sleep at.
        seen: u32,
    },
    /// Woken at `epoch`, holding the waking bump's completeness claim.
    Woken {
        /// Epoch observed at wake.
        epoch: u32,
        /// Round the waking bump claimed complete.
        claim: u32,
    },
}

/// Full protocol state; see the module docs for the ghost encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Publisher program counter (index into rounds × order).
    pc: usize,
    /// Round whose `remaining` stores are visible (0 = none yet).
    rem_round: u32,
    /// Round whose mode store is visible.
    mode_round: u32,
    /// Epoch counter (number of bumps so far).
    epoch: u32,
    /// `claims[i]` = round bump `i + 1` announced as complete.
    claims: Vec<u32>,
    /// Parked readers.
    readers: Vec<Reader>,
    /// Poller program counter (2 steps per poll).
    poll_pc: usize,
    /// Mode round the poller saw in its half-finished poll.
    poll_mode: Option<u32>,
    /// Last completed wake observation: (claim, mode_round, rem_round).
    wake_obs: Option<(u32, u32, u32)>,
    /// Last completed poll observation: (mode_round, rem_round).
    poll_obs: Option<(u32, u32)>,
}

/// The demand publication model. Construct with [`DemandPublish::new`]
/// for the real protocol order.
#[derive(Debug)]
pub struct DemandPublish {
    rounds: u32,
    parked_readers: usize,
    polls: usize,
    /// Per-round publisher action list — [`PUBLISH_ORDER`] unless a
    /// test mutation replaced it.
    order: Vec<PublishAction>,
}

impl DemandPublish {
    /// The real protocol: each publication runs [`PUBLISH_ORDER`].
    pub fn new(rounds: u32, parked_readers: usize, polls: usize) -> Self {
        DemandPublish {
            rounds,
            parked_readers,
            polls,
            order: PUBLISH_ORDER.to_vec(),
        }
    }

    /// Historical PR-2 mutation: `set_mode` and `publish_remaining`
    /// each bump the epoch, so one logical publication bumps twice and
    /// the first bump lands before the demand stores.
    #[cfg(test)]
    pub fn with_two_bump_publish(rounds: u32, parked_readers: usize, polls: usize) -> Self {
        DemandPublish {
            rounds,
            parked_readers,
            polls,
            order: vec![
                PublishAction::StoreMode,
                PublishAction::BumpEpoch,
                PublishAction::StoreRemaining,
                PublishAction::BumpEpoch,
            ],
        }
    }

    /// Bumps per publication under the configured order (1 for the
    /// real protocol).
    fn bumps_per_round(&self) -> u32 {
        self.order
            .iter()
            .filter(|a| **a == PublishAction::BumpEpoch)
            .count() as u32
    }

    /// Actor ids: 0 = publisher, 1..=parked = parked readers, then the
    /// poller.
    fn poller_actor(&self) -> usize {
        1 + self.parked_readers
    }
}

impl Model for DemandPublish {
    type State = State;

    fn name(&self) -> &'static str {
        "demand_publish"
    }

    fn initial(&self) -> State {
        State {
            pc: 0,
            rem_round: 0,
            mode_round: 0,
            epoch: 0,
            claims: Vec::new(),
            readers: vec![Reader::Parked { seen: 0 }; self.parked_readers],
            poll_pc: 0,
            poll_mode: None,
            wake_obs: None,
            poll_obs: None,
        }
    }

    fn enabled(&self, s: &State) -> Vec<Step> {
        let mut steps = Vec::new();
        let program_len = self.rounds as usize * self.order.len();
        if s.pc < program_len {
            let round = s.pc / self.order.len() + 1;
            let label = match self.order[s.pc % self.order.len()] {
                PublishAction::StoreRemaining => format!("store-remaining r{round}"),
                PublishAction::StoreMode => format!("store-mode r{round}"),
                PublishAction::BumpEpoch => format!("bump-epoch r{round}"),
            };
            steps.push(Step::new(0, 0, label));
        }
        for (i, reader) in s.readers.iter().enumerate() {
            match reader {
                Reader::Parked { seen } if s.epoch > *seen => {
                    steps.push(Step::new(1 + i, 0, format!("wake e{}", s.epoch)));
                }
                Reader::Parked { .. } => {}
                Reader::Woken { .. } => {
                    steps.push(Step::new(1 + i, 1, "read-snapshot"));
                }
            }
        }
        if s.poll_pc < 2 * self.polls {
            let (id, label) = if s.poll_pc.is_multiple_of(2) {
                (0, "poll-mode")
            } else {
                (1, "poll-remaining")
            };
            steps.push(Step::new(self.poller_actor(), id, label));
        }
        steps
    }

    fn apply(&self, s: &State, step: &Step) -> State {
        let mut n = s.clone();
        // Observations are one-shot: clear last step's so `check` only
        // ever judges the transition that just happened.
        n.wake_obs = None;
        n.poll_obs = None;
        if step.actor == 0 {
            let round = (s.pc / self.order.len() + 1) as u32;
            match self.order[s.pc % self.order.len()] {
                PublishAction::StoreRemaining => n.rem_round = round,
                PublishAction::StoreMode => n.mode_round = round,
                PublishAction::BumpEpoch => {
                    n.epoch += 1;
                    n.claims.push(round);
                }
            }
            n.pc += 1;
        } else if step.actor == self.poller_actor() {
            if step.id == 0 {
                n.poll_mode = Some(s.mode_round);
            } else {
                n.poll_obs = Some((s.poll_mode.unwrap_or(0), s.rem_round));
                n.poll_mode = None;
            }
            n.poll_pc += 1;
        } else {
            let r = step.actor - 1;
            n.readers[r] = match (&s.readers[r], step.id) {
                (Reader::Parked { .. }, 0) => Reader::Woken {
                    epoch: s.epoch,
                    claim: s.claims[s.epoch as usize - 1],
                },
                (Reader::Woken { epoch, claim }, 1) => {
                    n.wake_obs = Some((*claim, s.mode_round, s.rem_round));
                    Reader::Parked { seen: *epoch }
                }
                other => unreachable!("reader step {:?} in state {:?}", step, other),
            };
        }
        n
    }

    fn check(&self, s: &State) -> Result<(), Violation> {
        if let Some((claim, mode, rem)) = s.wake_obs {
            if mode < claim {
                return Err(Violation::new(
                    "wake-sees-complete-mode",
                    format!(
                        "woken by a bump claiming round {claim}, observed mode of round {mode}"
                    ),
                ));
            }
            if rem < claim {
                return Err(Violation::new(
                    "wake-sees-complete-demand",
                    format!(
                        "woken by a bump claiming round {claim}, observed demand of round {rem}"
                    ),
                ));
            }
        }
        if let Some((mode, rem)) = s.poll_obs {
            if rem < mode {
                return Err(Violation::new(
                    "mode-implies-demand",
                    format!("polled mode of round {mode} but demand of round {rem}"),
                ));
            }
        }
        Ok(())
    }

    fn check_quiescent(&self, s: &State) -> Result<(), Violation> {
        let want = self.rounds * self.bumps_per_round();
        if s.epoch != want {
            return Err(Violation::new(
                "one-bump-per-publish",
                format!(
                    "{} publications ended at epoch {} (expected {want})",
                    self.rounds, s.epoch
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;

    #[test]
    fn current_protocol_is_race_free() {
        let stats = Explorer::new(DemandPublish::new(2, 2, 2))
            .explore()
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.truncated, 0, "scope must be fully explored");
        assert!(stats.quiescent >= 1);
    }

    #[test]
    fn finds_pr2_two_bump_publish_bug() {
        // Parked readers only: the poller would also flag the mutated
        // order, but the historical symptom was a *woken* worker acting
        // on a half-published snapshot.
        let failure = Explorer::new(DemandPublish::with_two_bump_publish(2, 1, 0))
            .explore()
            .expect_err("the two-bump publish race must be found");
        assert_eq!(failure.violation.invariant, "wake-sees-complete-demand");
        assert!(
            !failure.trace.is_empty(),
            "failure must carry the schedule that exposes the race"
        );
    }

    #[test]
    fn two_bump_mutation_also_breaks_polling_readers() {
        let failure = Explorer::new(DemandPublish::with_two_bump_publish(2, 0, 2))
            .explore()
            .expect_err("mode published before demand must be observable");
        assert_eq!(failure.violation.invariant, "mode-implies-demand");
    }

    #[test]
    fn walk_mode_agrees_with_exhaustion() {
        let stats = Explorer::new(DemandPublish::new(2, 2, 2))
            .walk(0xd3_ad_b3_3f, 500)
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.schedules, 500);
        let failure = Explorer::new(DemandPublish::with_two_bump_publish(2, 1, 0))
            .walk(0xd3_ad_b3_3f, 500)
            .expect_err("soak mode must also find the historical race");
        assert_eq!(failure.violation.invariant, "wake-sees-complete-demand");
    }
}
