//! Model of the live table's WAL → seal → crash → recovery lifecycle
//! ([`fastmatch_store::live::wal`]).
//!
//! Appends log a WAL record *before* the row enters the memtable;
//! records become durable in order when a group fsync runs. A full
//! delta freezes and queues for the sealer, whose success makes the
//! segment durable atomically (`write_table_atomic`) and then rotates
//! the WAL with the *lag-one* base ([`rotation_base`]): the newest
//! sealed run's rows stay in the log so a torn last segment is still
//! recoverable. A crash may strike at any instant — optionally tearing
//! the newest sealed file — after which recovery rebuilds from the
//! durable segment prefix ([`durable_prefix_rows`]) and replays the
//! WAL's surviving records ([`replay_split`]). Named invariants
//! (DESIGN.md § "Concurrency protocols"):
//!
//! * `recovered-prefix-is-durable-prefix` — recovery yields exactly
//!   the longest contiguous prefix of rows that were durable at the
//!   crash: never a row more (no duplicates, no invention), never a
//!   reachable row less.
//! * `no-replayed-row-lost` — when the WAL connects to the recovered
//!   segment watermark (`base ≤ sealed`), every durably logged row is
//!   replayed; none are skipped past.
//! * `seal-truncation-never-drops-unsealed-rows` — WAL rotation at
//!   seal time never advances the base past the start of the newest
//!   durable run: unsealed rows *and* the run a torn last segment
//!   would lose all stay in the log.
//!
//! The model imports the exact decision functions the real open/seal
//! paths run, so drift between implementation and model is a compile
//! error or a checker violation. Test-only mutations reintroduce the
//! plausible bugs: rotating without the lag, replay that skips its
//! rows, and replay that re-appends already-sealed rows; the `finds_*`
//! tests assert the explorer catches each one by name.

use std::collections::VecDeque;

use fastmatch_store::live::wal::{durable_prefix_rows, replay_split, rotation_base};

use crate::explorer::{Model, Step, Violation};

/// One installed delta entry: `sealed` means its segment file is
/// durable on disk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Entry {
    rows: usize,
    sealed: bool,
}

/// One WAL record: `rows` rows starting at global row `start`,
/// `synced` once a group fsync (or a rotation, which fsyncs) covered
/// it. Records are logged and synced in order, so the synced flags
/// always form a prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Rec {
    start: usize,
    rows: usize,
    synced: bool,
}

/// How the crash left the segment directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CrashKind {
    /// Every sealed file intact.
    Clean,
    /// The newest sealed file is torn (lost sectors behind a completed
    /// rename, bit rot): recovery fails its checksum and skips it.
    TornLastSegment,
}

/// Full protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Ground-truth rows appended (each also logged to the WAL).
    appended: usize,
    /// Active delta rows.
    mem_rows: usize,
    entries: Vec<Entry>,
    /// Pending seal jobs (entry indexes, FIFO like the real sealer).
    seal_queue: VecDeque<usize>,
    /// First global row the WAL retains.
    wal_base: usize,
    /// The log's records, in order, contiguous from `wal_base`.
    records: Vec<Rec>,
    /// Set once the crash struck (no other actor runs afterwards).
    crashed: Option<CrashKind>,
    /// Rows the post-crash recovery produced.
    recovered: Option<usize>,
}

/// Test-only protocol mutations (plausible bugs). The non-`None`
/// variants are only constructed by the `#[cfg(test)]`
/// `with_mutation`, which is what the dead-code allowance covers.
#[cfg_attr(not(test), allow(dead_code))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// The real protocol.
    None,
    /// Rotate the WAL to the durable watermark itself — no lag-one
    /// retention, so a torn last segment loses its rows.
    NoRotationLag,
    /// Replay drops every row of each record (e.g. skip/take swapped).
    LossyReplay,
    /// Replay re-appends rows already covered by recovered segments.
    DoubleReplay,
}

/// The WAL/recovery model; see the [module docs](self).
#[derive(Debug)]
pub struct WalRecovery {
    /// Rows the appender writes in total.
    appends: usize,
    /// Freeze threshold (rows per delta).
    rows_per_delta: usize,
    mutation: Mutation,
}

impl WalRecovery {
    /// The real protocol.
    pub fn new(appends: usize, rows_per_delta: usize) -> Self {
        WalRecovery {
            appends,
            rows_per_delta,
            mutation: Mutation::None,
        }
    }

    #[cfg(test)]
    fn with_mutation(appends: usize, rows_per_delta: usize, mutation: Mutation) -> Self {
        WalRecovery {
            appends,
            rows_per_delta,
            mutation,
        }
    }

    /// Rows durably logged in the WAL (synced records are a prefix).
    fn synced_rows(s: &State) -> usize {
        s.records.iter().filter(|r| r.synced).map(|r| r.rows).sum()
    }

    /// The ghost truth recovery is judged against: the longest
    /// contiguous row prefix durable at the crash, given the disk's
    /// segment prefix and the WAL's synced coverage. Computed from the
    /// crash state alone — independently of the replay arithmetic under
    /// test.
    fn durable_truth(sealed: usize, wal_base: usize, wal_synced: usize) -> usize {
        if wal_base <= sealed {
            sealed.max(wal_base + wal_synced)
        } else {
            sealed
        }
    }

    /// The disk's durable entry list as recovery will see it after the
    /// crash: torn newest file fails its checksum, so it reads as
    /// unsealed.
    fn disk_entries(s: &State, kind: CrashKind) -> Vec<(usize, bool)> {
        let mut disk: Vec<(usize, bool)> = s.entries.iter().map(|e| (e.rows, e.sealed)).collect();
        if kind == CrashKind::TornLastSegment {
            if let Some(last) = disk.iter_mut().rev().find(|(_, sealed)| *sealed) {
                last.1 = false;
            }
        }
        disk
    }
}

/// Actor ids.
const APPENDER: usize = 0;
const SEALER: usize = 1;
const SYNCER: usize = 2;
const CRASHER: usize = 3;
const RECOVERY: usize = 4;

impl Model for WalRecovery {
    type State = State;

    fn name(&self) -> &'static str {
        "wal_recovery"
    }

    fn initial(&self) -> State {
        State {
            appended: 0,
            mem_rows: 0,
            entries: Vec::new(),
            seal_queue: VecDeque::new(),
            wal_base: 0,
            records: Vec::new(),
            crashed: None,
            recovered: None,
        }
    }

    fn enabled(&self, s: &State) -> Vec<Step> {
        let mut steps = Vec::new();
        if let Some(_kind) = s.crashed {
            if s.recovered.is_none() {
                steps.push(Step::new(RECOVERY, 0, "recover: scan segments, replay WAL"));
            }
            return steps;
        }
        if s.appended < self.appends {
            steps.push(Step::new(
                APPENDER,
                0,
                "append row (WAL first, then memtable)",
            ));
        }
        if !s.seal_queue.is_empty() {
            steps.push(Step::new(SEALER, 0, "seal ok: segment durable, rotate WAL"));
            steps.push(Step::new(SEALER, 1, "seal fails: entry stays in memory"));
        }
        if s.records.iter().any(|r| !r.synced) {
            steps.push(Step::new(
                SYNCER,
                0,
                "group fsync: all logged records durable",
            ));
        }
        steps.push(Step::new(CRASHER, 0, "crash (disk intact)"));
        if s.entries.iter().any(|e| e.sealed) {
            steps.push(Step::new(CRASHER, 1, "crash + newest sealed file torn"));
        }
        steps
    }

    fn apply(&self, s: &State, step: &Step) -> State {
        let mut n = s.clone();
        match step.actor {
            APPENDER => {
                // One critical section, like append_inner: the WAL
                // record first, then the memtable row; freeze + queue
                // before the lock drops.
                n.records.push(Rec {
                    start: n.appended,
                    rows: 1,
                    synced: false,
                });
                n.mem_rows += 1;
                n.appended += 1;
                if n.mem_rows == self.rows_per_delta {
                    n.entries.push(Entry {
                        rows: n.mem_rows,
                        sealed: false,
                    });
                    n.seal_queue.push_back(n.entries.len() - 1);
                    n.mem_rows = 0;
                }
            }
            SEALER => {
                let job = n
                    .seal_queue
                    .pop_front()
                    .expect("seal enabled on empty queue");
                if step.id == 0 {
                    // write_table_atomic: the file is durable the
                    // instant the entry reads sealed.
                    n.entries[job].sealed = true;
                    // WAL rotation inside the same critical section,
                    // with the decision the real seal_run makes.
                    let durable = durable_prefix_rows(n.entries.iter().map(|e| (e.rows, e.sealed)));
                    let just = n.entries[job].rows;
                    let new_base = match self.mutation {
                        Mutation::NoRotationLag => (n.wal_base as u64).max(durable as u64),
                        _ => rotation_base(n.wal_base as u64, durable as u64, just as u64),
                    } as usize;
                    if new_base > n.wal_base
                        && durable == n.entries[..=job].iter().map(|e| e.rows).sum::<usize>()
                    {
                        // rotate_to: one rewritten, fully fsynced log
                        // covering every retained row (rebuilt from the
                        // sealed run + later memory — skipped when a
                        // seal-failure hole means those rows are only
                        // on disk, which the durable==prefix guard
                        // encodes).
                        n.wal_base = new_base;
                        n.records = vec![Rec {
                            start: new_base,
                            rows: n.appended - new_base,
                            synced: true,
                        }];
                    }
                }
                // Failure: the entry stays in memory, the WAL keeps
                // covering it — nothing else changes.
            }
            SYNCER => {
                for r in &mut n.records {
                    r.synced = true;
                }
            }
            CRASHER => {
                let kind = if step.id == 0 {
                    CrashKind::Clean
                } else {
                    CrashKind::TornLastSegment
                };
                // Power loss: unsynced records never reached the
                // platter (a partial record fails its checksum and is
                // dropped whole — same outcome).
                n.records.retain(|r| r.synced);
                n.crashed = Some(kind);
            }
            RECOVERY => {
                let kind = s.crashed.expect("recovery enabled only after a crash");
                let sealed = durable_prefix_rows(Self::disk_entries(s, kind));
                let mut recovered = sealed;
                // replay(): records are contiguous from the base; a
                // base past the recovered watermark means a gap the
                // replay cannot bridge, so the log is dropped whole
                // (counted as wal_errors in the real table).
                if n.wal_base <= sealed {
                    let mut cursor = n.wal_base;
                    for rec in &n.records {
                        debug_assert_eq!(rec.start, cursor, "records are contiguous");
                        let (skip, take) = match self.mutation {
                            Mutation::LossyReplay => (rec.rows as u64, 0),
                            Mutation::DoubleReplay => (0, rec.rows as u64),
                            _ => replay_split(cursor as u64, rec.rows as u64, sealed as u64),
                        };
                        debug_assert!(
                            skip + take == rec.rows as u64 || self.mutation != Mutation::None
                        );
                        recovered += take as usize;
                        cursor += rec.rows;
                    }
                }
                n.recovered = Some(recovered);
            }
            other => unreachable!("unknown actor {other}"),
        }
        n
    }

    fn check(&self, s: &State) -> Result<(), Violation> {
        // seal-truncation-never-drops-unsealed-rows: at every instant
        // the WAL base sits at or before the start of the newest
        // durable run, so rows the durable prefix does not *redundantly*
        // cover — unsealed rows plus the one run a torn file would
        // lose — are all retained.
        let durable = durable_prefix_rows(s.entries.iter().map(|e| (e.rows, e.sealed)));
        let newest_run = s
            .entries
            .iter()
            .scan(true, |ok, e| {
                *ok &= e.sealed;
                ok.then_some(e.rows)
            })
            .last()
            .unwrap_or(0);
        if s.wal_base + newest_run > durable {
            return Err(Violation::new(
                "seal-truncation-never-drops-unsealed-rows",
                format!(
                    "WAL base {} past the newest durable run (durable {durable}, run {newest_run})",
                    s.wal_base
                ),
            ));
        }
        let Some(recovered) = s.recovered else {
            return Ok(());
        };
        let kind = s.crashed.expect("recovered implies crashed");
        let sealed = durable_prefix_rows(Self::disk_entries(s, kind));
        let synced = Self::synced_rows(s);
        // no-replayed-row-lost: when the log connects to the recovered
        // watermark, every durably logged row must be in the table.
        if s.wal_base <= sealed && recovered < s.wal_base + synced {
            return Err(Violation::new(
                "no-replayed-row-lost",
                format!(
                    "recovered {recovered} rows but the WAL durably held rows up to {}",
                    s.wal_base + synced
                ),
            ));
        }
        // recovered-prefix-is-durable-prefix: exactly the ghost truth —
        // no invention or duplication either.
        let truth = Self::durable_truth(sealed, s.wal_base, synced);
        if recovered != truth {
            return Err(Violation::new(
                "recovered-prefix-is-durable-prefix",
                format!("recovered {recovered} rows, durable prefix was {truth}"),
            ));
        }
        Ok(())
    }

    fn check_quiescent(&self, s: &State) -> Result<(), Violation> {
        // Quiescence without a crash means the run simply completed;
        // with one, recovery must have run (it is always enabled after
        // a crash, so anything else is an explorer bug).
        if s.crashed.is_some() && s.recovered.is_none() {
            return Err(Violation::new(
                "recovered-prefix-is-durable-prefix",
                "crashed but recovery never ran".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;

    #[test]
    fn current_lifecycle_is_clean() {
        // 5 appends at 2 rows/delta: two freezes, seal success and
        // failure, group fsyncs racing seals, clean and torn crashes
        // at every reachable instant.
        let stats = Explorer::new(WalRecovery::new(5, 2))
            .explore()
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.truncated, 0, "scope must be fully explored");
        assert!(stats.quiescent >= 1);
    }

    #[test]
    fn finds_missing_rotation_lag() {
        let failure = Explorer::new(WalRecovery::with_mutation(5, 2, Mutation::NoRotationLag))
            .explore()
            .expect_err("rotating without the lag must break retention");
        assert_eq!(
            failure.violation.invariant,
            "seal-truncation-never-drops-unsealed-rows"
        );
    }

    #[test]
    fn finds_lossy_replay() {
        let failure = Explorer::new(WalRecovery::with_mutation(5, 2, Mutation::LossyReplay))
            .explore()
            .expect_err("dropping replayed rows must lose durable data");
        assert_eq!(failure.violation.invariant, "no-replayed-row-lost");
    }

    #[test]
    fn finds_double_replay() {
        let failure = Explorer::new(WalRecovery::with_mutation(5, 2, Mutation::DoubleReplay))
            .explore()
            .expect_err("re-appending sealed rows must duplicate data");
        assert_eq!(
            failure.violation.invariant,
            "recovered-prefix-is-durable-prefix"
        );
    }

    #[test]
    fn walk_mode_agrees_with_exhaustion() {
        let stats = Explorer::new(WalRecovery::new(5, 2))
            .walk(0x11fe_c7c1e, 500)
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.schedules, 500);
        let failure = Explorer::new(WalRecovery::with_mutation(5, 2, Mutation::NoRotationLag))
            .walk(0x11fe_c7c1e, 500)
            .expect_err("soak mode must also find the retention bug");
        assert_eq!(
            failure.violation.invariant,
            "seal-truncation-never-drops-unsealed-rows"
        );
    }
}
