//! Model of the service's admission bound and per-worker run queues
//! ([`fastmatch_engine::service`]).
//!
//! Submitters reserve admission slots with a bounded CAS
//! ([`admission_has_capacity`]), enqueue shard tasks on their home
//! queue and notify the worker condvar. Workers pop-or-wait
//! atomically (the real `Scheduler::pop` holds the queue mutex),
//! scanning queues in exactly the extracted [`queue_scan_order`] —
//! own queue first, the others only when stealing is on or shutdown
//! drains. Multi-quantum tasks requeue themselves and notify again;
//! shutdown wakes everyone and turns every pop into a drain. Named
//! invariants (DESIGN.md § "Concurrency protocols"):
//!
//! * `admission-bounded` — at no interleaving of concurrent submits
//!   does the number of admitted-and-unretired tasks exceed the bound.
//! * `no-lost-wakeup` — at quiescence every submitted task has run to
//!   completion; a queued task with every worker asleep is the lost
//!   wakeup.
//! * `shutdown-drains-all-queues` — once shutdown fires, quiescence
//!   means empty queues, exited workers and zero admitted tasks.
//!
//! The model doubles as the proof obligation for the scheduler's
//! `notify_all`: with stealing off, [`AdmissionSteal::with_notify_one`]
//! deadlocks (the explorer produces the exact schedule — see
//! `notify_one_without_stealing_loses_wakeups` and DESIGN.md), while
//! `notify_one` *with* stealing and `notify_all` in any configuration
//! pass exhaustively.

use std::collections::VecDeque;

use fastmatch_engine::service::{admission_has_capacity, queue_scan_order};

use crate::explorer::{Model, Step, Violation};

/// Worker lifecycle. `Idle` workers are about to pop; `Waiting`
/// workers sleep on the condvar until a notify moves them back to
/// `Idle`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Worker {
    /// Outside the condvar, will pop next.
    Idle,
    /// Asleep on the condvar.
    Waiting,
    /// Holding a popped task.
    Running(u8),
    /// Exited after a shutdown drain.
    Exited,
}

/// Task lifecycle, for the invariants.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TaskState {
    /// Not yet submitted.
    Unsubmitted,
    /// In some queue.
    Queued,
    /// Held by a worker.
    Running,
    /// Retired (ran to completion or cancelled by shutdown).
    Done,
}

/// Full protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    queues: Vec<VecDeque<u8>>,
    workers: Vec<Worker>,
    /// Per task: quanta left to run.
    remaining: Vec<u8>,
    tasks: Vec<TaskState>,
    /// Admitted-and-unretired count (the CAS-guarded counter).
    active: u8,
    /// Next task the submitter will admit.
    submitted: usize,
    shutdown: bool,
}

/// The admission/steal model. Defaults mirror production: stealing
/// on, `notify_all`, a shutdown drain at the end.
#[derive(Debug)]
pub struct AdmissionSteal {
    workers: usize,
    /// Quanta per task; task `i`'s home queue is `i % workers`.
    task_quanta: Vec<u8>,
    /// Admission bound.
    limit: u8,
    stealing: bool,
    notify_all: bool,
    with_shutdown: bool,
}

impl AdmissionSteal {
    /// The production configuration.
    pub fn new(workers: usize, task_quanta: Vec<u8>, limit: u8) -> Self {
        AdmissionSteal {
            workers,
            task_quanta,
            limit,
            stealing: true,
            notify_all: true,
            with_shutdown: true,
        }
    }

    /// Replaces the enqueue-side `notify_all` with `notify_one` (the
    /// candidate "optimization" the model rules out when stealing is
    /// off).
    pub fn with_notify_one(mut self) -> Self {
        self.notify_all = false;
        self
    }

    /// Turns work stealing off (`ServiceConfig::with_stealing(false)`).
    pub fn without_stealing(mut self) -> Self {
        self.stealing = false;
        self
    }

    /// Removes the shutdown actor: the model then checks the steady
    /// state, where quiescence means all tasks done and every worker
    /// asleep (shutdown would otherwise mask a lost wakeup by waking
    /// everyone).
    pub fn without_shutdown(mut self) -> Self {
        self.with_shutdown = false;
        self
    }

    fn submitter_actor(&self) -> usize {
        self.workers
    }

    fn shutdown_actor(&self) -> usize {
        self.workers + 1
    }

    /// Notify variants for an enqueue step: with `notify_all` (or no
    /// sleeping worker) the enqueue is one step; with `notify_one` the
    /// scheduler's choice of which waiter wakes is the
    /// nondeterminism, so each candidate is its own step. Step id is
    /// `2 + waiter` (0/1 are reserved for the base step ids).
    fn notify_variants(&self, s: &State, actor: usize, id_base: usize, what: &str) -> Vec<Step> {
        let waiters: Vec<usize> = s
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| matches!(w, Worker::Waiting))
            .map(|(i, _)| i)
            .collect();
        if self.notify_all || waiters.is_empty() {
            vec![Step::new(actor, id_base, format!("{what}, notify-all"))]
        } else {
            waiters
                .into_iter()
                .map(|w| {
                    Step::new(
                        actor,
                        id_base + 2 + w,
                        format!("{what}, notify-one wakes w{w}"),
                    )
                })
                .collect()
        }
    }

    /// Applies the notify encoded in `id` relative to `id_base`.
    fn apply_notify(&self, n: &mut State, id: usize, id_base: usize) {
        if id == id_base {
            for w in n.workers.iter_mut() {
                if matches!(w, Worker::Waiting) {
                    *w = Worker::Idle;
                }
            }
        } else {
            let target = id - id_base - 2;
            debug_assert!(matches!(n.workers[target], Worker::Waiting));
            n.workers[target] = Worker::Idle;
        }
    }
}

/// Base step id of a worker's pop-or-wait.
const POP: usize = 0;
/// Base step id of a worker's run-quantum (requeue notify variants are
/// `RUN + 2 + waiter`).
const RUN: usize = 1;

impl Model for AdmissionSteal {
    type State = State;

    fn name(&self) -> &'static str {
        "admission_steal"
    }

    fn initial(&self) -> State {
        State {
            queues: vec![VecDeque::new(); self.workers],
            workers: vec![Worker::Idle; self.workers],
            remaining: self.task_quanta.clone(),
            tasks: vec![TaskState::Unsubmitted; self.task_quanta.len()],
            active: 0,
            submitted: 0,
            shutdown: false,
        }
    }

    fn enabled(&self, s: &State) -> Vec<Step> {
        let mut steps = Vec::new();
        for (w, worker) in s.workers.iter().enumerate() {
            match worker {
                Worker::Idle => steps.push(Step::new(w, POP, "pop-or-wait")),
                Worker::Running(t) => {
                    let requeues = !s.shutdown && s.remaining[*t as usize] > 1;
                    if requeues {
                        steps.extend(self.notify_variants(
                            s,
                            w,
                            RUN,
                            &format!("run t{t}, requeue"),
                        ));
                    } else {
                        steps.push(Step::new(w, RUN, format!("run t{t} to retirement")));
                    }
                }
                Worker::Waiting | Worker::Exited => {}
            }
        }
        if s.submitted < self.task_quanta.len()
            && !s.shutdown
            && admission_has_capacity(s.active as usize, self.limit as usize)
        {
            steps.extend(self.notify_variants(
                s,
                self.submitter_actor(),
                0,
                &format!("admit t{}", s.submitted),
            ));
        }
        if self.with_shutdown && !s.shutdown && s.submitted == self.task_quanta.len() {
            steps.push(Step::new(self.shutdown_actor(), 0, "shutdown, notify-all"));
        }
        steps
    }

    fn apply(&self, s: &State, step: &Step) -> State {
        let mut n = s.clone();
        if step.actor < self.workers {
            let w = step.actor;
            if step.id == POP {
                // Atomic pop-or-wait under the queue mutex, scanning in
                // the real protocol's order.
                let hit = queue_scan_order(w, self.workers, self.stealing, s.shutdown)
                    .find(|&q| !s.queues[q].is_empty());
                match hit {
                    Some(q) => {
                        let t = n.queues[q].pop_front().expect("scan found a task");
                        n.tasks[t as usize] = TaskState::Running;
                        n.workers[w] = Worker::Running(t);
                    }
                    None if s.shutdown => n.workers[w] = Worker::Exited,
                    None => n.workers[w] = Worker::Waiting,
                }
            } else {
                let t = match s.workers[w] {
                    Worker::Running(t) => t as usize,
                    ref other => unreachable!("run step on {other:?}"),
                };
                if s.shutdown || s.remaining[t] <= 1 {
                    // Retirement (or shutdown cancellation): the
                    // admission slot is released here, like the real
                    // retire path.
                    n.remaining[t] = 0;
                    n.tasks[t] = TaskState::Done;
                    n.active -= 1;
                    n.workers[w] = Worker::Idle;
                } else {
                    n.remaining[t] -= 1;
                    n.tasks[t] = TaskState::Queued;
                    let home = t % self.workers;
                    n.queues[home].push_back(t as u8);
                    n.workers[w] = Worker::Idle;
                    self.apply_notify(&mut n, step.id, RUN);
                }
            }
        } else if step.actor == self.submitter_actor() {
            let t = s.submitted;
            n.active += 1;
            n.submitted += 1;
            n.tasks[t] = TaskState::Queued;
            n.queues[t % self.workers].push_back(t as u8);
            self.apply_notify(&mut n, step.id, 0);
        } else {
            n.shutdown = true;
            for w in n.workers.iter_mut() {
                if matches!(w, Worker::Waiting) {
                    *w = Worker::Idle;
                }
            }
        }
        n
    }

    fn check(&self, s: &State) -> Result<(), Violation> {
        if s.active > self.limit {
            return Err(Violation::new(
                "admission-bounded",
                format!(
                    "{} tasks admitted past the bound of {}",
                    s.active, self.limit
                ),
            ));
        }
        Ok(())
    }

    fn check_quiescent(&self, s: &State) -> Result<(), Violation> {
        if let Some(t) = s
            .tasks
            .iter()
            .position(|t| matches!(t, TaskState::Queued | TaskState::Running))
        {
            return Err(Violation::new(
                "no-lost-wakeup",
                format!(
                    "task t{t} is {:?} at quiescence with workers {:?} — nobody will run it",
                    s.tasks[t], s.workers
                ),
            ));
        }
        if s.shutdown {
            let stranded = s.queues.iter().map(VecDeque::len).sum::<usize>();
            if stranded > 0
                || s.active > 0
                || !s.workers.iter().all(|w| matches!(w, Worker::Exited))
            {
                return Err(Violation::new(
                    "shutdown-drains-all-queues",
                    format!(
                        "after shutdown: {stranded} queued, {} active, workers {:?}",
                        s.active, s.workers
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;

    #[test]
    fn production_config_is_clean() {
        // Two workers, three tasks (one multi-quantum), admission bound
        // of two: submits must wait for retirements, stealing and
        // notify_all keep everything live, shutdown drains.
        let stats = Explorer::new(AdmissionSteal::new(2, vec![1, 2, 1], 2))
            .explore()
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.truncated, 0, "scope must be fully explored");
        assert!(stats.quiescent >= 1);
    }

    #[test]
    fn steady_state_without_stealing_is_clean_with_notify_all() {
        let model = AdmissionSteal::new(2, vec![1, 2], 2)
            .without_stealing()
            .without_shutdown();
        Explorer::new(model)
            .explore()
            .unwrap_or_else(|f| panic!("{f}"));
    }

    /// The schedule that makes the scheduler's `notify_all` load-bearing
    /// (DESIGN.md § "Concurrency protocols"): with stealing off, waking
    /// one arbitrary worker can pick one that will never scan the
    /// task's home queue.
    #[test]
    fn notify_one_without_stealing_loses_wakeups() {
        let model = AdmissionSteal::new(2, vec![1], 1)
            .with_notify_one()
            .without_stealing()
            .without_shutdown();
        let failure = Explorer::new(model)
            .explore()
            .expect_err("notify_one without stealing must deadlock");
        assert_eq!(failure.violation.invariant, "no-lost-wakeup");
        let trace = failure.to_string();
        assert!(
            trace.contains("notify-one wakes w1"),
            "the trace must wake the worker that cannot serve queue 0:\n{trace}"
        );
    }

    #[test]
    fn notify_one_with_stealing_is_safe() {
        // Any woken worker can steal, so no wakeup is lost — the model
        // clears the alternative before we keep paying for notify_all.
        let model = AdmissionSteal::new(2, vec![1, 2], 2)
            .with_notify_one()
            .without_shutdown();
        Explorer::new(model)
            .explore()
            .unwrap_or_else(|f| panic!("{f}"));
    }

    #[test]
    fn shutdown_drains_queued_tasks() {
        // Shutdown can fire while tasks are still queued or mid-quantum;
        // every interleaving must end drained, exited and slot-balanced.
        let stats = Explorer::new(AdmissionSteal::new(2, vec![2, 1], 2))
            .explore()
            .unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.quiescent >= 1);
    }

    #[test]
    fn walk_mode_agrees_with_exhaustion() {
        let stats = Explorer::new(AdmissionSteal::new(2, vec![1, 2, 1], 2))
            .walk(0x5c4e_d001, 500)
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.schedules, 500);
        let model = AdmissionSteal::new(2, vec![1], 1)
            .with_notify_one()
            .without_stealing()
            .without_shutdown();
        let failure = Explorer::new(model)
            .walk(0x5c4e_d001, 500)
            .expect_err("soak mode must also find the lost wakeup");
        assert_eq!(failure.violation.invariant, "no-lost-wakeup");
    }
}
