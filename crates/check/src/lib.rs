//! In-repo model checker for FastMatch's concurrency core.
//!
//! The engine and store rely on three hand-rolled synchronization
//! protocols — the lock-free demand snapshot ([`fastmatch_engine::shared`]),
//! the park/exit accounting of `ParallelMatch` and the shared-scheduler
//! service, and the live-table append → freeze → seal → snapshot
//! lifecycle. Unit tests exercise a handful of interleavings of each;
//! this crate exhaustively enumerates *all* interleavings at small
//! scopes, loom-style, with no external dependencies:
//!
//! * [`explorer::Model`] — a protocol written as an explicit state
//!   machine: enumerable [`explorer::Step`]s, named invariants checked
//!   after every step, and quiescence conditions (liveness) checked at
//!   terminal states.
//! * [`explorer::Explorer`] — bounded exhaustive DFS over
//!   interleavings with state-hash pruning for small scopes, plus a
//!   seeded random-walk mode for bigger ones; on a violation the
//!   failing schedule is shrunk and replayed into a step-by-step trace.
//! * [`models`] — four models that mirror the real code path for path,
//!   sharing the extracted pure step functions
//!   ([`fastmatch_engine::shared::PUBLISH_ORDER`],
//!   [`fastmatch_engine::exec::all_live_parked`],
//!   [`fastmatch_engine::service::queue_scan_order`],
//!   [`fastmatch_store::live::build_seg_starts`], …) so the model and
//!   the implementation cannot drift apart silently.
//!
//! Two historical races — the PR-2 two-bump demand publish and the
//! PR-2 anonymous park tally — are kept as test-only mutations; the
//! checker demonstrably re-finds both (see the `finds_pr2_*` tests),
//! which is the evidence that it would catch their recurrence.
//!
//! See DESIGN.md § "Concurrency protocols" for the prose version of
//! every invariant checked here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explorer;
pub mod models;

pub use explorer::{Explorer, Failure, Model, Step, Violation};
