//! The interleaving explorer: bounded exhaustive DFS and seeded
//! random walks over a [`Model`]'s schedules.
//!
//! A model is a state machine whose nondeterminism is *only* the
//! scheduler's choice of which enabled step runs next. The explorer
//! owns that choice: DFS enumerates every schedule up to a depth bound
//! (deduplicating states it has already proven safe), the walker
//! samples schedules from a seeded PRNG. Safety invariants are checked
//! after every step; liveness is checked at quiescence (no step
//! enabled) — a state where work remains but nothing is enabled *is*
//! the deadlock, so "check at quiescence" is exactly "check for
//! deadlock plus the model's end-state conditions".

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

/// One atomic transition of one actor. Steps are identified by
/// `(actor, id)`; the label is for traces only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Which logical thread takes the step.
    pub actor: usize,
    /// Actor-local step discriminator, interpreted by
    /// [`Model::apply`].
    pub id: usize,
    /// Human-readable description, printed in failing traces.
    pub label: String,
}

impl Step {
    /// Convenience constructor.
    pub fn new(actor: usize, id: usize, label: impl Into<String>) -> Self {
        Step {
            actor,
            id,
            label: label.into(),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[actor {}] {}", self.actor, self.label)
    }
}

/// A named invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant's stable name (documented in DESIGN.md
    /// § "Concurrency protocols").
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

impl Violation {
    /// Convenience constructor.
    pub fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            invariant,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violation of `{}`: {}", self.invariant, self.detail)
    }
}

/// A protocol under test, written as an explicit state machine.
pub trait Model {
    /// Full protocol state. Cloned per explored branch and hashed for
    /// revisit pruning, so keep it small and canonical (no floats, no
    /// incidental ordering).
    type State: Clone + Eq + Hash + fmt::Debug;

    /// Model name, used in reports.
    fn name(&self) -> &'static str;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Every step enabled in `s`. An empty vector means `s` is
    /// quiescent and [`Model::check_quiescent`] decides whether that
    /// is a legitimate end state or a deadlock.
    fn enabled(&self, s: &Self::State) -> Vec<Step>;

    /// The successor of `s` under `step` (one of [`Model::enabled`]).
    fn apply(&self, s: &Self::State, step: &Step) -> Self::State;

    /// Safety invariants, evaluated on every reachable state.
    fn check(&self, s: &Self::State) -> Result<(), Violation>;

    /// Liveness / end-state conditions, evaluated whenever no step is
    /// enabled.
    fn check_quiescent(&self, s: &Self::State) -> Result<(), Violation>;
}

/// A failing schedule: the violation plus the (shrunk) step trace that
/// reaches it. `Display` prints the trace step by step.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which model failed.
    pub model: &'static str,
    /// The invariant that broke.
    pub violation: Violation,
    /// Steps from the initial state to the violating state.
    pub trace: Vec<Step>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model `{}`: {}", self.model, self.violation)?;
        writeln!(f, "failing schedule ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Statistics of a clean exhaustive run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states visited (after dedup).
    pub states: usize,
    /// Quiescent states reached and checked.
    pub quiescent: usize,
    /// Branches cut by the depth bound (0 ⇒ the run was exhaustive
    /// for the scope).
    pub truncated: usize,
    /// Deepest schedule prefix explored.
    pub max_depth_seen: usize,
}

/// Statistics of a clean random-walk soak.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Schedules executed.
    pub schedules: usize,
    /// Total steps across all schedules.
    pub steps: usize,
    /// Schedules that ran out of step budget before quiescing.
    pub truncated: usize,
}

/// SplitMix64 — the crate's only randomness source, so soaks are
/// reproducible from the seed alone.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Drives a [`Model`] through its interleavings.
#[derive(Debug)]
pub struct Explorer<M: Model> {
    model: M,
    /// Longest schedule prefix DFS follows before counting the branch
    /// as truncated. Also the walker's per-schedule step budget.
    pub max_depth: usize,
    /// Cap on distinct states DFS stores; exceeding it aborts the run
    /// with a panic (the scope is too big for exhaustive mode — use
    /// [`Explorer::walk`]).
    pub max_states: usize,
}

/// Result of replaying one concrete schedule.
enum Replay {
    /// Reached quiescence (or ran out of schedule) without violation.
    Clean { steps: usize, quiescent: bool },
    /// Hit a violation; the trace is the executed prefix.
    Failed(Failure),
}

impl<M: Model> Explorer<M> {
    /// An explorer with defaults suited to the in-repo models: scopes
    /// small enough that exhaustion finishes in seconds.
    pub fn new(model: M) -> Self {
        Explorer {
            model,
            max_depth: 80,
            max_states: 4_000_000,
        }
    }

    /// The model under exploration.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exhaustive bounded DFS over every interleaving, deduplicating
    /// revisited states. Invariants are checked on every distinct
    /// state, quiescence conditions on every terminal state.
    ///
    /// # Panics
    /// Panics if the state count exceeds `max_states` — that is a
    /// scope bug in the caller, not a protocol violation.
    pub fn explore(&self) -> Result<ExploreStats, Failure> {
        let mut stats = ExploreStats::default();
        let mut visited: HashSet<M::State> = HashSet::new();
        // Each frame: the state, its enabled steps, the next branch to
        // take. `path` mirrors the stack for trace reconstruction.
        struct Frame<S> {
            state: S,
            steps: Vec<Step>,
            next: usize,
        }
        let mut path: Vec<Step> = Vec::new();
        let mut stack: Vec<Frame<M::State>> = Vec::new();

        let init = self.model.initial();
        self.enter(&init, &mut visited, &mut stats, &path)?;
        stack.push(Frame {
            steps: self.model.enabled(&init),
            state: init,
            next: 0,
        });

        while let Some(frame) = stack.last_mut() {
            if frame.next >= frame.steps.len() {
                stack.pop();
                path.pop();
                continue;
            }
            let step = frame.steps[frame.next].clone();
            frame.next += 1;
            if stack.len() > self.max_depth {
                stats.truncated += 1;
                continue;
            }
            let state = self.model.apply(&stack.last().expect("frame").state, &step);
            path.push(step);
            stats.max_depth_seen = stats.max_depth_seen.max(path.len());
            if visited.contains(&state) {
                path.pop();
                continue;
            }
            self.enter(&state, &mut visited, &mut stats, &path)?;
            stack.push(Frame {
                steps: self.model.enabled(&state),
                state,
                next: 0,
            });
        }
        Ok(stats)
    }

    /// Records a newly reached state: dedup bookkeeping, safety check,
    /// and — when terminal — the quiescence check.
    fn enter(
        &self,
        state: &M::State,
        visited: &mut HashSet<M::State>,
        stats: &mut ExploreStats,
        path: &[Step],
    ) -> Result<(), Failure> {
        assert!(
            visited.len() < self.max_states,
            "model `{}` exceeded {} states — scope too large for exhaustive \
             exploration, use walk()",
            self.model.name(),
            self.max_states
        );
        visited.insert(state.clone());
        stats.states += 1;
        self.model.check(state).map_err(|violation| Failure {
            model: self.model.name(),
            violation,
            trace: path.to_vec(),
        })?;
        if self.model.enabled(state).is_empty() {
            stats.quiescent += 1;
            self.model
                .check_quiescent(state)
                .map_err(|violation| Failure {
                    model: self.model.name(),
                    violation,
                    trace: path.to_vec(),
                })?;
        }
        Ok(())
    }

    /// Seeded random-walk soak: `schedules` random schedules, each up
    /// to `max_depth` steps. On a violation the failing schedule is
    /// shrunk by greedy choice removal and replayed, so the returned
    /// [`Failure`] carries a minimized step-by-step trace.
    pub fn walk(&self, seed: u64, schedules: usize) -> Result<WalkStats, Failure> {
        let mut stats = WalkStats::default();
        let mut rng = Rng::new(seed);
        for _ in 0..schedules {
            // Record the raw choices so the schedule replays exactly.
            let mut choices = Vec::new();
            for _ in 0..self.max_depth {
                choices.push(rng.next_u64());
            }
            match self.replay(&choices) {
                Replay::Clean { steps, quiescent } => {
                    stats.schedules += 1;
                    stats.steps += steps;
                    if !quiescent {
                        stats.truncated += 1;
                    }
                }
                Replay::Failed(_) => {
                    let minimal = self.shrink(choices);
                    match self.replay(&minimal) {
                        Replay::Failed(failure) => return Err(failure),
                        Replay::Clean { .. } => {
                            unreachable!("shrink keeps only still-failing schedules")
                        }
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Replays a concrete schedule: at each state, the next choice
    /// picks among the enabled steps (`choice % enabled.len()`). A
    /// schedule shorter than the run continues with choice 0 —
    /// dropping a choice during shrinking therefore stays meaningful.
    fn replay(&self, choices: &[u64]) -> Replay {
        let mut state = self.model.initial();
        let mut trace = Vec::new();
        let fail = |violation, trace: &[Step]| {
            Replay::Failed(Failure {
                model: self.model.name(),
                violation,
                trace: trace.to_vec(),
            })
        };
        if let Err(v) = self.model.check(&state) {
            return fail(v, &trace);
        }
        for i in 0..self.max_depth {
            let enabled = self.model.enabled(&state);
            if enabled.is_empty() {
                return match self.model.check_quiescent(&state) {
                    Ok(()) => Replay::Clean {
                        steps: trace.len(),
                        quiescent: true,
                    },
                    Err(v) => fail(v, &trace),
                };
            }
            let choice = choices.get(i).copied().unwrap_or(0) as usize;
            let step = enabled[choice % enabled.len()].clone();
            state = self.model.apply(&state, &step);
            trace.push(step);
            if let Err(v) = self.model.check(&state) {
                return fail(v, &trace);
            }
        }
        Replay::Clean {
            steps: trace.len(),
            quiescent: false,
        }
    }

    /// Greedy schedule minimization: repeatedly try dropping one
    /// choice; keep any drop under which the schedule still fails.
    /// Loops to a fixpoint, so the result is 1-minimal (no single
    /// choice can be removed).
    fn shrink(&self, mut choices: Vec<u64>) -> Vec<u64> {
        loop {
            let mut shrunk = false;
            let mut i = 0;
            while i < choices.len() {
                let mut candidate = choices.clone();
                candidate.remove(i);
                if matches!(self.replay(&candidate), Replay::Failed(_)) {
                    choices = candidate;
                    shrunk = true;
                } else {
                    i += 1;
                }
            }
            if !shrunk {
                return choices;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: two actors each increment a shared counter twice;
    /// the (deliberately broken) invariant caps the counter, so the
    /// explorer must find and shrink a failing schedule.
    struct Counter {
        cap: u64,
    }

    impl Model for Counter {
        type State = (u64, [usize; 2]);

        fn name(&self) -> &'static str {
            "counter"
        }

        fn initial(&self) -> Self::State {
            (0, [0, 0])
        }

        fn enabled(&self, s: &Self::State) -> Vec<Step> {
            (0..2)
                .filter(|&a| s.1[a] < 2)
                .map(|a| Step::new(a, 0, "incr"))
                .collect()
        }

        fn apply(&self, s: &Self::State, step: &Step) -> Self::State {
            let mut next = *s;
            next.0 += 1;
            next.1[step.actor] += 1;
            next
        }

        fn check(&self, s: &Self::State) -> Result<(), Violation> {
            if s.0 > self.cap {
                return Err(Violation::new("cap", format!("counter reached {}", s.0)));
            }
            Ok(())
        }

        fn check_quiescent(&self, s: &Self::State) -> Result<(), Violation> {
            if s.0 != 4 {
                return Err(Violation::new("all-increments-land", format!("{}", s.0)));
            }
            Ok(())
        }
    }

    #[test]
    fn exhaustive_pass_and_fail() {
        let ok = Explorer::new(Counter { cap: 4 }).explore().unwrap();
        assert!(ok.states > 0);
        assert!(ok.quiescent >= 1);
        assert_eq!(ok.truncated, 0, "scope must be fully explored");

        let failure = Explorer::new(Counter { cap: 3 }).explore().unwrap_err();
        assert_eq!(failure.violation.invariant, "cap");
        assert_eq!(failure.trace.len(), 4, "trace reaches the 4th increment");
    }

    #[test]
    fn walk_finds_and_shrinks() {
        let failure = Explorer::new(Counter { cap: 2 })
            .walk(0xfa57_ca7c, 64)
            .unwrap_err();
        assert_eq!(failure.violation.invariant, "cap");
        // 1-minimal: exactly the three increments needed to pass the
        // cap, nothing else.
        assert_eq!(failure.trace.len(), 3);
        let rendered = failure.to_string();
        assert!(rendered.contains("violation of `cap`"));
        assert!(rendered.contains("  1. [actor"));
    }

    #[test]
    fn walk_clean_reports_stats() {
        let stats = Explorer::new(Counter { cap: 4 }).walk(7, 32).unwrap();
        assert_eq!(stats.schedules, 32);
        assert_eq!(stats.truncated, 0);
        assert_eq!(stats.steps, 32 * 4);
    }

    #[test]
    fn rng_is_deterministic() {
        let (mut a, mut b) = (Rng::new(42), Rng::new(42));
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }
}
