//! Randomized-schedule soaks over the five protocol models.
//!
//! Two tiers:
//!
//! * The `*_soak_slice` tests run 10,000 fixed-seed schedules per
//!   model — fast enough for every CI run, deterministic by
//!   construction (the explorer's PRNG is seeded, never wall-clock).
//! * The `#[ignore]`d `*_soak_long` tests are the overnight knob:
//!   `FASTMATCH_CHECK_ITERS=1000000 cargo test -q -p fastmatch-check
//!   -- --ignored soak` runs that many schedules per model (default
//!   200,000 when the variable is unset). On a violation the failing
//!   schedule is shrunk and printed step by step.
//!
//! Soaks use *larger* scopes than the exhaustive unit tests — more
//! workers, more rounds, more tasks — trading completeness for reach.

use fastmatch_check::explorer::{Explorer, Model};
use fastmatch_check::models::{
    AdmissionSteal, DemandPublish, LiveLifecycle, ParkExit, WalRecovery,
};

/// Fixed seed for the CI slices; the long soaks perturb it per chunk.
const SEED: u64 = 0xfa57_4a7c_0dec_0de5;

/// Schedules per model in the CI slice tier.
const SLICE: usize = 10_000;

/// Schedules per model in the long tier, unless
/// `FASTMATCH_CHECK_ITERS` overrides it.
fn long_iters() -> usize {
    std::env::var("FASTMATCH_CHECK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

/// Runs `iters` schedules in seed-perturbed chunks so a violation
/// report names the chunk seed that reproduces it standalone.
fn soak<M: Model>(model: M, iters: usize) {
    let explorer = Explorer::new(model);
    let chunk = 10_000;
    let mut left = iters;
    let mut chunk_no = 0u64;
    while left > 0 {
        let seed = SEED.wrapping_add(chunk_no.wrapping_mul(0x9e37_79b9));
        let n = left.min(chunk);
        let stats = explorer
            .walk(seed, n)
            .unwrap_or_else(|f| panic!("soak seed {seed:#x}:\n{f}"));
        assert_eq!(stats.schedules, n);
        left -= n;
        chunk_no += 1;
    }
}

/// Soak scopes: bigger than the exhaustive unit-test scopes.
fn demand_publish() -> DemandPublish {
    DemandPublish::new(4, 3, 4)
}

fn park_exit() -> ParkExit {
    ParkExit::new(vec![(2, 1), (0, 2), (1, 0), (0, 1)])
}

fn admission_steal() -> AdmissionSteal {
    AdmissionSteal::new(3, vec![2, 1, 3, 1], 3)
}

fn live_lifecycle() -> LiveLifecycle {
    LiveLifecycle::new(8, 2, 3, 2)
}

fn wal_recovery() -> WalRecovery {
    WalRecovery::new(9, 2)
}

#[test]
fn demand_publish_soak_slice() {
    soak(demand_publish(), SLICE);
}

#[test]
fn park_exit_soak_slice() {
    soak(park_exit(), SLICE);
}

#[test]
fn admission_steal_soak_slice() {
    soak(admission_steal(), SLICE);
}

#[test]
fn live_lifecycle_soak_slice() {
    soak(live_lifecycle(), SLICE);
}

#[test]
fn wal_recovery_soak_slice() {
    soak(wal_recovery(), SLICE);
}

#[test]
#[ignore = "long soak; run with --ignored, scale with FASTMATCH_CHECK_ITERS"]
fn demand_publish_soak_long() {
    soak(demand_publish(), long_iters());
}

#[test]
#[ignore = "long soak; run with --ignored, scale with FASTMATCH_CHECK_ITERS"]
fn park_exit_soak_long() {
    soak(park_exit(), long_iters());
}

#[test]
#[ignore = "long soak; run with --ignored, scale with FASTMATCH_CHECK_ITERS"]
fn admission_steal_soak_long() {
    soak(admission_steal(), long_iters());
}

#[test]
#[ignore = "long soak; run with --ignored, scale with FASTMATCH_CHECK_ITERS"]
fn live_lifecycle_soak_long() {
    soak(live_lifecycle(), long_iters());
}

#[test]
#[ignore = "long soak; run with --ignored, scale with FASTMATCH_CHECK_ITERS"]
fn wal_recovery_soak_long() {
    soak(wal_recovery(), long_iters());
}
