//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its `harness = false` benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! straightforward repeated-sample walltime estimate (median and mean of
//! `sample_size` samples, each auto-scaled to a minimum per-sample
//! duration) — no warmup-calibrated statistics, outlier analysis, or HTML
//! reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// computations.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations per timed sample (calibrated by the harness).
    iters: u64,
    /// Total elapsed time of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times and records the elapsed walltime.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness: collects timing samples and prints a summary
/// line per benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warmup time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints `id ... median/mean per-iteration
    /// time`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warmup + calibration: find an iteration count whose sample takes
        // roughly measurement_time / sample_size.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        loop {
            f(&mut b);
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
            if b.elapsed < Duration::from_millis(1) && b.iters < u64::MAX / 2 {
                b.iters *= 2;
            }
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let target_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        b.iters = ((target_sample / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are never NaN"));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<48} median {:>12}  mean {:>12}  ({} samples x {} iters)",
            format_time(median),
            format_time(mean),
            self.sample_size,
            b.iters
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group: a function invoking each target with a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
