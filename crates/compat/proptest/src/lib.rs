//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its property tests use: the [`proptest!`] macro
//! (`arg in strategy` syntax, `#![proptest_config]`), range and
//! `prop::collection::vec` strategies, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are *not shrunk* — the failing inputs are reported as generated.
//! Case generation is seeded per test (from the test's name), so runs are
//! deterministic and reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Outcome of one generated case: rejected by `prop_assume!`, or failed an
/// assertion.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not meet an assumption; try another.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
}

/// Strategy combinators namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Either a fixed size (`usize`) or a random size range
        /// (`Range<usize>`) for [`vec()`].
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut StdRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// A strategy for `Vec<S::Value>` with the given size.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length comes from `size` (a `usize` or `Range<usize>`).
        pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Derives a deterministic per-test seed from the test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// Fails the current case if the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Rejects the current case (it is re-drawn, not counted) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut executed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(20).max(cfg.cases);
                while executed < cfg.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "property {} rejected too many cases ({} attempts for {} cases)",
                            stringify!($name), attempts, cfg.cases
                        );
                    }
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = ($strat).generate(&mut rng);)*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => executed += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {}: {}", stringify!($name), executed, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_are_respected(v in prop::collection::vec(0u64..5, 2usize..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for &e in &v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn fixed_size_and_map(v in prop::collection::vec(0u32..3, 4usize).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
