//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *API subset* fastmatch actually uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle` — behind the same paths as rand 0.8.
//! The generator is xoshiro256++ seeded via SplitMix64: not rand's
//! ChaCha-based `StdRng`, but a high-quality, deterministic,
//! seed-reproducible PRNG, which is all the statistical machinery here
//! relies on (no code in this workspace depends on rand's exact stream).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the unit interval / full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types samplable uniformly from a half-open `lo..hi` range by
/// [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws one value from `lo..hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    // Lemire's multiply-shift reduction; bias is < 2^-64 per draw, far
    // below anything the statistical tests here can resolve.
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let width = (hi - lo) as u64;
                lo + bounded_u64(rng, width) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution (`[0, 1)` for
    /// `f64`, the full domain for integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from the half-open range `lo..hi`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_moves_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..1000).collect();
        v.shuffle(&mut rng);
        let moved = v
            .iter()
            .enumerate()
            .filter(|(i, &x)| x != *i as u32)
            .count();
        assert!(moved > 900, "only {moved} moved");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u32>>());
    }
}
