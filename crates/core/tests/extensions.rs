//! End-to-end tests of the Appendix A extensions through the in-memory
//! sampling driver.

use fastmatch_core::histsim::{HistSim, HistSimConfig, HistSimOutput};
use fastmatch_core::sampler::{tuples_from_histograms, MemorySampler};
use fastmatch_core::Metric;

/// 14 candidates over 4 groups: a cluster of 7 close to uniform (planted
/// counts), then a wide gap, then far candidates.
fn clustered_hists() -> Vec<Vec<u64>> {
    let mut hists = Vec::new();
    // 7 near-uniform candidates with slightly increasing skew
    for i in 0..7u64 {
        let d = i * 12;
        hists.push(vec![2000 + d, 2000 - d, 2000 + d, 2000 - d]);
    }
    // 7 far candidates, strongly peaked
    for i in 0..7usize {
        let mut h = vec![160u64; 4];
        h[i % 4] = 7520;
        hists.push(h);
    }
    hists
}

fn run(cfg: HistSimConfig, hists: &[Vec<u64>], seed: u64) -> HistSimOutput {
    let tuples = tuples_from_histograms(hists);
    let n = tuples.len() as u64;
    let mut hs = HistSim::new(cfg, hists.len(), 4, n, &[0.25; 4]).unwrap();
    let mut sampler = MemorySampler::new(tuples, hists.len(), seed);
    sampler.run(&mut hs).unwrap()
}

#[test]
fn k_range_picks_the_natural_cluster() {
    // Appendix A.2.3: with k ∈ [4, 10] permitted and a 7-candidate cluster
    // followed by a big gap, the algorithm should settle on k = 7.
    let cfg = HistSimConfig {
        k: 0,
        k_range: Some((4, 10)),
        epsilon: 0.15,
        delta: 0.05,
        sigma: 0.0,
        stage1_samples: 5_000,
        ..HistSimConfig::default()
    };
    let out = run(cfg, &clustered_hists(), 3);
    assert_eq!(
        out.diagnostics.effective_k, 7,
        "chose k = {}",
        out.diagnostics.effective_k
    );
    let mut ids = out.candidate_ids();
    ids.sort_unstable();
    assert_eq!(ids, (0..7).collect::<Vec<u32>>());
}

#[test]
fn k_range_respects_bounds() {
    let cfg = HistSimConfig {
        k: 0,
        k_range: Some((2, 3)),
        epsilon: 0.15,
        delta: 0.05,
        sigma: 0.0,
        stage1_samples: 5_000,
        ..HistSimConfig::default()
    };
    let out = run(cfg, &clustered_hists(), 4);
    assert!(
        (2..=3).contains(&out.matches.len()),
        "returned {} matches",
        out.matches.len()
    );
}

#[test]
fn dual_epsilon_tightens_reconstruction_only() {
    // Appendix A.2.1: a small ε₂ forces more stage-3 samples per member
    // without changing the separation semantics. A generous ε keeps the
    // stage-2 demands small so the stage-3 difference is observable, and
    // candidates are scaled up so neither run consumes them fully.
    let hists: Vec<Vec<u64>> = clustered_hists()
        .into_iter()
        .map(|h| h.into_iter().map(|c| c * 5).collect())
        .collect();
    let loose = HistSimConfig {
        k: 2,
        epsilon: 0.3,
        epsilon_reconstruction: None,
        delta: 0.05,
        sigma: 0.0,
        stage1_samples: 4_000,
        ..HistSimConfig::default()
    };
    let tight = HistSimConfig {
        epsilon_reconstruction: Some(0.05),
        ..loose.clone()
    };
    let out_loose = run(loose, &hists, 5);
    let out_tight = run(tight, &hists, 5);
    assert_eq!(out_loose.candidate_ids(), out_tight.candidate_ids());
    let min_samples = |o: &HistSimOutput| o.matches.iter().map(|m| m.samples).min().unwrap();
    assert!(
        min_samples(&out_tight) > min_samples(&out_loose),
        "tight ε₂ must demand more reconstruction samples ({} vs {})",
        min_samples(&out_tight),
        min_samples(&out_loose)
    );
}

#[test]
fn l2_metric_runs_end_to_end() {
    // Appendix A.2.2: the ℓ2 bound variant identifies the near-uniform
    // cluster. The seven cluster members are only ≈ 0.003 apart in ℓ2 —
    // far below ε — so any of them is a separation-correct top-1; which
    // one wins is sampling noise, not semantics.
    let cfg = HistSimConfig {
        k: 1,
        metric: Metric::L2,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.0,
        stage1_samples: 5_000,
        ..HistSimConfig::default()
    };
    let out = run(cfg, &clustered_hists(), 6);
    assert_eq!(out.matches.len(), 1);
    assert!(out.candidate_ids()[0] < 7, "got {:?}", out.candidate_ids());
}

#[test]
fn unseen_mass_test_reports_when_domain_sampled_enough() {
    // Appendix A.1.5: with a meaningful σ and plenty of stage-1 samples,
    // the dummy-candidate test certifies that fully unseen candidates are
    // collectively rare.
    let cfg = HistSimConfig {
        k: 2,
        epsilon: 0.2,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: 20_000,
        test_unseen_mass: true,
        ..HistSimConfig::default()
    };
    let out = run(cfg, &clustered_hists(), 7);
    assert_eq!(out.diagnostics.unseen_mass_rare, Some(true));
}

#[test]
fn unseen_mass_test_absent_by_default() {
    let cfg = HistSimConfig {
        k: 2,
        epsilon: 0.2,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: 20_000,
        ..HistSimConfig::default()
    };
    let out = run(cfg, &clustered_hists(), 8);
    assert_eq!(out.diagnostics.unseen_mass_rare, None);
}

#[test]
fn measure_biased_sampling_supports_sum_queries() {
    // Appendix A.1.1: COUNT over a measure-biased sample estimates SUM
    // proportions. Candidate 0's group-0 tuples carry weight 10; under
    // SUM semantics its histogram shifts toward group 0.
    use fastmatch_core::extensions::measure_biased::measure_biased_tuples;
    let mut tuples = Vec::new();
    let mut weights = Vec::new();
    for i in 0..40_000usize {
        let g = (i % 2) as u32;
        tuples.push((0u32, g));
        weights.push(if g == 0 { 10.0 } else { 1.0 });
    }
    let biased = measure_biased_tuples(&tuples, &weights, 10_000, 9);
    let g0 = biased.iter().filter(|t| t.1 == 0).count() as f64;
    let frac = g0 / biased.len() as f64;
    // SUM proportion of group 0 = 10/11 ≈ 0.909
    assert!((frac - 10.0 / 11.0).abs() < 0.02, "frac = {frac}");
}

#[test]
fn multi_attribute_support_loosens_but_preserves_correctness() {
    // Appendix A.1.3: using an overestimated support (|VX1|·|VX2|) only
    // increases sample counts; the run still returns the right answer.
    use fastmatch_core::extensions::support_of_multiple_attributes;
    let support = support_of_multiple_attributes(&[2, 2]);
    assert_eq!(support, 4);
    let cfg = HistSimConfig {
        k: 1,
        epsilon: 0.15,
        delta: 0.05,
        sigma: 0.0,
        stage1_samples: 4_000,
        ..HistSimConfig::default()
    };
    // The 4 groups of the test data can be seen as a 2×2 composite. The
    // whole near-uniform cluster sits within ε of each other, so any of
    // its members is a separation-correct answer.
    let out = run(cfg, &clustered_hists(), 10);
    assert!(out.candidate_ids()[0] < 7, "got {:?}", out.candidate_ids());
}
