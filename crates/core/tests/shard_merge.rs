//! Property tests for the shard-accumulator ingestion path: splitting any
//! block stream across k shard accumulators and merging must be
//! indistinguishable — byte for byte — from sequential `ingest_block`.

use proptest::prelude::*;

use fastmatch_core::histsim::{HistAccumulator, HistSim, HistSimConfig, PhaseKind};

/// Expands seeds into a concrete tuple stream for a given domain.
fn stream_for(nc: usize, ng: usize, picks: &[(u32, u32)]) -> Vec<(u32, u32)> {
    picks
        .iter()
        .map(|&(a, b)| ((a as usize % nc) as u32, (b as usize % ng) as u32))
        .collect()
}

/// Splits `tuples` into blocks of `block` tuples and returns the column
/// slices of block `i`.
fn blocks_of(tuples: &[(u32, u32)], block: usize) -> Vec<(Vec<u32>, Vec<u32>)> {
    tuples
        .chunks(block.max(1))
        .map(|chunk| {
            (
                chunk.iter().map(|t| t.0).collect(),
                chunk.iter().map(|t| t.1).collect(),
            )
        })
        .collect()
}

/// Deterministic config exercising all three stages on small streams.
fn cfg(k: usize, stage1: u64) -> HistSimConfig {
    HistSimConfig {
        k,
        epsilon: 0.2,
        delta: 0.05,
        sigma: 0.0,
        stage1_samples: stage1,
        ..HistSimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Within one I/O phase: any k-way shard split of a block stream,
    /// merged in any shard order, leaves HistSim byte-identical (Debug
    /// repr dumps every field) to sequential ingest_block.
    #[test]
    fn sharded_merge_is_byte_identical_within_phase(
        picks in prop::collection::vec((0u32..1000, 0u32..1000), 8..160),
        nc in 2usize..12,
        ng in 2usize..6,
        block in 1usize..16,
        k_shards in 1usize..6,
    ) {
        let tuples = stream_for(nc, ng, &picks);
        let blocks = blocks_of(&tuples, block);
        let make = || HistSim::new(cfg(1, 1_000_000), nc, ng, 1_000_000, &vec![1.0 / ng as f64; ng]).unwrap();

        // Sequential reference: one ingest_block per block.
        let mut seq = make();
        for (zs, xs) in &blocks {
            seq.ingest_block(zs, xs);
        }

        // Sharded: round-robin blocks over k accumulators, merge them in
        // reversed shard order (order must not matter).
        let mut shards: Vec<HistAccumulator> =
            (0..k_shards).map(|_| HistAccumulator::new(nc, ng)).collect();
        for (i, (zs, xs)) in blocks.iter().enumerate() {
            shards[i % k_shards].accumulate(zs, xs);
        }
        let mut par = make();
        for acc in shards.into_iter().rev() {
            par.merge(acc);
        }

        prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    /// Tree reduction: merging shard accumulators into one accumulator
    /// first (merge_from), then into HistSim, equals both the flat-merge
    /// and the sequential paths.
    #[test]
    fn tree_reduction_equals_flat_merge(
        picks in prop::collection::vec((0u32..1000, 0u32..1000), 4..120),
        nc in 2usize..10,
        ng in 2usize..5,
        k_shards in 2usize..5,
    ) {
        let tuples = stream_for(nc, ng, &picks);
        let make = || HistSim::new(cfg(1, 1_000_000), nc, ng, 1_000_000, &vec![1.0 / ng as f64; ng]).unwrap();

        let mut seq = make();
        let zs: Vec<u32> = tuples.iter().map(|t| t.0).collect();
        let xs: Vec<u32> = tuples.iter().map(|t| t.1).collect();
        seq.ingest_block(&zs, &xs);

        let mut shards: Vec<HistAccumulator> =
            (0..k_shards).map(|_| HistAccumulator::new(nc, ng)).collect();
        for (i, &(z, x)) in tuples.iter().enumerate() {
            shards[i % k_shards].accumulate_one(z, x);
        }
        let mut root = HistAccumulator::new(nc, ng);
        for s in &shards {
            root.merge_from(s);
        }
        let mut par = make();
        par.merge(root);

        prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    /// Across phase boundaries and to completion: driving two runs with
    /// the same per-phase sample schedule — one per-block sequential, one
    /// shard-merged — produces byte-identical state at every phase
    /// transition and identical output.
    #[test]
    fn full_run_equivalence_across_phases(
        picks in prop::collection::vec((0u32..1000, 0u32..1000), 60..240),
        nc in 2usize..8,
        ng in 2usize..5,
        k_shards in 1usize..5,
        stage1 in 8u64..40,
    ) {
        let tuples = stream_for(nc, ng, &picks);
        let n = tuples.len() as u64;
        let target = vec![1.0 / ng as f64; ng];
        let make = || HistSim::new(cfg(1, stage1), nc, ng, n, &target).unwrap();
        let mut seq = make();
        let mut par = make();

        // Feed both runs the same stream in lockstep, phase by phase:
        // sequential ingests per block of 7, parallel accumulates the
        // same blocks round-robin into k shards and merges at each
        // demand-satisfaction point.
        let blocks = blocks_of(&tuples, 7);
        let mut next_block = 0usize;
        while !seq.is_done() && next_block < blocks.len() {
            // One I/O phase: deliver blocks until demand is satisfied or
            // the stream runs dry.
            let mut shards: Vec<HistAccumulator> =
                (0..k_shards).map(|_| HistAccumulator::new(nc, ng)).collect();
            let mut i = 0usize;
            while !seq.io_satisfied() && next_block < blocks.len() {
                let (zs, xs) = &blocks[next_block];
                next_block += 1;
                seq.ingest_block(zs, xs);
                shards[i % k_shards].accumulate(zs, xs);
                i += 1;
            }
            for acc in shards {
                par.merge(acc);
            }
            prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"));
            let exhausted = next_block >= blocks.len() && !seq.io_satisfied();
            seq.complete_io_phase(exhausted).unwrap();
            par.complete_io_phase(exhausted).unwrap();
            prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"));
        }
        if seq.phase() == PhaseKind::Done {
            let a = seq.output().unwrap();
            let b = par.output().unwrap();
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    /// Merge-after-transition: a stale accumulator — filled by a shard
    /// worker under the *previous* phase's demand but merged only after
    /// the phase transition — must never resurrect a pruned candidate
    /// (neither its counts nor its demand) and must never *increase* any
    /// candidate's outstanding demand.
    #[test]
    fn stale_batch_after_transition_cannot_resurrect_pruned_candidates(
        picks in prop::collection::vec((0u32..1000, 0u32..1000), 10..80),
        nc in 3usize..10,
        ng in 2usize..5,
        rare_hits in 0u32..2,
    ) {
        // Stage-1 stream: candidate `rare` (= nc - 1) appears at most
        // once in 400 tuples while every other candidate appears often
        // (≥ 400/9 ≈ 44 times); under the null Nᵢ ≥ ⌈σN⌉ (expected count
        // σ·400 = 20) the hypergeometric test prunes exactly the rare
        // one.
        let rare = (nc - 1) as u32;
        let stage1: Vec<(u32, u32)> = (0..400u32)
            .map(|i| {
                if i == 0 && rare_hits > 0 {
                    (rare, 0)
                } else {
                    (i % (nc as u32 - 1), i % ng as u32)
                }
            })
            .collect();
        let config = HistSimConfig {
            k: 1,
            epsilon: 0.2,
            delta: 0.05,
            sigma: 0.05,
            stage1_samples: 400,
            ..HistSimConfig::default()
        };
        let mut hs = HistSim::new(config, nc, ng, 1_000_000, &vec![1.0 / ng as f64; ng]).unwrap();

        // A shard worker accumulates a batch during stage 1…
        let stale = {
            let mut acc = HistAccumulator::new(nc, ng);
            for &(a, b) in &picks {
                acc.accumulate_one(a % nc as u32, b % ng as u32);
            }
            // …always containing tuples of the soon-to-be-pruned rare
            // candidate.
            acc.accumulate_one(rare, 0);
            acc
        };

        // Meanwhile the statistics engine completes stage 1 from other
        // shards' data and transitions.
        let (zs, xs): (Vec<u32>, Vec<u32>) = stage1.into_iter().unzip();
        hs.ingest_block(&zs, &xs);
        hs.complete_io_phase(false).unwrap();
        prop_assume!(!hs.is_done());
        prop_assert!(hs.is_pruned(rare), "rare candidate must be pruned by stage 1");

        let samples_before = hs.samples_for(rare);
        let remaining_before: Vec<u64> = hs.remaining_slice().to_vec();

        // The stale batch lands after the transition.
        hs.merge(stale);

        // The pruned candidate stays dead: no counts, no demand.
        prop_assert_eq!(hs.samples_for(rare), samples_before,
            "stale merge resurrected a pruned candidate's counts");
        prop_assert!(hs.is_pruned(rare));
        prop_assert_eq!(hs.remaining_slice()[rare as usize], 0u64);
        // Demand decrements saturate: no candidate's outstanding count
        // may grow from a merge, stale or not.
        for (c, (&after, &before)) in hs
            .remaining_slice()
            .iter()
            .zip(&remaining_before)
            .enumerate()
        {
            prop_assert!(after <= before,
                "candidate {c}: stale merge raised demand {before} -> {after}");
        }

        // The run still terminates cleanly after the stale merge, and the
        // pruned candidate never reappears in the output.
        let mut guard = 0;
        while !hs.is_done() {
            if hs.io_satisfied() {
                hs.complete_io_phase(false).unwrap();
            } else {
                let need: Vec<u32> = hs
                    .remaining_slice()
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| r > 0)
                    .map(|(c, _)| c as u32)
                    .collect();
                let mut acc = HistAccumulator::new(nc, ng);
                for &c in &need {
                    for g in 0..ng as u32 {
                        for _ in 0..((hs.remaining_slice()[c as usize] / ng as u64) + 1) {
                            acc.accumulate_one(c, g);
                        }
                    }
                }
                hs.merge(acc);
            }
            guard += 1;
            prop_assert!(guard < 10_000, "run failed to terminate");
        }
        let out = hs.output().unwrap();
        prop_assert!(
            !out.candidate_ids().contains(&rare),
            "pruned candidate resurfaced in the matched set"
        );
    }
}
