//! Property tests for the batched ingestion kernel: the validated-once
//! `HistAccumulator::accumulate` batch path must produce **bit-identical**
//! accumulator state — counts, n, touched list, tuples — to per-tuple
//! `accumulate_one` over arbitrary batch streams, including
//! clear-and-reuse cycles (which exercise the epoch-stamped touched
//! marks that replaced the `n == 0` first-touch branch).

use proptest::prelude::*;

use fastmatch_core::histsim::HistAccumulator;

/// Expands raw picks into domain-valid tuples.
fn stream_for(nc: usize, ng: usize, picks: &[(u32, u32)]) -> Vec<(u32, u32)> {
    picks
        .iter()
        .map(|&(a, b)| ((a as usize % nc) as u32, (b as usize % ng) as u32))
        .collect()
}

/// Asserts full logical-state equality between two accumulators.
fn assert_identical(batch: &HistAccumulator, per_tuple: &HistAccumulator) {
    assert_eq!(batch.tuples(), per_tuple.tuples());
    assert_eq!(batch.touched(), per_tuple.touched(), "touched order");
    for c in 0..batch.num_candidates() {
        assert_eq!(batch.n(c), per_tuple.n(c), "n[{c}]");
        assert_eq!(
            batch.candidate_counts(c),
            per_tuple.candidate_counts(c),
            "counts[{c}]"
        );
    }
    // The Debug repr dumps the logical state wholesale: a final
    // byte-identity check against representational drift.
    assert_eq!(format!("{batch:?}"), format!("{per_tuple:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One batch, arbitrary domain: batch kernel ≡ per-tuple loop.
    #[test]
    fn batch_equals_per_tuple_single_batch(
        picks in prop::collection::vec((0u32..1000, 0u32..1000), 0..200),
        nc in 1usize..40,
        ng in 1usize..9,
    ) {
        let tuples = stream_for(nc, ng, &picks);
        let zs: Vec<u32> = tuples.iter().map(|t| t.0).collect();
        let xs: Vec<u32> = tuples.iter().map(|t| t.1).collect();
        let mut batch = HistAccumulator::new(nc, ng);
        batch.accumulate(&zs, &xs);
        let mut per_tuple = HistAccumulator::new(nc, ng);
        for &(c, g) in &tuples {
            per_tuple.accumulate_one(c, g);
        }
        assert_identical(&batch, &per_tuple);
    }

    /// Many batches with interleaved clear-and-reuse cycles: after every
    /// batch — and after every clear — the two paths stay bit-identical,
    /// so a stale epoch stamp can never resurrect a cleared touched
    /// entry or drop a fresh one.
    #[test]
    fn batch_equals_per_tuple_across_clear_cycles(
        picks in prop::collection::vec((0u32..1000, 0u32..1000), 8..160),
        nc in 1usize..24,
        ng in 1usize..6,
        batch_len in 1usize..16,
        clear_every in 1usize..5,
    ) {
        let tuples = stream_for(nc, ng, &picks);
        let mut batch = HistAccumulator::new(nc, ng);
        let mut per_tuple = HistAccumulator::new(nc, ng);
        for (i, chunk) in tuples.chunks(batch_len).enumerate() {
            let zs: Vec<u32> = chunk.iter().map(|t| t.0).collect();
            let xs: Vec<u32> = chunk.iter().map(|t| t.1).collect();
            batch.accumulate(&zs, &xs);
            for &(c, g) in chunk {
                per_tuple.accumulate_one(c, g);
            }
            assert_identical(&batch, &per_tuple);
            if (i + 1) % clear_every == 0 {
                batch.clear();
                per_tuple.clear();
                assert_identical(&batch, &per_tuple);
                prop_assert!(batch.is_empty());
            }
        }
    }

    /// Mixed-path merges: accumulators filled by the batch kernel and by
    /// the per-tuple loop merge into identical joint state in either
    /// direction.
    #[test]
    fn merge_is_path_agnostic(
        picks in prop::collection::vec((0u32..1000, 0u32..1000), 4..120),
        nc in 1usize..16,
        ng in 1usize..5,
        split in 0usize..120,
    ) {
        let tuples = stream_for(nc, ng, &picks);
        let split = split.min(tuples.len());
        let (left, right) = tuples.split_at(split);

        // Left via the batch kernel, right per tuple.
        let mut a = HistAccumulator::new(nc, ng);
        a.accumulate(
            &left.iter().map(|t| t.0).collect::<Vec<_>>(),
            &left.iter().map(|t| t.1).collect::<Vec<_>>(),
        );
        let mut b = HistAccumulator::new(nc, ng);
        for &(c, g) in right {
            b.accumulate_one(c, g);
        }
        a.merge_from(&b);

        // Reference: everything through one per-tuple accumulator, in
        // the same left-then-right order (touched order must agree).
        let mut joint = HistAccumulator::new(nc, ng);
        for &(c, g) in left.iter().chain(right) {
            joint.accumulate_one(c, g);
        }
        // Merge dedups against candidates already touched on the left,
        // so only compare the commutative fields plus the touched *set*.
        assert_eq!(a.tuples(), joint.tuples());
        let mut at: Vec<u32> = a.touched().to_vec();
        let mut jt: Vec<u32> = joint.touched().to_vec();
        at.sort_unstable();
        jt.sort_unstable();
        assert_eq!(at, jt);
        for c in 0..nc {
            assert_eq!(a.n(c), joint.n(c), "n[{c}]");
            assert_eq!(a.candidate_counts(c), joint.candidate_counts(c), "counts[{c}]");
        }
    }
}
