//! Property-based tests for the statistical core.

use proptest::prelude::*;

use fastmatch_core::guarantees::GroundTruth;
use fastmatch_core::histsim::{HistSim, HistSimConfig};
use fastmatch_core::sampler::{tuples_from_histograms, MemorySampler};
use fastmatch_core::stats::deviation::DeviationBound;
use fastmatch_core::stats::holm_bonferroni::{bonferroni, HolmBonferroni};
use fastmatch_core::stats::hypergeometric;
use fastmatch_core::topk::k_smallest_indices;
use fastmatch_core::Metric;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1's ε(n) and n(ε) are mutually inverse and monotone.
    #[test]
    fn deviation_bound_inverse(
        groups in 1usize..400,
        eps in 0.01f64..1.5,
        delta in 1e-6f64..0.5,
    ) {
        let b = DeviationBound::L1 { groups };
        let n = b.samples_needed(eps, delta);
        prop_assert!(b.epsilon(n, delta) <= eps + 1e-12);
        if n > 1 {
            prop_assert!(b.epsilon(n - 1, delta) > eps);
        }
    }

    /// P-values decrease in both ε and n, and are valid probabilities.
    #[test]
    fn deviation_pvalues_monotone(
        groups in 1usize..100,
        eps in 0.01f64..1.0,
        n in 1u64..1_000_000,
    ) {
        let b = DeviationBound::L1 { groups };
        let p = b.pvalue(eps, n);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(b.pvalue(eps * 1.5, n) <= p + 1e-15);
        prop_assert!(b.pvalue(eps, n * 2) <= p + 1e-15);
    }

    /// Holm–Bonferroni rejects a superset of plain Bonferroni and never
    /// rejects a P-value above the raw level.
    #[test]
    fn holm_dominates_bonferroni(
        pvals in prop::collection::vec(0.0f64..1.0, 1..40),
        level in 0.001f64..0.3,
    ) {
        let hb = HolmBonferroni::test(&pvals, level);
        let bf = bonferroni(&pvals, level);
        for i in 0..pvals.len() {
            if bf[i] {
                prop_assert!(hb.rejected()[i]);
            }
            if hb.rejected()[i] {
                prop_assert!(pvals[i] <= level);
            }
        }
    }

    /// The hypergeometric pmf is a distribution and its prefix CDF is
    /// monotone, matching the shared-computation path.
    #[test]
    fn hypergeometric_consistency(
        n_total in 10u64..4000,
        k_frac in 0.01f64..0.99,
        m_frac in 0.01f64..0.99,
    ) {
        let k = ((n_total as f64 * k_frac) as u64).max(1);
        let m = ((n_total as f64 * m_frac) as u64).max(1);
        let total: f64 = (0..=m.min(k))
            .map(|j| hypergeometric::pmf(j, n_total, k, m))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "pmf sums to {total}");
        let sigma = k as f64 / n_total as f64;
        let n_is: Vec<u64> = (0..=m.min(k).min(20)).collect();
        let shared = hypergeometric::underrepresentation_pvalues(&n_is, n_total, sigma, m);
        for w in shared.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        for (i, &ni) in n_is.iter().enumerate() {
            let direct = hypergeometric::cdf_lower(ni, n_total, (sigma * n_total as f64).ceil() as u64, m);
            prop_assert!((shared[i] - direct).abs() < 1e-9);
        }
    }

    /// ℓ1 distance between random distributions is symmetric, bounded by
    /// 2, and satisfies the triangle inequality.
    #[test]
    fn l1_metric_axioms(
        a in prop::collection::vec(0.01f64..1.0, 2..30),
        b in prop::collection::vec(0.01f64..1.0, 2..30),
        c in prop::collection::vec(0.01f64..1.0, 2..30),
    ) {
        let n = a.len().min(b.len()).min(c.len());
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v[..n].iter().sum();
            v[..n].iter().map(|x| x / s).collect()
        };
        let (pa, pb, pc) = (norm(&a), norm(&b), norm(&c));
        let d = |x: &[f64], y: &[f64]| Metric::L1.eval(x, y);
        prop_assert!((d(&pa, &pb) - d(&pb, &pa)).abs() < 1e-12);
        prop_assert!(d(&pa, &pb) <= 2.0 + 1e-12);
        prop_assert!(d(&pa, &pc) <= d(&pa, &pb) + d(&pb, &pc) + 1e-12);
    }

    /// k-smallest selection returns ascending values and exactly the
    /// smallest eligible entries.
    #[test]
    fn k_smallest_is_correct(
        values in prop::collection::vec(0.0f64..10.0, 1..50),
        k in 1usize..10,
    ) {
        let eligible = vec![true; values.len()];
        let picked = k_smallest_indices(&values, k, &eligible);
        prop_assert_eq!(picked.len(), k.min(values.len()));
        for w in picked.windows(2) {
            prop_assert!(values[w[0]] <= values[w[1]]);
        }
        if let Some(&worst) = picked.last() {
            let picked_set: std::collections::HashSet<_> = picked.iter().copied().collect();
            for (i, &v) in values.iter().enumerate() {
                if !picked_set.contains(&i) {
                    prop_assert!(v >= values[worst] - 1e-12);
                }
            }
        }
    }

    /// End-to-end HistSim on random small instances: when the sampler is
    /// allowed to exhaust the data, the output must satisfy both
    /// guarantees against exact ground truth — regardless of the data.
    #[test]
    fn histsim_guarantees_on_random_instances(
        hist_rows in prop::collection::vec(
            prop::collection::vec(0u64..80, 4),
            3..12
        ),
        seed in 0u64..1000,
        k in 1usize..4,
    ) {
        let total: u64 = hist_rows.iter().flatten().sum();
        prop_assume!(total > 0);
        let groups = 4;
        let cfg = HistSimConfig {
            k,
            epsilon: 0.25,
            delta: 0.1,
            sigma: 0.0,
            stage1_samples: (total / 3).max(1),
            ..HistSimConfig::default()
        };
        let target = [0.25f64; 4];
        let tuples = tuples_from_histograms(&hist_rows);
        let mut sampler = MemorySampler::new(tuples.clone(), hist_rows.len(), seed);
        let mut hs = HistSim::new(cfg.clone(), hist_rows.len(), groups, total, &target).unwrap();
        let out = sampler.run(&mut hs).unwrap();

        let truth = GroundTruth::from_tuples(
            tuples.iter().map(|s| (s.candidate, s.group)),
            hist_rows.len(),
            groups,
            target.to_vec(),
            Metric::L1,
        );
        prop_assert!(
            truth.check_separation(&out.candidate_ids(), cfg.epsilon, cfg.sigma),
            "separation violated: got {:?}, true {:?}",
            out.candidate_ids(),
            truth.true_topk(k, 0.0)
        );
        prop_assert!(truth.check_reconstruction(&out.matches, cfg.epsilon));
    }

    /// Weighted sampling without replacement returns distinct indices of
    /// the requested size, never selecting zero-weight items.
    #[test]
    fn weighted_sampling_properties(
        weights in prop::collection::vec(0.0f64..5.0, 1..60),
        m in 1usize..20,
        seed in 0u64..500,
    ) {
        use fastmatch_core::extensions::measure_biased::weighted_sample_without_replacement;
        let s = weighted_sample_without_replacement(&weights, m, seed);
        let positive = weights.iter().filter(|&&w| w > 0.0).count();
        prop_assert_eq!(s.len(), m.min(positive));
        let mut d = s.clone();
        d.dedup();
        prop_assert_eq!(d.len(), s.len(), "indices must be distinct");
        for &i in &s {
            prop_assert!(weights[i] > 0.0);
        }
    }
}
