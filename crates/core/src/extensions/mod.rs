//! Appendix A extensions of HistSim.
//!
//! Most of the Appendix A generalizations are configuration-driven and
//! live directly in the core algorithm:
//!
//! | Extension | Paper section | Where |
//! |---|---|---|
//! | Distinct ε₁/ε₂ for the two guarantees | A.2.1 | [`crate::HistSimConfig::epsilon_reconstruction`] |
//! | ℓ2 distance with its own deviation bound | A.2.2 | [`crate::Metric::L2`] + [`crate::stats::deviation::DeviationBound::L2`] |
//! | Range of k `[k₁, k₂]` | A.2.3 | [`crate::HistSimConfig::k_range`] + [`crate::topk::choose_k_in_range`] |
//! | Unknown candidate domain (dummy candidate) | A.1.5 | [`crate::HistSimConfig::test_unseen_mass`] |
//! | Multiple GROUP BY attributes | A.1.3 | [`support_of_multiple_attributes`] |
//! | SUM aggregations via measure-biased sampling | A.1.1 | [`measure_biased`] |
//!
//! Boolean-predicate candidates (A.1.2) and continuous binning (A.1.4 /
//! A.1.6) are storage-level concerns: see `fastmatch-store`'s `predicate`,
//! `density` and `binning` modules.

pub mod measure_biased;

/// Appendix A.1.3: the support size to use in Theorem 1 when grouping by
/// several attributes `X⁽¹⁾…X⁽ⁿ⁾` is the product of their cardinalities.
/// This may overestimate (if some value combinations never co-occur), which
/// only loosens the bound — correctness is unaffected.
///
/// Saturates at `usize::MAX` on overflow.
pub fn support_of_multiple_attributes(cardinalities: &[usize]) -> usize {
    cardinalities
        .iter()
        .copied()
        .try_fold(1usize, |acc, c| acc.checked_mul(c))
        .unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_of_cardinalities() {
        assert_eq!(support_of_multiple_attributes(&[24]), 24);
        assert_eq!(support_of_multiple_attributes(&[24, 7]), 168);
        assert_eq!(support_of_multiple_attributes(&[2, 3, 5]), 30);
        assert_eq!(support_of_multiple_attributes(&[]), 1);
    }

    #[test]
    fn overflow_saturates() {
        assert_eq!(support_of_multiple_attributes(&[usize::MAX, 2]), usize::MAX);
    }
}
