//! Measure-biased sampling for SUM aggregations (Appendix A.1.1).
//!
//! To match bar charts produced by `SELECT X, SUM(Y) … GROUP BY X`, the
//! paper (following Sample+Seek) preprocesses a *measure-biased sample*:
//! tuples are included with probability proportional to their `Y` value,
//! after which the COUNT-based machinery applies unchanged — the expected
//! per-group count of the biased sample is proportional to the group's
//! exact SUM.
//!
//! We implement the weighted sampling step with the Efraimidis–Spirakis
//! exponential-key method: assign each tuple the key `ln(u)/wᵢ`
//! (`u ~ U(0,1)`) and keep the `m` largest keys. This draws a weighted
//! sample *without replacement* in one pass and `O(n log m)` time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(key, index)` pair ordered by key ascending so the binary heap pops
/// the *smallest* key (we keep the m largest keys overall).
#[derive(Debug, PartialEq)]
struct HeapItem {
    key: f64,
    index: usize,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want to evict the smallest.
        other
            .key
            .partial_cmp(&self.key)
            .expect("keys are never NaN")
    }
}

/// Draws `m` indices without replacement with probability proportional to
/// `weights` (Efraimidis–Spirakis A-Res). Zero-weight tuples are never
/// selected; if fewer than `m` tuples have positive weight, all of them are
/// returned.
///
/// # Panics
/// Panics if any weight is negative or non-finite.
pub fn weighted_sample_without_replacement(weights: &[f64], m: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(m + 1);
    for (i, &w) in weights.iter().enumerate() {
        assert!(w.is_finite() && w >= 0.0, "weights must be finite and ≥ 0");
        if w == 0.0 || m == 0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let key = u.ln() / w; // larger is better (closer to 0)
        if heap.len() < m {
            heap.push(HeapItem { key, index: i });
        } else if let Some(worst) = heap.peek() {
            if key > worst.key {
                heap.pop();
                heap.push(HeapItem { key, index: i });
            }
        }
    }
    let mut out: Vec<usize> = heap.into_iter().map(|h| h.index).collect();
    out.sort_unstable();
    out
}

/// Expands a weighted table into a measure-biased sample of `(candidate,
/// group)` tuples, ready for COUNT-based HistSim: tuple `t` is included
/// w.p. ∝ `weights[t]`, so per-group counts of the result estimate the
/// per-group SUM proportions of the input.
pub fn measure_biased_tuples(
    tuples: &[(u32, u32)],
    weights: &[f64],
    m: usize,
    seed: u64,
) -> Vec<(u32, u32)> {
    assert_eq!(tuples.len(), weights.len());
    weighted_sample_without_replacement(weights, m, seed)
        .into_iter()
        .map(|i| tuples[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_is_respected() {
        let w = vec![1.0; 100];
        let s = weighted_sample_without_replacement(&w, 10, 1);
        assert_eq!(s.len(), 10);
        // without replacement: all distinct
        let mut d = s.clone();
        d.dedup();
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn zero_weights_are_never_selected() {
        let mut w = vec![0.0; 50];
        w[7] = 1.0;
        w[13] = 1.0;
        let s = weighted_sample_without_replacement(&w, 10, 2);
        assert_eq!(s, vec![7, 13]);
    }

    #[test]
    fn m_zero_returns_empty() {
        assert!(weighted_sample_without_replacement(&[1.0, 2.0], 0, 3).is_empty());
    }

    #[test]
    fn heavier_weights_are_selected_more_often() {
        // tuple 0 has weight 10, tuple 1 has weight 1: over many seeds,
        // drawing m=1 should pick tuple 0 ≈ 10/11 of the time.
        let w = [10.0, 1.0];
        let mut hits = 0;
        let trials = 2000;
        for seed in 0..trials {
            let s = weighted_sample_without_replacement(&w, 1, seed);
            if s == vec![0] {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!((frac - 10.0 / 11.0).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn biased_sample_estimates_sum_proportions() {
        // Two groups; group 0 tuples carry weight 9, group 1 weight 1,
        // equal tuple counts. SUM proportions are (0.9, 0.1); the biased
        // sample's COUNT proportions should approximate that. The identity
        // only holds when the sampling fraction is small — drawing a large
        // fraction without replacement depletes the heavy group first and
        // biases the proportions downward — so keep m ≪ n (here 5%, where
        // the exact successive-sampling expectation is ≈ 0.90).
        let n = 20_000usize;
        let mut tuples = Vec::new();
        let mut weights = Vec::new();
        for i in 0..n {
            let g = (i % 2) as u32;
            tuples.push((0u32, g));
            weights.push(if g == 0 { 9.0 } else { 1.0 });
        }
        let sample = measure_biased_tuples(&tuples, &weights, 1_000, 123);
        let g0 = sample.iter().filter(|t| t.1 == 0).count() as f64;
        let frac = g0 / sample.len() as f64;
        assert!((frac - 0.9).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "weights must be finite")]
    fn negative_weight_panics() {
        weighted_sample_without_replacement(&[1.0, -2.0], 1, 0);
    }
}
