//! The HistSim algorithm (paper §3, Algorithm 1) as a sans-I/O state
//! machine.
//!
//! HistSim proceeds through three stages, each budgeted an error
//! probability of `δ/3`:
//!
//! 1. **Stage 1 — prune rare candidates.** Take `m` uniform samples without
//!    replacement; flag candidates whose observed counts are surprisingly
//!    low under the null `Nᵢ ≥ ⌈σN⌉` (hypergeometric underrepresentation
//!    test + Holm–Bonferroni at level `δ/3`).
//! 2. **Stage 2 — identify the top-k.** In rounds: estimate the matching
//!    set `M` from cumulative distances, pick the split point
//!    `s = ½(max_{i∈M} τᵢ + min_{j∈A∖M} τⱼ)`, draw *fresh* samples until
//!    every candidate meets its per-round target `n′ᵢ` (Eq. 1), and run the
//!    Lemma 4 all-or-nothing test over the Lemma 2 null family at level
//!    `δ/(3·2ᵗ)`. Rejection certifies the separation guarantee.
//! 3. **Stage 3 — reconstruct the top-k.** Top up each member's cumulative
//!    samples to the Theorem 1 bound at level `δ/(3k)` so every output
//!    histogram is within ε of its exact counterpart.
//!
//! The driver (e.g. `fastmatch-engine`'s executors, or the in-memory
//! [`crate::sampler::MemorySampler`]) is responsible for producing samples.
//! The contract:
//!
//! ```text
//! loop {
//!     match histsim.phase() {
//!         Done => break,
//!         _ => {
//!             feed samples per histsim.demand(), via histsim.ingest(...);
//!             when histsim.io_satisfied() (or data exhausted):
//!                 histsim.complete_io_phase(exhausted)
//!         }
//!     }
//! }
//! ```
//!
//! Samples must be uniform draws without replacement from the underlying
//! table; a tuple must never be ingested twice over the whole run. If the
//! driver learns that a candidate's tuples have been fully consumed it
//! should call [`HistSim::mark_exact`]; if the *entire table* has been
//! consumed, pass `exhausted = true` and HistSim finishes with exact
//! results.
//!
//! Ingestion itself is split in two: phase-free delta *accumulation*
//! ([`accumulator::HistAccumulator`], shareable across threads) and a
//! phase-aware *merge* into the authoritative state ([`HistSim::merge`]).
//! [`HistSim::ingest`] / [`HistSim::ingest_block`] are thin
//! accumulate-then-merge wrappers preserving the original single-threaded
//! API; parallel drivers fill accumulators on worker threads and feed the
//! statistics thread batches to merge.

pub mod accumulator;
pub mod config;
pub mod state;

pub use accumulator::HistAccumulator;
pub use config::HistSimConfig;

use crate::error::{CoreError, Result};
use crate::histogram::Histogram;
use crate::stats::deviation::DeviationBound;
use crate::stats::holm_bonferroni::HolmBonferroni;
use crate::stats::hypergeometric;
use crate::stats::simultaneous::{simultaneous_test, Decision};
use crate::topk::{choose_k_in_range, k_smallest_indices};
use state::CountState;

/// Which stage the state machine is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Stage 1: uniform sampling to prune rare candidates.
    Stage1,
    /// Stage 2: round-based top-k identification.
    Stage2,
    /// Stage 3: reconstruction of the identified top-k.
    Stage3,
    /// Terminal state; output is available.
    Done,
}

/// What the algorithm currently needs from its driver.
#[derive(Debug, Clone, Copy)]
pub enum Demand<'a> {
    /// Stage 1: `remaining` more uniform samples (any candidate counts).
    Stage1Uniform {
        /// Number of additional uniform samples requested.
        remaining: u64,
    },
    /// Stage 2 / stage 3: per-candidate outstanding sample counts. A
    /// candidate with `remaining[i] > 0` is **active** in the paper's
    /// AnyActive sense.
    PerCandidate {
        /// Outstanding samples per candidate (0 ⇒ inactive).
        remaining: &'a [u64],
    },
    /// Terminal: no more samples are needed.
    Finished,
}

#[derive(Debug, Clone)]
enum Phase {
    Stage1 {
        taken: u64,
    },
    Stage2 {
        round: u32,
        delta_upper: f64,
        s: f64,
        in_m: Vec<bool>,
    },
    Stage3,
    Done,
}

/// One matched candidate in the output, with its estimated histogram.
#[derive(Debug, Clone)]
pub struct MatchedCandidate {
    /// Candidate index (the dictionary code of the `Z` value).
    pub candidate: u32,
    /// Estimated distance `τᵢ = d(r̄ᵢ, q̄)` from the target.
    pub distance: f64,
    /// The estimated histogram `rᵢ` (reconstruction-guaranteed).
    pub histogram: Histogram,
    /// Number of samples that back the estimate.
    pub samples: u64,
}

/// Run statistics exposed for experiments and debugging.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    /// Samples taken during stage 1.
    pub stage1_samples_taken: u64,
    /// Candidates pruned as rare by stage 1.
    pub pruned_candidates: usize,
    /// Stage-2 rounds executed (0 if stage 2 was skipped).
    pub stage2_rounds: u32,
    /// Total samples ingested over all stages.
    pub total_samples: u64,
    /// True when the run ended by consuming the entire table (results are
    /// exact rather than approximate).
    pub exact_finish: bool,
    /// Appendix A.1.5 dummy-candidate verdict: `Some(true)` means unseen
    /// candidates are collectively certified rare.
    pub unseen_mass_rare: Option<bool>,
    /// The `k` actually used (equals `cfg.k` unless `k_range` adapted it).
    pub effective_k: usize,
}

/// The HistSim state machine. See the [module docs](self) for the driving
/// contract.
#[derive(Debug, Clone)]
pub struct HistSim {
    cfg: HistSimConfig,
    bound: DeviationBound,
    n_total_rows: u64,
    target: Vec<f64>,
    counts: CountState,
    pruned: Vec<bool>,
    exact: Vec<bool>,
    /// Outstanding per-candidate demand for the current I/O phase.
    remaining: Vec<u64>,
    /// Number of candidates with `remaining > 0`.
    active_count: usize,
    phase: Phase,
    members: Vec<u32>,
    diag: Diagnostics,
    /// Reused delta buffer backing the single-threaded ingestion wrappers;
    /// always cleared outside of [`Self::ingest`] / [`Self::ingest_block`].
    scratch: HistAccumulator,
}

impl HistSim {
    /// Creates a new run over `num_candidates` candidates whose histograms
    /// have `groups` bins, against a table of `n_total_rows` tuples.
    ///
    /// `target` is the visual target `q` as non-negative weights; it is
    /// normalized internally and must have exactly `groups` entries.
    pub fn new(
        cfg: HistSimConfig,
        num_candidates: usize,
        groups: usize,
        n_total_rows: u64,
        target: &[f64],
    ) -> Result<Self> {
        let bound = cfg.validate(groups)?;
        if target.len() != groups {
            return Err(CoreError::InvalidTarget(format!(
                "target has {} entries but histograms have {} groups",
                target.len(),
                groups
            )));
        }
        if num_candidates == 0 {
            return Err(CoreError::InvalidConfig(
                "need at least one candidate".into(),
            ));
        }
        if n_total_rows == 0 {
            return Err(CoreError::InvalidConfig(
                "table must contain at least one row".into(),
            ));
        }
        let target = crate::histogram::normalize_weights(target)?;
        let effective_k = cfg.k;
        Ok(HistSim {
            cfg,
            bound,
            n_total_rows,
            target,
            counts: CountState::new(num_candidates, groups),
            pruned: vec![false; num_candidates],
            exact: vec![false; num_candidates],
            remaining: vec![0; num_candidates],
            active_count: 0,
            phase: Phase::Stage1 { taken: 0 },
            members: Vec::new(),
            diag: Diagnostics {
                effective_k,
                ..Diagnostics::default()
            },
            scratch: HistAccumulator::new(num_candidates, groups),
        })
    }

    /// Current phase.
    pub fn phase(&self) -> PhaseKind {
        match self.phase {
            Phase::Stage1 { .. } => PhaseKind::Stage1,
            Phase::Stage2 { .. } => PhaseKind::Stage2,
            Phase::Stage3 => PhaseKind::Stage3,
            Phase::Done => PhaseKind::Done,
        }
    }

    /// What the algorithm needs next from the driver.
    pub fn demand(&self) -> Demand<'_> {
        match &self.phase {
            Phase::Stage1 { taken } => Demand::Stage1Uniform {
                remaining: self.stage1_goal().saturating_sub(*taken),
            },
            Phase::Stage2 { .. } | Phase::Stage3 => Demand::PerCandidate {
                remaining: &self.remaining,
            },
            Phase::Done => Demand::Finished,
        }
    }

    /// Per-candidate outstanding demand (0 during stage 1 and when done).
    pub fn remaining_slice(&self) -> &[u64] {
        &self.remaining
    }

    /// Whether candidate `c` still needs samples in the current I/O phase
    /// — the paper's *active* predicate driving AnyActive block selection.
    #[inline]
    pub fn is_active(&self, c: u32) -> bool {
        self.remaining[c as usize] > 0
    }

    /// True when the current I/O phase's demand is fully met and
    /// [`Self::complete_io_phase`] may be called with `exhausted = false`.
    pub fn io_satisfied(&self) -> bool {
        match &self.phase {
            Phase::Stage1 { taken } => *taken >= self.stage1_goal(),
            Phase::Stage2 { .. } | Phase::Stage3 => self.active_count == 0,
            Phase::Done => true,
        }
    }

    fn stage1_goal(&self) -> u64 {
        self.cfg.stage1_samples.min(self.n_total_rows)
    }

    /// Ingests one sampled tuple: candidate `c` (its `Z` code) observed
    /// with group `g` (its `X` code) — the degenerate single-delta case of
    /// [`Self::merge`], specialized to two array increments because a
    /// one-tuple accumulator round-trip would touch a whole group row per
    /// tuple on this per-tuple hot path (equivalence with the merge path
    /// is covered by the shard-merge property tests).
    ///
    /// # Panics
    /// Panics if `c`/`g` are outside the declared domain (hot path; use
    /// [`Self::try_ingest`] for checked ingestion).
    #[inline]
    pub fn ingest(&mut self, c: u32, g: u32) {
        match &mut self.phase {
            Phase::Stage1 { taken } => {
                *taken += 1;
                self.counts.record_cumulative(c, g);
            }
            Phase::Stage2 { .. } => {
                if self.pruned[c as usize] {
                    return;
                }
                self.counts.record_round(c, g);
                let r = &mut self.remaining[c as usize];
                if *r > 0 {
                    *r -= 1;
                    if *r == 0 {
                        self.active_count -= 1;
                    }
                }
            }
            Phase::Stage3 => {
                if self.pruned[c as usize] {
                    return;
                }
                self.counts.record_cumulative(c, g);
                let r = &mut self.remaining[c as usize];
                if *r > 0 {
                    *r -= 1;
                    if *r == 0 {
                        self.active_count -= 1;
                    }
                }
            }
            Phase::Done => panic!("ingest after completion"),
        }
    }

    /// Ingests one block's worth of samples at once: `zs[i]`/`xs[i]` are
    /// the candidate and group codes of the i-th tuple. Equivalent to
    /// calling [`Self::ingest`] per tuple; implemented as
    /// accumulate-then-[`Self::merge`] over a reused scratch accumulator —
    /// the single-threaded engine hot path.
    ///
    /// # Panics
    /// Panics on length mismatch, out-of-domain codes, or after
    /// completion.
    pub fn ingest_block(&mut self, zs: &[u32], xs: &[u32]) {
        assert_eq!(zs.len(), xs.len(), "column slices must align");
        let mut acc = std::mem::replace(&mut self.scratch, HistAccumulator::new(0, 1));
        acc.accumulate(zs, xs);
        self.merge_ref(&acc);
        acc.clear();
        self.scratch = acc;
    }

    /// Folds a batch of phase-free count deltas (see [`HistAccumulator`])
    /// into the state machine, consuming the accumulator. Equivalent to
    /// ingesting the accumulated tuples one by one in any order — the
    /// merge half of the shard-parallel ingestion protocol.
    ///
    /// # Panics
    /// Panics if the accumulator's domain differs from this run's, or
    /// after completion.
    pub fn merge(&mut self, acc: HistAccumulator) {
        self.merge_ref(&acc);
    }

    /// [`Self::merge`] by reference, leaving the accumulator intact so
    /// callers can [`HistAccumulator::clear`] and reuse its storage.
    ///
    /// # Panics
    /// Panics if the accumulator's domain differs from this run's, or
    /// after completion.
    pub fn merge_ref(&mut self, acc: &HistAccumulator) {
        assert_eq!(
            acc.num_candidates(),
            self.counts.num_candidates(),
            "candidate domains must match"
        );
        assert_eq!(
            acc.groups(),
            self.counts.groups(),
            "group domains must match"
        );
        match &mut self.phase {
            Phase::Stage1 { taken } => {
                *taken += acc.tuples();
                for &c in acc.touched() {
                    let ci = c as usize;
                    self.counts
                        .record_cumulative_row(ci, acc.candidate_counts(ci), acc.n(ci));
                }
            }
            Phase::Stage2 { .. } => {
                for &c in acc.touched() {
                    let ci = c as usize;
                    if self.pruned[ci] {
                        continue;
                    }
                    let added = acc.n(ci);
                    self.counts
                        .record_round_row(ci, acc.candidate_counts(ci), added);
                    let r = &mut self.remaining[ci];
                    if *r > 0 {
                        *r = r.saturating_sub(added);
                        if *r == 0 {
                            self.active_count -= 1;
                        }
                    }
                }
            }
            Phase::Stage3 => {
                for &c in acc.touched() {
                    let ci = c as usize;
                    if self.pruned[ci] {
                        continue;
                    }
                    let added = acc.n(ci);
                    self.counts
                        .record_cumulative_row(ci, acc.candidate_counts(ci), added);
                    let r = &mut self.remaining[ci];
                    if *r > 0 {
                        *r = r.saturating_sub(added);
                        if *r == 0 {
                            self.active_count -= 1;
                        }
                    }
                }
            }
            Phase::Done => panic!("ingest after completion"),
        }
    }

    /// Checked variant of [`Self::ingest`].
    pub fn try_ingest(&mut self, c: u32, g: u32) -> Result<()> {
        if matches!(self.phase, Phase::Done) {
            return Err(CoreError::PhaseViolation("ingest after completion".into()));
        }
        if (c as usize) >= self.counts.num_candidates() || (g as usize) >= self.counts.groups() {
            return Err(CoreError::SampleOutOfDomain {
                candidate: c,
                group: g,
            });
        }
        self.ingest(c, g);
        Ok(())
    }

    /// Tells the algorithm that candidate `c`'s tuples have been fully
    /// consumed: its counts are now exact, so it needs no further samples
    /// and its hypotheses are decided deterministically.
    pub fn mark_exact(&mut self, c: u32) {
        let ci = c as usize;
        if !self.exact[ci] {
            self.exact[ci] = true;
            if self.remaining[ci] > 0 {
                self.remaining[ci] = 0;
                self.active_count -= 1;
            }
        }
    }

    /// Whether candidate `c` has been marked exact.
    pub fn is_exact(&self, c: u32) -> bool {
        self.exact[c as usize]
    }

    /// Completes the current I/O phase: runs the stage-appropriate
    /// statistical test and advances the state machine. Pass
    /// `exhausted = true` iff the driver has consumed the entire table, in
    /// which case HistSim finishes immediately with exact results.
    pub fn complete_io_phase(&mut self, exhausted: bool) -> Result<()> {
        if matches!(self.phase, Phase::Done) {
            return Err(CoreError::PhaseViolation(
                "complete_io_phase after completion".into(),
            ));
        }
        if exhausted {
            self.finish_exact();
            return Ok(());
        }
        if !self.io_satisfied() {
            return Err(CoreError::PhaseViolation(
                "complete_io_phase called before demand was satisfied".into(),
            ));
        }
        match &self.phase {
            Phase::Stage1 { taken } => {
                let taken = *taken;
                self.complete_stage1(taken);
            }
            Phase::Stage2 { .. } => self.complete_stage2_round(),
            Phase::Stage3 => self.complete_stage3(),
            Phase::Done => unreachable!(),
        }
        Ok(())
    }

    // ---------------------------------------------------------------- stage 1

    fn complete_stage1(&mut self, taken: u64) {
        self.diag.stage1_samples_taken = taken;
        let n_is: Vec<u64> = (0..self.counts.num_candidates())
            .map(|c| self.counts.n(c))
            .collect();
        let mut pvals = hypergeometric::underrepresentation_pvalues(
            &n_is,
            self.n_total_rows,
            self.cfg.sigma,
            taken,
        );
        // Appendix A.1.5: one extra test for the aggregate of unseen
        // candidates, with observed count 0.
        if self.cfg.test_unseen_mass {
            let dummy = hypergeometric::underrepresentation_pvalues(
                &[0],
                self.n_total_rows,
                self.cfg.sigma,
                taken,
            )[0];
            pvals.push(dummy);
        }
        let hb = HolmBonferroni::test(&pvals, self.cfg.delta / 3.0);
        for c in 0..self.counts.num_candidates() {
            self.pruned[c] = hb.rejected()[c];
        }
        if self.cfg.test_unseen_mass {
            self.diag.unseen_mass_rare = Some(*hb.rejected().last().unwrap());
        }
        self.diag.pruned_candidates = self.pruned.iter().filter(|&&p| p).count();
        self.enter_stage2_or_skip(1, self.cfg.delta / 6.0);
    }

    // ---------------------------------------------------------------- stage 2

    /// Number of unpruned candidates `|A|`.
    fn a_size(&self) -> usize {
        self.pruned.iter().filter(|&&p| !p).count()
    }

    fn unpruned_mask(&self) -> Vec<bool> {
        self.pruned.iter().map(|&p| !p).collect()
    }

    /// Enters a stage-2 round, or skips straight to stage 3 when the
    /// remaining candidate set is no larger than k (separation is vacuous).
    fn enter_stage2_or_skip(&mut self, round: u32, delta_upper: f64) {
        let eligible = self.unpruned_mask();
        self.counts
            .refresh_tau(self.cfg.metric, &self.target, &eligible);

        let k = self.pick_k(&eligible);
        self.diag.effective_k = k;

        if self.a_size() <= k {
            self.members = (0..self.counts.num_candidates() as u32)
                .filter(|&c| !self.pruned[c as usize])
                .collect();
            self.enter_stage3();
            return;
        }

        let m_idx = k_smallest_indices(self.counts.taus(), k, &eligible);
        let mut in_m = vec![false; self.counts.num_candidates()];
        for &i in &m_idx {
            in_m[i] = true;
        }
        let max_m = m_idx
            .iter()
            .map(|&i| self.counts.tau(i))
            .fold(f64::NEG_INFINITY, f64::max);
        let min_rest = (0..self.counts.num_candidates())
            .filter(|&i| eligible[i] && !in_m[i])
            .map(|i| self.counts.tau(i))
            .fold(f64::INFINITY, f64::min);
        let s = 0.5 * (max_m + min_rest);

        // Per-round targets n′ᵢ (Eq. 1) from the assumed deviations ε′ᵢ.
        let eps_half = self.cfg.epsilon / 2.0;
        self.active_count = 0;
        for i in 0..self.counts.num_candidates() {
            self.remaining[i] = 0;
            if !eligible[i] || self.exact[i] {
                continue;
            }
            let tau_i = self.counts.tau(i);
            let base_n = if in_m[i] {
                let eps_p = s + eps_half - tau_i;
                self.bound.samples_needed(eps_p.max(1e-9), delta_upper)
            } else if s - eps_half < 0.0 {
                // The null τ*ⱼ ≤ s − ε/2 < 0 is vacuously false: no samples
                // needed, the P-value is 0 by construction.
                0
            } else {
                let eps_p = tau_i - (s - eps_half);
                self.bound.samples_needed(eps_p.max(1e-9), delta_upper)
            };
            // Eq. 1 with the safety factor (see HistSimConfig docs),
            // capped by progressive refinement: a candidate whose distance
            // estimate rests on few samples may *look* boundary-close out
            // of pure noise (the "uncertain but far" trap of §1 Challenge
            // 1); committing Eq. 1's full 1/ε′² budget to it would be
            // wasted whenever the refined estimate moves away. Limiting
            // each round to quadrupling the candidate's evidence keeps the
            // worst case logarithmic in the true requirement while cutting
            // the noise-driven over-demand. Correctness is unaffected —
            // round targets are heuristics; the tests use actual samples.
            let eq1 = (base_n as f64 * self.cfg.round_multiplier).ceil() as u64;
            let refine_cap = (4 * self.counts.n(i)).max(64);
            let target_n = eq1.min(refine_cap);
            self.remaining[i] = target_n;
            if target_n > 0 {
                self.active_count += 1;
            }
        }
        self.phase = Phase::Stage2 {
            round,
            delta_upper,
            s,
            in_m,
        };
    }

    /// The effective `k` for this round (Appendix A.2.3 adapts it within
    /// the configured range to maximize the split gap).
    fn pick_k(&self, eligible: &[bool]) -> usize {
        match self.cfg.k_range {
            None => self.cfg.k,
            Some((lo, hi)) => {
                let mut taus: Vec<f64> = (0..self.counts.num_candidates())
                    .filter(|&i| eligible[i])
                    .map(|i| self.counts.tau(i))
                    .collect();
                taus.sort_by(|a, b| a.partial_cmp(b).expect("tau must not be NaN"));
                choose_k_in_range(&taus, lo, hi)
            }
        }
    }

    fn complete_stage2_round(&mut self) {
        let (round, delta_upper, s, in_m) = match &self.phase {
            Phase::Stage2 {
                round,
                delta_upper,
                s,
                in_m,
            } => (*round, *delta_upper, *s, in_m.clone()),
            _ => unreachable!(),
        };
        self.diag.stage2_rounds = round;
        let eps_half = self.cfg.epsilon / 2.0;

        let mut pvals = Vec::with_capacity(self.a_size());
        for (i, &in_m_i) in in_m.iter().enumerate().take(self.counts.num_candidates()) {
            if self.pruned[i] {
                continue;
            }
            let p = if self.exact[i] {
                // Counts are exact: the hypothesis is decided, not tested.
                let tau_exact = self.counts.tau_total(i, self.cfg.metric, &self.target);
                let null_false = if in_m_i {
                    tau_exact < s + eps_half
                } else {
                    s - eps_half < 0.0 || tau_exact > s - eps_half
                };
                if null_false {
                    0.0
                } else {
                    1.0
                }
            } else if in_m_i {
                match self.counts.tau_round(i, self.cfg.metric, &self.target) {
                    Some(tr) => {
                        let eps_i = s + eps_half - tr;
                        self.bound.pvalue(eps_i, self.counts.n_round(i))
                    }
                    None => 1.0,
                }
            } else if s - eps_half < 0.0 {
                0.0
            } else {
                match self.counts.tau_round(i, self.cfg.metric, &self.target) {
                    Some(tr) => {
                        let eps_i = tr - (s - eps_half);
                        self.bound.pvalue(eps_i, self.counts.n_round(i))
                    }
                    None => 1.0,
                }
            };
            pvals.push(p);
        }

        let decision = simultaneous_test(pvals.iter().copied(), delta_upper);
        self.counts.accumulate_round();

        match decision {
            Decision::RejectAll => {
                self.members = (0..self.counts.num_candidates() as u32)
                    .filter(|&c| in_m[c as usize])
                    .collect();
                self.enter_stage3();
            }
            Decision::RejectNone => {
                self.enter_stage2_or_skip(round + 1, delta_upper / 2.0);
            }
        }
    }

    // ---------------------------------------------------------------- stage 3

    fn enter_stage3(&mut self) {
        let k = self.members.len();
        self.active_count = 0;
        self.remaining.iter_mut().for_each(|r| *r = 0);
        if k == 0 {
            self.finish(false);
            return;
        }
        // Line 26: nᵢ ≥ (2/ε²)(|V_X| log 2 + log 3k/δ) ⇔ Theorem 1 at
        // per-member level δ/(3k).
        let per_member_delta = self.cfg.delta / (3.0 * k as f64);
        let target_n = self
            .bound
            .samples_needed(self.cfg.eps_reconstruction(), per_member_delta);
        for &c in &self.members {
            let ci = c as usize;
            if self.exact[ci] {
                continue;
            }
            let need = target_n.saturating_sub(self.counts.n(ci));
            self.remaining[ci] = need;
            if need > 0 {
                self.active_count += 1;
            }
        }
        self.phase = Phase::Stage3;
    }

    fn complete_stage3(&mut self) {
        self.finish(false);
    }

    // ---------------------------------------------------------------- finish

    /// Finishes the run with exact semantics: the driver has consumed the
    /// whole table, so counts equal the true histograms. Pruning, top-k
    /// selection and reconstruction all become exact computations.
    fn finish_exact(&mut self) {
        self.counts.accumulate_round();
        // Exact pruning: Nᵢ/N < σ.
        let threshold = (self.cfg.sigma * self.n_total_rows as f64).ceil() as u64;
        for c in 0..self.counts.num_candidates() {
            if self.counts.n(c) < threshold {
                self.pruned[c] = true;
            }
        }
        self.diag.pruned_candidates = self.pruned.iter().filter(|&&p| p).count();
        let eligible = self.unpruned_mask();
        self.counts
            .refresh_tau(self.cfg.metric, &self.target, &eligible);
        let k = self.pick_k(&eligible);
        self.diag.effective_k = k;
        self.members = k_smallest_indices(self.counts.taus(), k, &eligible)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        self.finish(true);
    }

    fn finish(&mut self, exact: bool) {
        self.counts.accumulate_round();
        let eligible = self.unpruned_mask();
        self.counts
            .refresh_tau(self.cfg.metric, &self.target, &eligible);
        self.members.sort_by(|&a, &b| {
            self.counts
                .tau(a as usize)
                .partial_cmp(&self.counts.tau(b as usize))
                .expect("tau must not be NaN")
                .then(a.cmp(&b))
        });
        self.remaining.iter_mut().for_each(|r| *r = 0);
        self.active_count = 0;
        self.diag.exact_finish = exact;
        self.diag.total_samples = self.counts.total_samples();
        self.phase = Phase::Done;
    }

    /// Whether the run has terminated.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Extracts the output. May only be called once the run is done.
    pub fn output(&self) -> Result<HistSimOutput> {
        if !self.is_done() {
            return Err(CoreError::PhaseViolation(
                "output requested before completion".into(),
            ));
        }
        let matches = self
            .members
            .iter()
            .map(|&c| MatchedCandidate {
                candidate: c,
                distance: self.counts.tau(c as usize),
                histogram: self.counts.histogram(c as usize),
                samples: self.counts.n(c as usize),
            })
            .collect();
        Ok(HistSimOutput {
            matches,
            diagnostics: self.diag.clone(),
        })
    }

    /// Whether candidate `c` was pruned by stage 1.
    pub fn is_pruned(&self, c: u32) -> bool {
        self.pruned[c as usize]
    }

    /// The current best *estimate* of the top-k: the `effective_k`
    /// unpruned candidates with the smallest running distance estimates
    /// (cumulative plus in-flight round counts). Once the run is done
    /// this equals the guaranteed output's matched set; before that it is
    /// a progressive, guarantee-free preview — exactly what a serving
    /// layer shows while a query is still refining. Cheap enough to call
    /// per merge (one `τ` evaluation per candidate), but not meant for
    /// per-tuple hot loops.
    pub fn current_topk(&self) -> Vec<u32> {
        if self.is_done() {
            return self.members.clone();
        }
        let eligible: Vec<bool> = self.pruned.iter().map(|&p| !p).collect();
        let taus: Vec<f64> = (0..self.counts.num_candidates())
            .map(|c| self.counts.tau_total(c, self.cfg.metric, &self.target))
            .collect();
        k_smallest_indices(&taus, self.diag.effective_k, &eligible)
            .into_iter()
            .map(|i| i as u32)
            .collect()
    }

    /// The cumulative sample count for a candidate (diagnostics).
    pub fn samples_for(&self, c: u32) -> u64 {
        self.counts.n(c as usize) + self.counts.n_round(c as usize)
    }

    /// Run diagnostics (valid once done; partially filled before).
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diag
    }

    /// The normalized target `q̄`.
    pub fn target(&self) -> &[f64] {
        &self.target
    }

    /// Configured parameters.
    pub fn config(&self) -> &HistSimConfig {
        &self.cfg
    }
}

/// Result of a HistSim run: the matched candidates (ascending distance)
/// plus run diagnostics.
#[derive(Debug, Clone)]
pub struct HistSimOutput {
    /// The top-k matches, closest first.
    pub matches: Vec<MatchedCandidate>,
    /// Run statistics.
    pub diagnostics: Diagnostics,
}

impl HistSimOutput {
    /// Candidate ids of the matches, closest first.
    pub fn candidate_ids(&self) -> Vec<u32> {
        self.matches.iter().map(|m| m.candidate).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HistSimConfig {
        HistSimConfig {
            k: 2,
            epsilon: 0.2,
            delta: 0.05,
            sigma: 0.0,
            stage1_samples: 50,
            ..HistSimConfig::default()
        }
    }

    #[test]
    fn construction_validates_target_length() {
        let cfg = tiny_config();
        assert!(HistSim::new(cfg.clone(), 3, 4, 100, &[0.25; 3]).is_err());
        assert!(HistSim::new(cfg, 3, 4, 100, &[0.25; 4]).is_ok());
    }

    #[test]
    fn construction_rejects_degenerate_domains() {
        let cfg = tiny_config();
        assert!(HistSim::new(cfg.clone(), 0, 4, 100, &[0.25; 4]).is_err());
        assert!(HistSim::new(cfg, 3, 4, 0, &[0.25; 4]).is_err());
    }

    #[test]
    fn starts_in_stage1_with_full_demand() {
        let hs = HistSim::new(tiny_config(), 3, 2, 1000, &[0.5, 0.5]).unwrap();
        assert_eq!(hs.phase(), PhaseKind::Stage1);
        match hs.demand() {
            Demand::Stage1Uniform { remaining } => assert_eq!(remaining, 50),
            other => panic!("unexpected demand {other:?}"),
        }
        assert!(!hs.io_satisfied());
    }

    #[test]
    fn stage1_goal_is_clamped_to_table_size() {
        let hs = HistSim::new(tiny_config(), 3, 2, 20, &[0.5, 0.5]).unwrap();
        match hs.demand() {
            Demand::Stage1Uniform { remaining } => assert_eq!(remaining, 20),
            other => panic!("unexpected demand {other:?}"),
        }
    }

    #[test]
    fn current_topk_tracks_running_estimates() {
        let mut hs = HistSim::new(tiny_config(), 3, 2, 1000, &[0.5, 0.5]).unwrap();
        // Before any samples every candidate sits at the metric's upper
        // limit; ties break by index.
        assert_eq!(hs.current_topk(), vec![0, 1]);
        // Candidate 2 balanced (τ ≈ 0), candidate 1 skewed, candidate 0
        // unseen: the preview must rank 2 first.
        hs.ingest(2, 0);
        hs.ingest(2, 1);
        hs.ingest(1, 0);
        assert_eq!(hs.current_topk()[0], 2);
        assert_eq!(hs.current_topk().len(), 2);
    }

    #[test]
    fn current_topk_equals_output_once_done() {
        let mut hs = HistSim::new(tiny_config(), 2, 2, 10, &[0.5, 0.5]).unwrap();
        for _ in 0..3 {
            hs.ingest(0, 0);
            hs.ingest(0, 1);
        }
        for _ in 0..4 {
            hs.ingest(1, 0);
        }
        hs.complete_io_phase(true).unwrap();
        assert!(hs.is_done());
        assert_eq!(hs.current_topk(), hs.output().unwrap().candidate_ids());
    }

    #[test]
    fn premature_completion_is_rejected() {
        let mut hs = HistSim::new(tiny_config(), 3, 2, 1000, &[0.5, 0.5]).unwrap();
        assert!(hs.complete_io_phase(false).is_err());
    }

    #[test]
    fn exhaustion_finishes_exactly_from_stage1() {
        let mut hs = HistSim::new(tiny_config(), 2, 2, 10, &[0.5, 0.5]).unwrap();
        // Feed the entire (tiny) table: candidate 0 balanced, candidate 1 skewed.
        for _ in 0..3 {
            hs.ingest(0, 0);
            hs.ingest(0, 1);
        }
        for _ in 0..4 {
            hs.ingest(1, 0);
        }
        hs.complete_io_phase(true).unwrap();
        assert!(hs.is_done());
        let out = hs.output().unwrap();
        assert!(out.diagnostics.exact_finish);
        assert_eq!(out.candidate_ids(), vec![0, 1]);
        assert!(out.matches[0].distance < out.matches[1].distance);
    }

    #[test]
    fn try_ingest_checks_domain() {
        let mut hs = HistSim::new(tiny_config(), 2, 2, 100, &[0.5, 0.5]).unwrap();
        assert!(hs.try_ingest(0, 0).is_ok());
        assert!(matches!(
            hs.try_ingest(2, 0),
            Err(CoreError::SampleOutOfDomain { .. })
        ));
        assert!(matches!(
            hs.try_ingest(0, 2),
            Err(CoreError::SampleOutOfDomain { .. })
        ));
    }

    #[test]
    fn output_before_done_is_rejected() {
        let hs = HistSim::new(tiny_config(), 2, 2, 100, &[0.5, 0.5]).unwrap();
        assert!(hs.output().is_err());
    }

    #[test]
    fn skips_stage2_when_candidates_le_k() {
        let cfg = HistSimConfig {
            k: 5,
            stage1_samples: 10,
            sigma: 0.0,
            epsilon: 0.5,
            ..tiny_config()
        };
        let mut hs = HistSim::new(cfg, 2, 2, 10_000, &[0.5, 0.5]).unwrap();
        // stage 1: 10 samples
        for i in 0..10u32 {
            hs.ingest(i % 2, i % 2);
        }
        assert!(hs.io_satisfied());
        hs.complete_io_phase(false).unwrap();
        // |A| = 2 ≤ k = 5 ⇒ straight to stage 3
        assert_eq!(hs.phase(), PhaseKind::Stage3);
        assert_eq!(hs.diagnostics().stage2_rounds, 0);
    }

    #[test]
    fn mark_exact_clears_demand() {
        let cfg = HistSimConfig {
            k: 1,
            stage1_samples: 8,
            sigma: 0.0,
            epsilon: 0.05,
            ..tiny_config()
        };
        let mut hs = HistSim::new(cfg, 3, 2, 100_000, &[0.5, 0.5]).unwrap();
        for i in 0..8u32 {
            hs.ingest(i % 3, (i / 3) % 2);
        }
        hs.complete_io_phase(false).unwrap();
        assert_eq!(hs.phase(), PhaseKind::Stage2);
        // all three candidates should be active with tight epsilon
        let active_before: usize = (0..3).filter(|&c| hs.is_active(c)).count();
        assert!(active_before > 0);
        for c in 0..3 {
            hs.mark_exact(c);
        }
        assert!(hs.io_satisfied());
    }

    #[test]
    fn stage2_demands_depend_on_distance_gaps() {
        // Candidates far from the boundary should need fewer samples than
        // candidates near it (Eq. 1: n′ ∝ 1/ε′²).
        let cfg = HistSimConfig {
            k: 1,
            stage1_samples: 400,
            sigma: 0.0,
            epsilon: 0.1,
            ..tiny_config()
        };
        let mut hs = HistSim::new(cfg, 3, 2, 1_000_000, &[1.0, 0.0]).unwrap();
        // candidate 0: identical to target; candidate 1: opposite;
        // candidate 2: halfway.
        for _ in 0..100 {
            hs.ingest(0, 0);
            hs.ingest(1, 1);
            hs.ingest(2, 0);
            hs.ingest(2, 1);
        }
        hs.complete_io_phase(false).unwrap();
        assert_eq!(hs.phase(), PhaseKind::Stage2);
        let r: Vec<u64> = hs.remaining_slice().to_vec();
        // candidate 1 (τ = 2.0) is much further from the split than
        // candidate 2 (τ = 1.0): it needs fewer fresh samples.
        assert!(r[1] < r[2], "far candidate needs fewer samples: {r:?}");
    }

    #[test]
    fn merge_equals_ingest_block_across_phases() {
        // Drive two identical runs — one via ingest_block, one via shard
        // accumulators merged out of order — through stage 1 into stage 2
        // and compare the full state (Debug repr is a faithful dump of
        // every field).
        let cfg = HistSimConfig {
            k: 1,
            stage1_samples: 12,
            sigma: 0.0,
            epsilon: 0.05,
            ..tiny_config()
        };
        let mk = || HistSim::new(cfg.clone(), 3, 2, 100_000, &[0.5, 0.5]).unwrap();
        let zs: Vec<u32> = (0..12u32).map(|i| i % 3).collect();
        let xs: Vec<u32> = (0..12u32).map(|i| (i / 3) % 2).collect();

        let mut seq = mk();
        seq.ingest_block(&zs, &xs);
        let mut par = mk();
        let mut a = HistAccumulator::new(3, 2);
        let mut b = HistAccumulator::new(3, 2);
        a.accumulate(&zs[..5], &xs[..5]);
        b.accumulate(&zs[5..], &xs[5..]);
        par.merge(b);
        par.merge(a);
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));

        seq.complete_io_phase(false).unwrap();
        par.complete_io_phase(false).unwrap();
        assert_eq!(seq.phase(), PhaseKind::Stage2);
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));

        // Stage-2 merge: per-candidate demand decrements saturate the same
        // way in bulk as per tuple.
        let zs2: Vec<u32> = (0..30u32).map(|i| i % 3).collect();
        let xs2: Vec<u32> = (0..30u32).map(|i| i % 2).collect();
        seq.ingest_block(&zs2, &xs2);
        let mut acc = HistAccumulator::new(3, 2);
        acc.accumulate(&zs2, &xs2);
        par.merge(acc);
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    #[test]
    fn per_tuple_ingest_equals_merge() {
        // `ingest` is a specialized single-delta path: it must stay
        // byte-identical to accumulating the same tuples and merging.
        let cfg = HistSimConfig {
            k: 1,
            stage1_samples: 6,
            sigma: 0.0,
            epsilon: 0.1,
            ..tiny_config()
        };
        let mk = || HistSim::new(cfg.clone(), 3, 2, 10_000, &[0.5, 0.5]).unwrap();
        let tuples = [(0u32, 0u32), (1, 1), (2, 0), (0, 1), (1, 0), (2, 1)];
        let mut a = mk();
        let mut b = mk();
        for &(c, g) in &tuples {
            a.ingest(c, g);
        }
        let mut acc = HistAccumulator::new(3, 2);
        for &(c, g) in &tuples {
            acc.accumulate_one(c, g);
        }
        b.merge(acc);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        a.complete_io_phase(false).unwrap();
        b.complete_io_phase(false).unwrap();
        // stage 2: per-tuple decrements vs one bulk decrement
        for _ in 0..20 {
            for &(c, g) in &tuples {
                a.ingest(c, g);
            }
        }
        let mut acc = HistAccumulator::new(3, 2);
        for _ in 0..20 {
            for &(c, g) in &tuples {
                acc.accumulate_one(c, g);
            }
        }
        b.merge(acc);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn merge_after_done_panics() {
        let mut hs = HistSim::new(tiny_config(), 2, 2, 4, &[0.5, 0.5]).unwrap();
        hs.ingest(0, 0);
        hs.complete_io_phase(true).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut hs2 = hs.clone();
            hs2.merge(HistAccumulator::new(2, 2));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn merge_rejects_mismatched_domains() {
        let mut hs = HistSim::new(tiny_config(), 2, 2, 100, &[0.5, 0.5]).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hs.merge(HistAccumulator::new(3, 2));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn ingest_after_done_panics() {
        let mut hs = HistSim::new(tiny_config(), 2, 2, 4, &[0.5, 0.5]).unwrap();
        hs.ingest(0, 0);
        hs.ingest(1, 1);
        hs.complete_io_phase(true).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut hs2 = hs.clone();
            hs2.ingest(0, 0);
        }));
        assert!(r.is_err());
    }
}
