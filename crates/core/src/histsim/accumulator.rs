//! Phase-free histogram delta accumulation.
//!
//! [`HistAccumulator`] turns raw `(z, x)` sample batches into
//! per-candidate/per-group *count deltas* without touching any HistSim
//! phase state. That split is what makes multi-core ingestion possible:
//! any number of accumulators can be filled concurrently from disjoint
//! block ranges (no shared mutable state, no locks) and later folded into
//! the authoritative state machine with [`super::HistSim::merge`], or into
//! each other with [`HistAccumulator::merge_from`] for tree reductions.
//!
//! Counts are kept dense (candidate-major, like
//! [`super::state::CountState`]) so accumulation itself is two array
//! increments per tuple, plus a *touched-candidate* list so that merging
//! and clearing cost `O(touched × groups)` rather than
//! `O(candidates × groups)` — essential when a 150-tuple block meets a
//! multi-thousand-candidate domain. Accumulators are meant to be reused:
//! [`HistAccumulator::clear`] resets in `O(touched × groups)` without
//! freeing the backing storage.

/// A mergeable batch of per-candidate/per-group count deltas.
///
/// Order-insensitive by construction: accumulating the same multiset of
/// tuples in any order, across any number of accumulators that are then
/// merged, produces the same deltas — the algebraic property the parallel
/// executor's shard workers rely on.
#[derive(Clone)]
pub struct HistAccumulator {
    groups: usize,
    /// Dense per-(candidate, group) deltas, `candidate * groups + g`.
    counts: Vec<u64>,
    /// Per-candidate delta totals.
    n: Vec<u64>,
    /// Candidates with `n > 0`, in first-touch order.
    touched: Vec<u32>,
    /// Epoch stamps backing the touched list: candidate `c` is touched
    /// iff `stamp[c] == epoch`. A [`Self::clear`] invalidates every
    /// stamp by bumping the epoch (O(1)), and the batch kernel's inner
    /// loop tests a stamp instead of branching on `n[c] == 0` — the
    /// stamp is written exactly once per (candidate, batch) while `n`
    /// is written per tuple, which keeps the first-touch check off the
    /// increment dependency chain.
    stamp: Vec<u32>,
    /// Current stamp generation (never 0 for an untouched slot's value).
    epoch: u32,
    /// Total tuples accumulated.
    tuples: u64,
}

/// Manual `Debug` over the *logical* state only. The `stamp`/`epoch`
/// bookkeeping is an implementation detail of `clear()` whose values
/// depend on how often an accumulator was reused — including it would
/// break the byte-identical `Debug`-repr equivalence the shard-merge
/// property tests assert between differently-driven but logically equal
/// states.
impl std::fmt::Debug for HistAccumulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistAccumulator")
            .field("groups", &self.groups)
            .field("counts", &self.counts)
            .field("n", &self.n)
            .field("touched", &self.touched)
            .field("tuples", &self.tuples)
            .finish()
    }
}

impl HistAccumulator {
    /// Creates a zeroed accumulator for a `num_candidates × groups`
    /// domain.
    pub fn new(num_candidates: usize, groups: usize) -> Self {
        assert!(groups > 0, "histograms must have at least one group");
        HistAccumulator {
            groups,
            counts: vec![0; num_candidates * groups],
            n: vec![0; num_candidates],
            touched: Vec::new(),
            stamp: vec![0; num_candidates],
            epoch: 1,
            tuples: 0,
        }
    }

    /// Number of candidates in the domain.
    pub fn num_candidates(&self) -> usize {
        self.n.len()
    }

    /// Number of groups per histogram.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Total tuples accumulated since the last [`Self::clear`].
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Whether no tuples have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Candidates with at least one accumulated tuple, in first-touch
    /// order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// The delta row of one candidate (all `groups` cells).
    pub fn candidate_counts(&self, candidate: usize) -> &[u64] {
        &self.counts[candidate * self.groups..(candidate + 1) * self.groups]
    }

    /// Delta total for one candidate.
    pub fn n(&self, candidate: usize) -> u64 {
        self.n[candidate]
    }

    /// Marks candidate `c` touched if it is not already (first-touch
    /// bookkeeping shared by every accumulation path).
    #[inline]
    fn touch(&mut self, c: u32) {
        let s = &mut self.stamp[c as usize];
        if *s != self.epoch {
            *s = self.epoch;
            self.touched.push(c);
        }
    }

    /// Accumulates one tuple: candidate `c` observed with group `g`.
    ///
    /// # Panics
    /// Panics if `c`/`g` are outside the declared domain.
    #[inline]
    pub fn accumulate_one(&mut self, c: u32, g: u32) {
        let ci = c as usize;
        let gi = g as usize;
        assert!(ci < self.n.len(), "candidate {c} out of domain");
        assert!(gi < self.groups, "group {g} out of domain");
        self.touch(c);
        self.counts[ci * self.groups + gi] += 1;
        self.n[ci] += 1;
        self.tuples += 1;
    }

    /// Accumulates one block's worth of samples: `zs[i]`/`xs[i]` are the
    /// candidate and group codes of the i-th tuple. Equivalent to calling
    /// [`Self::accumulate_one`] per tuple, but implemented as the batched
    /// ingestion kernel: the whole batch is bounds-checked against the
    /// domain **once** (a branch-free max-fold), after which the fused
    /// inner loop runs without per-tuple asserts, with the first-touch
    /// check reduced to an epoch-stamp compare.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-domain codes.
    pub fn accumulate(&mut self, zs: &[u32], xs: &[u32]) {
        assert_eq!(zs.len(), xs.len(), "column slices must align");
        if zs.is_empty() {
            return;
        }
        // Validate once: fold both columns to their maxima, so the hot
        // loop below never takes (and the optimizer can hoist) a domain
        // check. The panic message names the offending code, matching
        // the per-tuple contract.
        let max_c = zs.iter().copied().max().expect("non-empty");
        let max_g = xs.iter().copied().max().expect("non-empty");
        assert!(
            (max_c as usize) < self.n.len(),
            "candidate {max_c} out of domain"
        );
        assert!(
            (max_g as usize) < self.groups,
            "group {max_g} out of domain"
        );
        let groups = self.groups;
        let epoch = self.epoch;
        for (&c, &g) in zs.iter().zip(xs) {
            let ci = c as usize;
            self.counts[ci * groups + g as usize] += 1;
            self.n[ci] += 1;
            let s = &mut self.stamp[ci];
            if *s != epoch {
                *s = epoch;
                self.touched.push(c);
            }
        }
        self.tuples += zs.len() as u64;
    }

    /// Folds another accumulator's deltas into this one (shard merge /
    /// tree reduction). The other accumulator is left untouched.
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn merge_from(&mut self, other: &HistAccumulator) {
        assert_eq!(self.groups, other.groups, "group domains must match");
        assert_eq!(self.n.len(), other.n.len(), "candidate domains must match");
        for &c in &other.touched {
            let ci = c as usize;
            self.touch(c);
            self.n[ci] += other.n[ci];
            let base = ci * self.groups;
            for g in 0..self.groups {
                self.counts[base + g] += other.counts[base + g];
            }
        }
        self.tuples += other.tuples;
    }

    /// Resets to the zeroed state in `O(touched × groups)`, keeping the
    /// backing storage for reuse.
    pub fn clear(&mut self) {
        for &c in &self.touched {
            let ci = c as usize;
            self.n[ci] = 0;
            let base = ci * self.groups;
            self.counts[base..base + self.groups].fill(0);
        }
        self.touched.clear();
        self.tuples = 0;
        // One epoch bump invalidates every stamp in O(1). On the
        // (billions-of-clears) wrap, fall back to an O(candidates) stamp
        // reset so a stale stamp can never collide with a live epoch.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_counts_tuples_and_cells() {
        let mut a = HistAccumulator::new(3, 2);
        a.accumulate(&[0, 2, 0], &[1, 0, 1]);
        assert_eq!(a.tuples(), 3);
        assert_eq!(a.n(0), 2);
        assert_eq!(a.n(1), 0);
        assert_eq!(a.n(2), 1);
        assert_eq!(a.candidate_counts(0), &[0, 2]);
        assert_eq!(a.candidate_counts(2), &[1, 0]);
        assert_eq!(a.touched(), &[0, 2]);
    }

    #[test]
    fn merge_from_equals_joint_accumulation() {
        let zs = [0u32, 1, 2, 1, 0, 2, 2];
        let xs = [0u32, 1, 2, 0, 1, 2, 0];
        let mut joint = HistAccumulator::new(3, 3);
        joint.accumulate(&zs, &xs);
        let mut left = HistAccumulator::new(3, 3);
        let mut right = HistAccumulator::new(3, 3);
        left.accumulate(&zs[..3], &xs[..3]);
        right.accumulate(&zs[3..], &xs[3..]);
        left.merge_from(&right);
        assert_eq!(left.tuples(), joint.tuples());
        for c in 0..3 {
            assert_eq!(
                left.candidate_counts(c),
                joint.candidate_counts(c),
                "candidate {c}"
            );
            assert_eq!(left.n(c), joint.n(c));
        }
    }

    #[test]
    fn clear_resets_without_shrinking_domain() {
        let mut a = HistAccumulator::new(4, 2);
        a.accumulate(&[3, 3, 1], &[0, 1, 1]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.tuples(), 0);
        assert!(a.touched().is_empty());
        for c in 0..4 {
            assert_eq!(a.n(c), 0);
            assert_eq!(a.candidate_counts(c), &[0, 0]);
        }
        // reusable after clear
        a.accumulate_one(2, 1);
        assert_eq!(a.n(2), 1);
        assert_eq!(a.touched(), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_group_panics() {
        HistAccumulator::new(2, 2).accumulate_one(0, 5);
    }

    /// The documented contract: an out-of-domain *candidate* fails the
    /// same explicit "out of domain" assert as an out-of-domain group —
    /// not a raw slice-index panic leaking internal layout.
    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_candidate_panics() {
        HistAccumulator::new(2, 2).accumulate_one(7, 0);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn batch_out_of_domain_candidate_panics() {
        HistAccumulator::new(2, 2).accumulate(&[0, 7], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn batch_out_of_domain_group_panics() {
        HistAccumulator::new(2, 2).accumulate(&[0, 1], &[0, 5]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_slices_panic() {
        HistAccumulator::new(2, 2).accumulate(&[0, 1], &[0]);
    }

    /// A failed batch must not have mutated anything (validation happens
    /// before the first increment), so the accumulator stays usable.
    #[test]
    fn failed_batch_leaves_state_untouched() {
        let mut a = HistAccumulator::new(2, 2);
        a.accumulate_one(1, 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.accumulate(&[0, 9], &[0, 0]);
        }));
        assert!(r.is_err());
        assert_eq!(a.tuples(), 1);
        assert_eq!(a.n(0), 0);
        assert_eq!(a.n(1), 1);
        assert_eq!(a.touched(), &[1]);
    }
}
