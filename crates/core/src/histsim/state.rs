//! Per-candidate count state shared by the three HistSim stages.
//!
//! Counts are stored candidate-major in two flat arrays: *cumulative*
//! counts (`r`, `n` — every sample ever taken) and *round-fresh* counts
//! (`r∂`, `n∂` — samples of the current stage-2 round only, so the round's
//! statistical test never reuses data, as §3.4 requires).

use crate::distance::Metric;
use crate::histogram::Histogram;

/// Flat candidate-major count matrices plus distance caches.
#[derive(Debug, Clone)]
pub struct CountState {
    num_candidates: usize,
    groups: usize,
    /// Cumulative per-(candidate, group) counts, `candidate * groups + g`.
    counts: Vec<u64>,
    /// Cumulative per-candidate totals `nᵢ`.
    n: Vec<u64>,
    /// Round-fresh per-(candidate, group) counts `r∂ᵢ`.
    round_counts: Vec<u64>,
    /// Round-fresh per-candidate totals `n∂ᵢ`.
    n_round: Vec<u64>,
    /// Cumulative distance estimates `τᵢ` (recomputed on accumulation).
    tau: Vec<f64>,
}

impl CountState {
    /// Creates zeroed state for `num_candidates × groups`.
    pub fn new(num_candidates: usize, groups: usize) -> Self {
        CountState {
            num_candidates,
            groups,
            counts: vec![0; num_candidates * groups],
            n: vec![0; num_candidates],
            round_counts: vec![0; num_candidates * groups],
            n_round: vec![0; num_candidates],
            tau: vec![f64::INFINITY; num_candidates],
        }
    }

    /// Number of candidates `|V_Z|`.
    pub fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    /// Number of groups `|V_X|`.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Records a sample directly into the cumulative counts (stages 1 & 3).
    #[inline]
    pub fn record_cumulative(&mut self, candidate: u32, group: u32) {
        let c = candidate as usize;
        let g = group as usize;
        self.counts[c * self.groups + g] += 1;
        self.n[c] += 1;
    }

    /// Records a sample into the round-fresh counts (stage 2 I/O phases).
    #[inline]
    pub fn record_round(&mut self, candidate: u32, group: u32) {
        let c = candidate as usize;
        let g = group as usize;
        self.round_counts[c * self.groups + g] += 1;
        self.n_round[c] += 1;
    }

    /// Adds a whole delta row (one per group, totalling `n_delta`) to one
    /// candidate's cumulative counts — the bulk form of
    /// [`Self::record_cumulative`] used when merging accumulators.
    ///
    /// # Panics
    /// Panics if `deltas` does not have exactly `groups` entries.
    #[inline]
    pub fn record_cumulative_row(&mut self, candidate: usize, deltas: &[u64], n_delta: u64) {
        assert_eq!(deltas.len(), self.groups, "delta row arity");
        let base = candidate * self.groups;
        for (cell, &d) in self.counts[base..base + self.groups].iter_mut().zip(deltas) {
            *cell += d;
        }
        self.n[candidate] += n_delta;
    }

    /// Adds a whole delta row to one candidate's round-fresh counts — the
    /// bulk form of [`Self::record_round`] used when merging accumulators.
    ///
    /// # Panics
    /// Panics if `deltas` does not have exactly `groups` entries.
    #[inline]
    pub fn record_round_row(&mut self, candidate: usize, deltas: &[u64], n_delta: u64) {
        assert_eq!(deltas.len(), self.groups, "delta row arity");
        let base = candidate * self.groups;
        for (cell, &d) in self.round_counts[base..base + self.groups]
            .iter_mut()
            .zip(deltas)
        {
            *cell += d;
        }
        self.n_round[candidate] += n_delta;
    }

    /// Cumulative sample count `nᵢ`.
    pub fn n(&self, candidate: usize) -> u64 {
        self.n[candidate]
    }

    /// Round-fresh sample count `n∂ᵢ`.
    pub fn n_round(&self, candidate: usize) -> u64 {
        self.n_round[candidate]
    }

    /// Total samples taken so far across all candidates (cumulative plus
    /// any un-accumulated round samples).
    pub fn total_samples(&self) -> u64 {
        self.n.iter().sum::<u64>() + self.n_round.iter().sum::<u64>()
    }

    /// Cumulative per-group counts for one candidate.
    pub fn candidate_counts(&self, candidate: usize) -> &[u64] {
        &self.counts[candidate * self.groups..(candidate + 1) * self.groups]
    }

    /// Cached cumulative distance estimate `τᵢ` (set by
    /// [`Self::refresh_tau`]). `+∞` until first refreshed.
    pub fn tau(&self, candidate: usize) -> f64 {
        self.tau[candidate]
    }

    /// All cached `τᵢ`.
    pub fn taus(&self) -> &[f64] {
        &self.tau
    }

    /// Folds the round-fresh counts into the cumulative counts
    /// (Algorithm 1 lines 15–16) and clears the round state.
    pub fn accumulate_round(&mut self) {
        for (a, b) in self.counts.iter_mut().zip(self.round_counts.iter_mut()) {
            *a += *b;
            *b = 0;
        }
        for (a, b) in self.n.iter_mut().zip(self.n_round.iter_mut()) {
            *a += *b;
            *b = 0;
        }
    }

    /// Recomputes the cumulative distance `τᵢ = d(r̄ᵢ, q̄)` for one
    /// candidate. Candidates with no samples get the metric's upper limit
    /// (they sort last but stay finite so split points stay meaningful).
    pub fn refresh_tau_one(&mut self, candidate: usize, metric: Metric, target: &[f64]) {
        self.tau[candidate] = distance_of_counts(
            self.candidate_counts(candidate),
            self.n[candidate],
            metric,
            target,
        );
    }

    /// Recomputes `τᵢ` for every candidate for which `eligible` is true.
    pub fn refresh_tau(&mut self, metric: Metric, target: &[f64], eligible: &[bool]) {
        for (c, &e) in eligible.iter().enumerate().take(self.num_candidates) {
            if e {
                self.refresh_tau_one(c, metric, target);
            }
        }
    }

    /// Round-fresh distance estimate `τ∂ᵢ` (not cached — used once per
    /// round). Returns `None` when the candidate has no fresh samples.
    pub fn tau_round(&self, candidate: usize, metric: Metric, target: &[f64]) -> Option<f64> {
        let n = self.n_round[candidate];
        if n == 0 {
            return None;
        }
        let counts = &self.round_counts[candidate * self.groups..(candidate + 1) * self.groups];
        Some(distance_of_counts(counts, n, metric, target))
    }

    /// Distance computed over cumulative *plus* in-flight round counts;
    /// exact for candidates whose data has been fully consumed.
    pub fn tau_total(&self, candidate: usize, metric: Metric, target: &[f64]) -> f64 {
        let base = candidate * self.groups;
        let n = self.n[candidate] + self.n_round[candidate];
        if n == 0 {
            return metric.upper_limit().min(f64::MAX);
        }
        let inv = 1.0 / n as f64;
        let mut acc_l1 = 0.0;
        let mut acc_l2 = 0.0;
        for (g, &t) in target.iter().enumerate().take(self.groups) {
            let p = (self.counts[base + g] + self.round_counts[base + g]) as f64 * inv;
            let d = p - t;
            acc_l1 += d.abs();
            acc_l2 += d * d;
        }
        match metric {
            Metric::L1 => acc_l1,
            Metric::L2 => acc_l2.sqrt(),
            Metric::TotalVariation => 0.5 * acc_l1,
            Metric::KlDivergence => {
                // KL needs a dedicated pass; rarely used in the hot path.
                let p: Vec<f64> = (0..self.groups)
                    .map(|g| (self.counts[base + g] + self.round_counts[base + g]) as f64 * inv)
                    .collect();
                crate::distance::kl(&p, target)
            }
        }
    }

    /// Extracts the cumulative histogram (including in-flight round counts)
    /// for output.
    pub fn histogram(&self, candidate: usize) -> Histogram {
        let base = candidate * self.groups;
        let counts = (0..self.groups)
            .map(|g| self.counts[base + g] + self.round_counts[base + g])
            .collect();
        Histogram::from_counts(counts)
    }
}

/// Distance between a raw count vector (with total `n`) and a normalized
/// target, without allocating the normalized vector.
fn distance_of_counts(counts: &[u64], n: u64, metric: Metric, target: &[f64]) -> f64 {
    if n == 0 {
        return metric.upper_limit().min(f64::MAX);
    }
    let inv = 1.0 / n as f64;
    match metric {
        Metric::L1 => counts
            .iter()
            .zip(target)
            .map(|(&c, &t)| (c as f64 * inv - t).abs())
            .sum(),
        Metric::TotalVariation => {
            0.5 * counts
                .iter()
                .zip(target)
                .map(|(&c, &t)| (c as f64 * inv - t).abs())
                .sum::<f64>()
        }
        Metric::L2 => counts
            .iter()
            .zip(target)
            .map(|(&c, &t)| {
                let d = c as f64 * inv - t;
                d * d
            })
            .sum::<f64>()
            .sqrt(),
        Metric::KlDivergence => {
            let p: Vec<f64> = counts.iter().map(|&c| c as f64 * inv).collect();
            crate::distance::kl(&p, target)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = CountState::new(3, 2);
        s.record_cumulative(0, 0);
        s.record_cumulative(0, 1);
        s.record_cumulative(2, 1);
        assert_eq!(s.n(0), 2);
        assert_eq!(s.n(1), 0);
        assert_eq!(s.n(2), 1);
        assert_eq!(s.candidate_counts(0), &[1, 1]);
        assert_eq!(s.candidate_counts(2), &[0, 1]);
        assert_eq!(s.total_samples(), 3);
    }

    #[test]
    fn row_records_equal_repeated_single_records() {
        let mut bulk = CountState::new(2, 3);
        let mut single = CountState::new(2, 3);
        bulk.record_cumulative_row(1, &[2, 0, 1], 3);
        bulk.record_round_row(0, &[0, 4, 0], 4);
        for _ in 0..2 {
            single.record_cumulative(1, 0);
        }
        single.record_cumulative(1, 2);
        for _ in 0..4 {
            single.record_round(0, 1);
        }
        assert_eq!(bulk.candidate_counts(1), single.candidate_counts(1));
        assert_eq!(bulk.n(1), single.n(1));
        assert_eq!(bulk.n_round(0), single.n_round(0));
        assert_eq!(bulk.total_samples(), single.total_samples());
    }

    #[test]
    fn round_counts_are_separate_until_accumulated() {
        let mut s = CountState::new(2, 2);
        s.record_cumulative(0, 0);
        s.record_round(0, 1);
        s.record_round(1, 0);
        assert_eq!(s.n(0), 1);
        assert_eq!(s.n_round(0), 1);
        assert_eq!(s.candidate_counts(0), &[1, 0]);
        s.accumulate_round();
        assert_eq!(s.n(0), 2);
        assert_eq!(s.n_round(0), 0);
        assert_eq!(s.candidate_counts(0), &[1, 1]);
        assert_eq!(s.n(1), 1);
    }

    #[test]
    fn tau_reflects_cumulative_counts() {
        let mut s = CountState::new(1, 2);
        let target = [0.5, 0.5];
        s.record_cumulative(0, 0);
        s.record_cumulative(0, 0);
        s.refresh_tau_one(0, Metric::L1, &target);
        // empirical [1, 0] vs [0.5, 0.5] ⇒ l1 = 1.0
        assert!((s.tau(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_of_unseen_candidate_is_upper_limit() {
        let mut s = CountState::new(1, 4);
        s.refresh_tau_one(0, Metric::L1, &[0.25; 4]);
        assert_eq!(s.tau(0), 2.0);
    }

    #[test]
    fn tau_round_none_without_fresh_samples() {
        let s = CountState::new(1, 2);
        assert!(s.tau_round(0, Metric::L1, &[0.5, 0.5]).is_none());
    }

    #[test]
    fn tau_round_uses_only_fresh_samples() {
        let mut s = CountState::new(1, 2);
        let target = [0.5, 0.5];
        // cumulative is perfectly balanced...
        s.record_cumulative(0, 0);
        s.record_cumulative(0, 1);
        // ...round is skewed
        s.record_round(0, 0);
        let tr = s.tau_round(0, Metric::L1, &target).unwrap();
        assert!((tr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_total_includes_round() {
        let mut s = CountState::new(1, 2);
        let target = [0.5, 0.5];
        s.record_cumulative(0, 0);
        s.record_round(0, 1);
        let t = s.tau_total(0, Metric::L1, &target);
        assert!(t.abs() < 1e-12, "combined counts are balanced, t = {t}");
    }

    #[test]
    fn histogram_extraction_includes_round() {
        let mut s = CountState::new(2, 3);
        s.record_cumulative(1, 0);
        s.record_round(1, 2);
        let h = s.histogram(1);
        assert_eq!(h.counts(), &[1, 0, 1]);
    }

    #[test]
    fn distance_matches_metric_eval() {
        let mut s = CountState::new(1, 3);
        let target = [0.2, 0.3, 0.5];
        for g in [0u32, 0, 1, 2, 2, 2] {
            s.record_cumulative(0, g);
        }
        for m in [Metric::L1, Metric::L2, Metric::TotalVariation] {
            s.refresh_tau_one(0, m, &target);
            let p = s.histogram(0).normalized().unwrap();
            assert!((s.tau(0) - m.eval(&p, &target)).abs() < 1e-12, "{m:?}");
        }
    }
}
