//! Configuration for a HistSim run.

use crate::distance::Metric;
use crate::error::{CoreError, Result};
use crate::stats::deviation::DeviationBound;

/// User-facing parameters of Problem 1 (`TOP-K-SIMILAR`) plus the knobs the
/// paper treats as system constants.
#[derive(Debug, Clone)]
pub struct HistSimConfig {
    /// Number of matching histograms to retrieve.
    pub k: usize,
    /// Approximation error upper bound ε used for the separation guarantee
    /// (Guarantee 1), and — unless [`Self::epsilon_reconstruction`] is set —
    /// for the reconstruction guarantee too.
    pub epsilon: f64,
    /// Appendix A.2.1: a distinct ε₂ for the reconstruction guarantee
    /// (Guarantee 2). `None` means ε₂ = ε.
    pub epsilon_reconstruction: Option<f64>,
    /// Error probability upper bound δ: both guarantees hold simultaneously
    /// with probability greater than `1 − δ`.
    pub delta: f64,
    /// Minimum selectivity threshold σ: candidates with `Nᵢ/N < σ` may be
    /// pruned in stage 1. σ = 0 disables pruning (the §5.4 pathology).
    pub sigma: f64,
    /// Number of uniform samples `m` taken during stage 1. The paper uses
    /// `5·10⁵`; it should be large enough to detect rare candidates but a
    /// small fraction of the data (footnote 1).
    pub stage1_samples: u64,
    /// Distance metric. Only [`Metric::L1`] (the paper's choice) and
    /// [`Metric::L2`] (Appendix A.2.2) admit the deviation bounds HistSim
    /// needs; other metrics are rejected at validation.
    pub metric: Metric,
    /// Appendix A.2.3: permit any number of matches within `[k_lo, k_hi]`,
    /// letting the algorithm pick the easiest split. Overrides `k`.
    pub k_range: Option<(usize, usize)>,
    /// Appendix A.1.5: when the candidate domain is not known up front, add
    /// a "dummy" stage-1 test certifying that *unseen* candidates are
    /// collectively rare.
    pub test_unseen_mass: bool,
    /// Safety factor on the per-round stage-2 sample targets `n′ᵢ`.
    ///
    /// Eq. 1 (§4.2 Challenge 2) solves Theorem 1 so that the *expected*
    /// P-value of each test lands exactly at `δ_upper` — a round then
    /// fails with roughly even odds per candidate, and with many
    /// candidates the simultaneous test almost never rejects. Scaling the
    /// targets by 4 (equivalently halving the assumed deviation `ε′ᵢ`)
    /// puts the expected P-value far below the threshold so rounds
    /// terminate in 1–2 attempts, matching the paper's reported 4–5 round
    /// worst case. Set to 1.0 for the literal Eq. 1 behaviour.
    pub round_multiplier: f64,
}

impl Default for HistSimConfig {
    /// The default experimental settings of §5.2: `k = 10`, `ε = 0.04`,
    /// `δ = 0.01`, `σ = 0.0008`, `m = 5·10⁵`, ℓ1 distance.
    fn default() -> Self {
        HistSimConfig {
            k: 10,
            epsilon: 0.04,
            epsilon_reconstruction: None,
            delta: 0.01,
            sigma: 0.0008,
            stage1_samples: 500_000,
            metric: Metric::L1,
            k_range: None,
            test_unseen_mass: false,
            round_multiplier: 4.0,
        }
    }
}

impl HistSimConfig {
    /// Validates parameter domains and returns the deviation bound the
    /// metric admits.
    pub fn validate(&self, groups: usize) -> Result<DeviationBound> {
        if self.k == 0 && self.k_range.is_none() {
            return Err(CoreError::InvalidConfig("k must be at least 1".into()));
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(CoreError::InvalidConfig("epsilon must be positive".into()));
        }
        if let Some(e2) = self.epsilon_reconstruction {
            if !e2.is_finite() || e2 <= 0.0 {
                return Err(CoreError::InvalidConfig(
                    "epsilon_reconstruction must be positive".into(),
                ));
            }
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CoreError::InvalidConfig("delta must lie in (0, 1)".into()));
        }
        if !(0.0..=1.0).contains(&self.sigma) {
            return Err(CoreError::InvalidConfig("sigma must lie in [0, 1]".into()));
        }
        if self.stage1_samples == 0 {
            return Err(CoreError::InvalidConfig(
                "stage1_samples must be positive".into(),
            ));
        }
        if !self.round_multiplier.is_finite() || self.round_multiplier < 1.0 {
            return Err(CoreError::InvalidConfig(
                "round_multiplier must be at least 1".into(),
            ));
        }
        if let Some((lo, hi)) = self.k_range {
            if lo == 0 || lo > hi {
                return Err(CoreError::InvalidConfig(
                    "k_range must satisfy 1 ≤ lo ≤ hi".into(),
                ));
            }
        }
        if groups == 0 {
            return Err(CoreError::InvalidConfig(
                "histograms must have at least one group".into(),
            ));
        }
        match self.metric {
            Metric::L1 => Ok(DeviationBound::L1 { groups }),
            Metric::L2 => Ok(DeviationBound::L2),
            other => Err(CoreError::InvalidConfig(format!(
                "metric {:?} has no deviation bound; use L1 or L2",
                other
            ))),
        }
    }

    /// The reconstruction tolerance ε₂ (falls back to ε).
    pub fn eps_reconstruction(&self) -> f64 {
        self.epsilon_reconstruction.unwrap_or(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = HistSimConfig::default();
        assert_eq!(c.k, 10);
        assert_eq!(c.epsilon, 0.04);
        assert_eq!(c.delta, 0.01);
        assert_eq!(c.sigma, 0.0008);
        assert_eq!(c.stage1_samples, 500_000);
        assert_eq!(c.metric, Metric::L1);
        assert!(c.validate(24).is_ok());
    }

    #[test]
    fn rejects_bad_parameters() {
        let base = HistSimConfig::default();
        let cases: Vec<HistSimConfig> = vec![
            HistSimConfig {
                k: 0,
                ..base.clone()
            },
            HistSimConfig {
                epsilon: 0.0,
                ..base.clone()
            },
            HistSimConfig {
                epsilon: -1.0,
                ..base.clone()
            },
            HistSimConfig {
                delta: 0.0,
                ..base.clone()
            },
            HistSimConfig {
                delta: 1.0,
                ..base.clone()
            },
            HistSimConfig {
                sigma: -0.1,
                ..base.clone()
            },
            HistSimConfig {
                sigma: 1.5,
                ..base.clone()
            },
            HistSimConfig {
                stage1_samples: 0,
                ..base.clone()
            },
            HistSimConfig {
                k_range: Some((0, 3)),
                ..base.clone()
            },
            HistSimConfig {
                k_range: Some((5, 2)),
                ..base.clone()
            },
            HistSimConfig {
                epsilon_reconstruction: Some(0.0),
                ..base.clone()
            },
            HistSimConfig {
                metric: Metric::KlDivergence,
                ..base.clone()
            },
            HistSimConfig {
                metric: Metric::TotalVariation,
                ..base
            },
        ];
        for c in cases {
            assert!(c.validate(24).is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn zero_groups_rejected() {
        assert!(HistSimConfig::default().validate(0).is_err());
    }

    #[test]
    fn k_zero_allowed_with_range() {
        let c = HistSimConfig {
            k: 0,
            k_range: Some((2, 5)),
            ..HistSimConfig::default()
        };
        assert!(c.validate(24).is_ok());
    }

    #[test]
    fn l2_metric_selects_l2_bound() {
        let c = HistSimConfig {
            metric: Metric::L2,
            ..HistSimConfig::default()
        };
        assert_eq!(c.validate(24).unwrap(), DeviationBound::L2);
    }

    #[test]
    fn eps_reconstruction_fallback() {
        let mut c = HistSimConfig::default();
        assert_eq!(c.eps_reconstruction(), c.epsilon);
        c.epsilon_reconstruction = Some(0.1);
        assert_eq!(c.eps_reconstruction(), 0.1);
    }
}
