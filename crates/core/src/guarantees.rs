//! Validators for the paper's two correctness guarantees, evaluated
//! against exact ground truth. Used by tests and by the §5.4 experiment
//! that counts guarantee violations across repeated runs.

use crate::distance::Metric;
use crate::histogram::Histogram;
use crate::histsim::MatchedCandidate;
use crate::topk::k_smallest_indices;

/// Exact per-candidate histograms plus the normalized target — everything
/// needed to decide whether an approximate output was correct.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    exact: Vec<Histogram>,
    target: Vec<f64>,
    metric: Metric,
    n_total: u64,
    true_tau: Vec<f64>,
}

impl GroundTruth {
    /// Builds ground truth from exact per-candidate count vectors.
    pub fn new(exact: Vec<Histogram>, target: Vec<f64>, metric: Metric) -> Self {
        let n_total = exact.iter().map(|h| h.total()).sum();
        let true_tau = exact
            .iter()
            .map(|h| match h.normalized() {
                Ok(p) => metric.eval(&p, &target),
                Err(_) => metric.upper_limit().min(f64::MAX),
            })
            .collect();
        GroundTruth {
            exact,
            target,
            metric,
            n_total,
            true_tau,
        }
    }

    /// Builds ground truth directly from `(candidate, group)` tuples.
    pub fn from_tuples(
        tuples: impl IntoIterator<Item = (u32, u32)>,
        num_candidates: usize,
        groups: usize,
        target: Vec<f64>,
        metric: Metric,
    ) -> Self {
        let mut hists = vec![Histogram::zeros(groups); num_candidates];
        for (c, g) in tuples {
            hists[c as usize].record(g as usize);
        }
        Self::new(hists, target, metric)
    }

    /// Exact distances `τ*ᵢ`.
    pub fn true_distances(&self) -> &[f64] {
        &self.true_tau
    }

    /// Exact selectivity `Nᵢ/N` of a candidate.
    pub fn selectivity(&self, c: u32) -> f64 {
        self.exact[c as usize].total() as f64 / self.n_total as f64
    }

    /// The exact histograms.
    pub fn histograms(&self) -> &[Histogram] {
        &self.exact
    }

    /// The normalized target `q̄` the truth was computed against.
    pub fn target(&self) -> &[f64] {
        &self.target
    }

    /// Total number of tuples `N`.
    pub fn total_rows(&self) -> u64 {
        self.n_total
    }

    /// The true top-k among candidates meeting the selectivity threshold —
    /// what an exact `Scan(σ)` would return.
    pub fn true_topk(&self, k: usize, sigma: f64) -> Vec<u32> {
        let eligible: Vec<bool> = (0..self.exact.len())
            .map(|c| self.selectivity(c as u32) >= sigma)
            .collect();
        k_smallest_indices(&self.true_tau, k, &eligible)
            .into_iter()
            .map(|i| i as u32)
            .collect()
    }

    /// **Guarantee 1 (separation)**: every candidate outside the output
    /// with selectivity ≥ σ must be less than ε closer to the target than
    /// the furthest output member:
    /// `max_{l ∈ out} τ*_l − τ*_i < ε  ∨  Nᵢ/N < σ`.
    pub fn check_separation(&self, output_ids: &[u32], epsilon: f64, sigma: f64) -> bool {
        let in_out: Vec<bool> = {
            let mut v = vec![false; self.exact.len()];
            for &c in output_ids {
                v[c as usize] = true;
            }
            v
        };
        let max_out = output_ids
            .iter()
            .map(|&c| self.true_tau[c as usize])
            .fold(f64::NEG_INFINITY, f64::max);
        if !max_out.is_finite() {
            // Empty output satisfies separation only when no candidate
            // meets the selectivity threshold.
            return (0..self.exact.len() as u32).all(|c| self.selectivity(c) < sigma);
        }
        (0..self.exact.len()).all(|i| {
            in_out[i] || self.selectivity(i as u32) < sigma || max_out - self.true_tau[i] < epsilon
        })
    }

    /// **Guarantee 2 (reconstruction)**: every output histogram must be
    /// within ε of its exact counterpart: `d(rᵢ, r*ᵢ) < ε`.
    pub fn check_reconstruction(&self, matches: &[MatchedCandidate], epsilon: f64) -> bool {
        matches.iter().all(|m| {
            let est = match m.histogram.normalized() {
                Ok(p) => p,
                Err(_) => return false,
            };
            let exact = match self.exact[m.candidate as usize].normalized() {
                Ok(p) => p,
                Err(_) => return false,
            };
            self.metric.eval(&est, &exact) < epsilon
        })
    }

    /// The §5.3 *total relative error in visual distance*:
    ///
    /// ```text
    /// Δd(M, M*, q) = (Σ_{i∈M} d(rᵢ, q) − Σ_{j∈M*} d(r*ⱼ, q)) / Σ_{j∈M*} d(r*ⱼ, q)
    /// ```
    ///
    /// where the numerator's first sum uses the *returned estimates*
    /// (so Δd can be negative, as the paper notes).
    pub fn delta_d(&self, matches: &[MatchedCandidate], sigma: f64) -> f64 {
        let k = matches.len();
        let star = self.true_topk(k, sigma);
        let sum_star: f64 = star.iter().map(|&c| self.true_tau[c as usize]).sum();
        let sum_out: f64 = matches.iter().map(|m| m.distance).sum();
        if sum_star == 0.0 {
            return if sum_out == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (sum_out - sum_star) / sum_star
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt_3cand() -> GroundTruth {
        // τ* against uniform [0.5, 0.5]: c0 = 0.0, c1 = 0.5, c2 = 1.0
        let hists = vec![
            Histogram::from_counts(vec![50, 50]),
            Histogram::from_counts(vec![75, 25]),
            Histogram::from_counts(vec![100, 0]),
        ];
        GroundTruth::new(hists, vec![0.5, 0.5], Metric::L1)
    }

    #[test]
    fn true_distances_and_topk() {
        let gt = gt_3cand();
        let d = gt.true_distances();
        assert!((d[0] - 0.0).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
        assert!((d[2] - 1.0).abs() < 1e-12);
        assert_eq!(gt.true_topk(2, 0.0), vec![0, 1]);
    }

    #[test]
    fn selectivity_is_fractional() {
        let gt = gt_3cand();
        assert!((gt.selectivity(0) - 100.0 / 300.0).abs() < 1e-12);
        assert_eq!(gt.total_rows(), 300);
    }

    #[test]
    fn separation_accepts_correct_output() {
        let gt = gt_3cand();
        assert!(gt.check_separation(&[0, 1], 0.01, 0.0));
    }

    #[test]
    fn separation_rejects_bad_swap() {
        let gt = gt_3cand();
        // Output {0, 2} misses candidate 1 which is 0.5 closer than
        // candidate 2 — a violation for ε < 0.5.
        assert!(!gt.check_separation(&[0, 2], 0.3, 0.0));
        // ...but fine for a very loose ε.
        assert!(gt.check_separation(&[0, 2], 0.6, 0.0));
    }

    #[test]
    fn separation_respects_sigma_escape() {
        // candidate 1 is rare: excluding it is allowed under σ.
        let hists = vec![
            Histogram::from_counts(vec![5000, 5000]),
            Histogram::from_counts(vec![3, 3]), // rare perfect match
            Histogram::from_counts(vec![9000, 1000]),
        ];
        let gt = GroundTruth::new(hists, vec![0.5, 0.5], Metric::L1);
        // Output = {0, 2}, missing the rare candidate 1 (τ* = 0).
        assert!(!gt.check_separation(&[0, 2], 0.2, 0.0));
        assert!(gt.check_separation(&[0, 2], 0.2, 0.001));
    }

    #[test]
    fn empty_output_separation() {
        let gt = gt_3cand();
        assert!(!gt.check_separation(&[], 0.1, 0.0));
        // With σ = 1.0 nothing qualifies, so empty output is fine.
        assert!(gt.check_separation(&[], 0.1, 1.0));
    }

    #[test]
    fn reconstruction_checks_distance_to_exact() {
        let gt = gt_3cand();
        let good = MatchedCandidate {
            candidate: 0,
            distance: 0.0,
            histogram: Histogram::from_counts(vec![49, 51]),
            samples: 100,
        };
        assert!(gt.check_reconstruction(std::slice::from_ref(&good), 0.1));
        let bad = MatchedCandidate {
            candidate: 0,
            distance: 0.0,
            histogram: Histogram::from_counts(vec![90, 10]),
            samples: 100,
        };
        assert!(!gt.check_reconstruction(&[bad], 0.1));
        // Empty estimate can never be reconstruction-correct.
        let empty = MatchedCandidate {
            candidate: 0,
            distance: 0.0,
            histogram: Histogram::zeros(2),
            samples: 0,
        };
        assert!(!gt.check_reconstruction(&[empty], 0.1));
    }

    #[test]
    fn delta_d_zero_for_perfect_output() {
        let gt = gt_3cand();
        let matches = vec![
            MatchedCandidate {
                candidate: 0,
                distance: 0.0,
                histogram: Histogram::from_counts(vec![50, 50]),
                samples: 100,
            },
            MatchedCandidate {
                candidate: 1,
                distance: 0.5,
                histogram: Histogram::from_counts(vec![75, 25]),
                samples: 100,
            },
        ];
        assert!(gt.delta_d(&matches, 0.0).abs() < 1e-12);
    }

    #[test]
    fn delta_d_positive_for_worse_output() {
        let gt = gt_3cand();
        let matches = vec![
            MatchedCandidate {
                candidate: 0,
                distance: 0.0,
                histogram: Histogram::from_counts(vec![50, 50]),
                samples: 100,
            },
            MatchedCandidate {
                candidate: 2,
                distance: 1.0,
                histogram: Histogram::from_counts(vec![100, 0]),
                samples: 100,
            },
        ];
        // true top-2 sum = 0.5; output sum = 1.0 ⇒ Δd = 1.0
        assert!((gt.delta_d(&matches, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_tuples_matches_manual_counts() {
        let gt = GroundTruth::from_tuples(
            vec![(0, 0), (0, 1), (1, 0)],
            2,
            2,
            vec![0.5, 0.5],
            Metric::L1,
        );
        assert_eq!(gt.histograms()[0].counts(), &[1, 1]);
        assert_eq!(gt.histograms()[1].counts(), &[1, 0]);
    }
}
