//! Statistical machinery backing HistSim.
//!
//! * [`special`] — log-gamma / log-factorial / log-binomial primitives;
//! * [`hypergeometric`] — the stage-1 underrepresentation test;
//! * [`deviation`] — the Theorem 1 ℓ1 deviation bound (and an ℓ2 analogue
//!   for the Appendix A.2.2 extension);
//! * [`holm_bonferroni`] — family-wise error control for stage 1;
//! * [`simultaneous`] — the Lemma 4 all-or-nothing tester for stage 2.

pub mod deviation;
pub mod holm_bonferroni;
pub mod hypergeometric;
pub mod simultaneous;
pub mod special;
