//! Special functions: log-gamma, log-factorial and log-binomial.
//!
//! The paper relies on Boost.Math for the hypergeometric distribution; this
//! crate is self-contained, so we implement the Lanczos approximation of
//! `ln Γ(x)` (g = 7, 9 coefficients — the classic Numerical Recipes / Boost
//! parameterization, accurate to ~1e-13 relative error for x ≥ 0.5) plus a
//! cached factorial table for small integer arguments.

/// Lanczos coefficients for g = 7, n = 9.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_7;

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the reflection formula for `x < 0.5` (not needed by callers here but
/// kept for completeness) and the Lanczos series otherwise.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    LN_SQRT_2PI + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Size of the exact cached `ln n!` table.
const FACT_TABLE_LEN: usize = 1024;

fn fact_table() -> &'static [f64; FACT_TABLE_LEN] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; FACT_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0; FACT_TABLE_LEN];
        let mut acc = 0.0f64;
        for (n, slot) in t.iter_mut().enumerate() {
            if n > 0 {
                acc += (n as f64).ln();
            }
            *slot = acc;
        }
        t
    })
}

/// `ln n!`, exact-cached for n < 1024 and via `ln_gamma(n + 1)` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    if (n as usize) < FACT_TABLE_LEN {
        fact_table()[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`; returns `-∞` when `k > n` (the binomial coefficient is 0).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Numerically stable `ln(exp(a) + exp(b))`.
pub fn ln_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{a} vs {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(0.5) = √π, Γ(5) = 24
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-12);
        // Γ(100) = 99!
        assert_close(ln_gamma(100.0), ln_factorial(99), 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_branch() {
        // Γ(0.25) ≈ 3.625609908
        assert_close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-10);
    }

    #[test]
    fn ln_factorial_exact_small_values() {
        let expected = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in expected.iter().enumerate() {
            assert_close(ln_factorial(n as u64), f.ln(), 1e-14);
        }
    }

    #[test]
    fn ln_factorial_table_boundary_is_continuous() {
        // values computed just below and above the cache boundary must agree
        // with the recurrence ln((n+1)!) = ln(n!) + ln(n+1)
        for n in (FACT_TABLE_LEN as u64 - 3)..(FACT_TABLE_LEN as u64 + 3) {
            let lhs = ln_factorial(n + 1);
            let rhs = ln_factorial(n) + ((n + 1) as f64).ln();
            assert_close(lhs, rhs, 1e-10);
        }
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        // C(10, 3) = 120
        assert_close(ln_binomial(10, 3), 120.0f64.ln(), 1e-12);
        // C(52, 5) = 2598960
        assert_close(ln_binomial(52, 5), 2_598_960.0f64.ln(), 1e-12);
        // out-of-range
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
        // edges
        assert_close(ln_binomial(7, 0), 0.0, 1e-14);
        assert_close(ln_binomial(7, 7), 0.0, 1e-14);
    }

    #[test]
    fn ln_binomial_large_arguments_are_stable() {
        // C(n, k) with n = 10^7: check the symmetry C(n,k) = C(n,n−k)
        let n = 10_000_000u64;
        let k = 12_345u64;
        assert_close(ln_binomial(n, k), ln_binomial(n, n - k), 1e-10);
    }

    #[test]
    fn ln_add_exp_basic() {
        assert_close(ln_add_exp(0.0, 0.0), 2.0f64.ln(), 1e-14);
        assert_close(ln_add_exp(-1000.0, 0.0), 0.0, 1e-12);
        assert_eq!(ln_add_exp(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(ln_add_exp(3.0, f64::NEG_INFINITY), 3.0);
        // ln(e^1 + e^2)
        assert_close(
            ln_add_exp(1.0, 2.0),
            (1.0f64.exp() + 2.0f64.exp()).ln(),
            1e-14,
        );
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
