//! Deviation bounds relating sample counts to reconstruction error.
//!
//! Theorem 1 of the paper: after `n` samples of candidate `i`'s histogram
//! over `|V_X|` groups, the empirical normalized histogram `r̄ᵢ` satisfies
//! `‖r̄ᵢ − r̄*ᵢ‖₁ < ε` with probability `> 1 − δ` for
//!
//! ```text
//! ε = sqrt( (2/n) · (|V_X|·ln 2 + ln(1/δ)) )
//! ```
//!
//! This is the information-theoretically optimal ℓ1 learning rate for
//! discrete distributions; the proof unions a McDiarmid inequality over all
//! `2^{|V_X|}` sign functions. The bound transfers unchanged to sampling
//! without replacement (Hoeffding 1963 / Bardenet–Maillard 2015), which is
//! how the engine actually samples.
//!
//! The three faces of the bound used by HistSim:
//! * [`DeviationBound::epsilon`] — stage-3 error after `n` samples;
//! * [`DeviationBound::samples_needed`] — the engine's per-round target
//!   `n′ᵢ` (Eq. 1 in §4.2) and the stage-3 sample count;
//! * [`DeviationBound::ln_pvalue`] — stage-2 P-values
//!   `δᵢ = 2^{|V_X|}·exp(−εᵢ²·n/2)` (§3.4.3; computed in log space since
//!   `2^{|V_X|}` overflows `f64` already at `|V_X| ≥ 1024`).
//!
//! An ℓ2 analogue (Appendix A.2.2) is provided: by McDiarmid on the
//! 1-Lipschitz-in-each-sample function `‖r̄ − r̄*‖₂` with bounded differences
//! `2/n` and `E‖r̄ − r̄*‖₂ ≤ 1/√n`, we get
//! `P(‖r̄ − r̄*‖₂ ≥ 1/√n + t) ≤ exp(−t²n/2)`.

/// Which concentration bound drives sampling decisions and P-values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviationBound {
    /// Theorem 1: ℓ1 bound with the `2^{|V_X|}` union term.
    L1 {
        /// Number of groups `|V_X|` of the histograms being estimated.
        groups: usize,
    },
    /// Appendix A.2.2: dimension-free ℓ2 bound.
    L2,
}

impl DeviationBound {
    /// The additive log-term `|V_X|·ln 2 + ln(1/δ)` (ℓ1) or `ln(1/δ)` (ℓ2).
    fn ln_term(&self, delta: f64) -> f64 {
        match self {
            DeviationBound::L1 { groups } => {
                *groups as f64 * std::f64::consts::LN_2 + (1.0 / delta).ln()
            }
            DeviationBound::L2 => (1.0 / delta).ln(),
        }
    }

    /// The deviation `ε` guaranteed with probability `> 1 − δ` after `n`
    /// samples. Returns `+∞` for `n = 0`.
    pub fn epsilon(&self, n: u64, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        if n == 0 {
            return f64::INFINITY;
        }
        match self {
            DeviationBound::L1 { .. } => (2.0 / n as f64 * self.ln_term(delta)).sqrt(),
            DeviationBound::L2 => {
                (1.0 / (n as f64).sqrt()) + (2.0 / n as f64 * self.ln_term(delta)).sqrt()
            }
        }
    }

    /// The number of samples needed so that the ε-deviation holds with
    /// probability `> 1 − δ` (solving [`Self::epsilon`] for `n`).
    pub fn samples_needed(&self, eps: f64, delta: f64) -> u64 {
        assert!(eps > 0.0, "epsilon must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        match self {
            DeviationBound::L1 { .. } => (2.0 * self.ln_term(delta) / (eps * eps)).ceil() as u64,
            DeviationBound::L2 => {
                // Solve 1/√n + sqrt(2 ln(1/δ)/n) ≤ ε  ⇔  n ≥ ((1 + √(2L))/ε)²
                let root = 1.0 + (2.0 * self.ln_term(delta)).sqrt();
                ((root / eps) * (root / eps)).ceil() as u64
            }
        }
    }

    /// Log of the P-value upper bound `P(d(r∂ᵢ, r*ᵢ) > ε)` after `n` fresh
    /// samples. For ℓ1 this is `|V_X|·ln 2 − ε²n/2` (clamped to ≤ 0); for ℓ2
    /// the mean term `1/√n` is subtracted from ε first.
    ///
    /// `ε ≤ 0` means the observed statistic fell on the null's side, so the
    /// test carries no evidence: the P-value is 1 (`ln = 0`).
    pub fn ln_pvalue(&self, eps: f64, n: u64) -> f64 {
        if n == 0 || eps <= 0.0 {
            return 0.0; // P-value 1
        }
        let ln_p = match self {
            DeviationBound::L1 { groups } => {
                *groups as f64 * std::f64::consts::LN_2 - eps * eps * n as f64 / 2.0
            }
            DeviationBound::L2 => {
                let t = eps - 1.0 / (n as f64).sqrt();
                if t <= 0.0 {
                    return 0.0;
                }
                -t * t * n as f64 / 2.0
            }
        };
        ln_p.min(0.0)
    }

    /// P-value upper bound in linear space (may underflow to 0 — that is
    /// fine, it only makes the simultaneous test accept sooner and the bound
    /// is an upper bound anyway).
    pub fn pvalue(&self, eps: f64, n: u64) -> f64 {
        self.ln_pvalue(eps, n).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L1_24: DeviationBound = DeviationBound::L1 { groups: 24 };

    #[test]
    fn epsilon_and_samples_needed_are_inverse() {
        for &eps in &[0.02, 0.04, 0.08, 0.2] {
            for &delta in &[0.001, 0.01, 0.1] {
                let n = L1_24.samples_needed(eps, delta);
                // With n samples the guaranteed deviation is ≤ ε...
                assert!(L1_24.epsilon(n, delta) <= eps + 1e-12);
                // ...and with one fewer it is > ε (ceil tightness).
                assert!(L1_24.epsilon(n - 1, delta) > eps);
            }
        }
    }

    #[test]
    fn epsilon_shrinks_with_samples() {
        let mut prev = f64::INFINITY;
        for n in [1u64, 10, 100, 1_000, 10_000] {
            let e = L1_24.epsilon(n, 0.01);
            assert!(e < prev);
            prev = e;
        }
    }

    #[test]
    fn zero_samples_give_infinite_epsilon_and_unit_pvalue() {
        assert!(L1_24.epsilon(0, 0.01).is_infinite());
        assert_eq!(L1_24.pvalue(0.5, 0), 1.0);
    }

    #[test]
    fn nonpositive_eps_gives_unit_pvalue() {
        assert_eq!(L1_24.pvalue(0.0, 100), 1.0);
        assert_eq!(L1_24.pvalue(-0.3, 100), 1.0);
    }

    #[test]
    fn pvalue_matches_paper_formula() {
        // δᵢ = 2^{|V_X|} exp(−ε² n / 2)
        let eps = 0.1;
        let n = 50_000u64;
        let expected = (24.0 * std::f64::consts::LN_2 - eps * eps * n as f64 / 2.0).exp();
        assert!((L1_24.pvalue(eps, n) - expected).abs() < 1e-12);
    }

    #[test]
    fn pvalue_is_clamped_to_one() {
        // small n, large |V_X|: raw bound exceeds 1
        let b = DeviationBound::L1 { groups: 351 };
        assert_eq!(b.pvalue(0.01, 10), 1.0);
    }

    #[test]
    fn huge_group_count_does_not_overflow() {
        // 2^2110 overflows f64; the log-space path must stay finite.
        let b = DeviationBound::L1 { groups: 2110 };
        let lp = b.ln_pvalue(0.05, 10_000_000);
        assert!(lp.is_finite());
        assert!(lp < 0.0);
    }

    #[test]
    fn samples_needed_matches_eq1_scale() {
        // Eq. 1: n′ = 2(|V_X| ln2 − ln δ)/ε². Spot-check one value by hand:
        // |V_X| = 24, δ = 1/300, ε = 0.02 ⇒ 2(16.6355 + 5.7038)/0.0004 ≈ 111_697
        let n = L1_24.samples_needed(0.02, 1.0 / 300.0);
        assert!((n as f64 - 111_696.0).abs() < 10.0, "n = {n}");
    }

    #[test]
    fn l2_bound_is_dimension_free_and_consistent() {
        let l2 = DeviationBound::L2;
        let n = l2.samples_needed(0.1, 0.01);
        assert!(l2.epsilon(n, 0.01) <= 0.1 + 1e-12);
        // ℓ2 needs far fewer samples than ℓ1 at high dimension, same ε/δ.
        let l1 = DeviationBound::L1 { groups: 351 };
        assert!(n < l1.samples_needed(0.1, 0.01));
    }

    #[test]
    fn l2_pvalue_handles_mean_term() {
        let l2 = DeviationBound::L2;
        // ε below the 1/√n mean term carries no evidence.
        assert_eq!(l2.pvalue(0.009, 10_000), 1.0);
        // ε above it does.
        assert!(l2.pvalue(0.1, 10_000) < 1.0);
    }

    #[test]
    fn monotone_pvalues_in_n_and_eps() {
        let mut prev = 1.0;
        for n in [100u64, 1_000, 10_000, 100_000] {
            let p = L1_24.pvalue(0.08, n);
            assert!(p <= prev + 1e-15);
            prev = p;
        }
        let mut prev = 1.0;
        for eps in [0.01, 0.05, 0.1, 0.5] {
            let p = L1_24.pvalue(eps, 20_000);
            assert!(p <= prev + 1e-15);
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1)")]
    fn invalid_delta_panics() {
        L1_24.epsilon(10, 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn invalid_eps_panics() {
        L1_24.samples_needed(0.0, 0.01);
    }
}
