//! The Holm–Bonferroni step-down procedure for family-wise error control.
//!
//! Stage 1 of HistSim tests one "candidate i is not rare" null per
//! candidate and must bound the probability of pruning *any* non-rare
//! candidate by `δ/3`. Holm–Bonferroni (Holm 1979) controls the family-wise
//! type-1 error at level `δ_upper` regardless of dependence between tests,
//! and is uniformly more powerful than plain Bonferroni.
//!
//! Procedure (paper §3.2): sort the P-values increasingly; find the minimal
//! 1-based index `j` with `p₍ⱼ₎ > δ_upper / (n − j + 1)`; reject exactly the
//! hypotheses with smaller sorted index.

/// Outcome of a Holm–Bonferroni run.
#[derive(Debug, Clone, PartialEq)]
pub struct HolmBonferroni {
    rejected: Vec<bool>,
    num_rejected: usize,
}

impl HolmBonferroni {
    /// Runs the step-down procedure at family-wise level `level` over the
    /// given P-values. `rejected()[i]` is true iff null hypothesis `i` is
    /// rejected.
    pub fn test(pvalues: &[f64], level: f64) -> Self {
        assert!(level > 0.0 && level < 1.0, "level must lie in (0, 1)");
        let n = pvalues.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            pvalues[a]
                .partial_cmp(&pvalues[b])
                .expect("P-values must not be NaN")
        });
        let mut rejected = vec![false; n];
        let mut num_rejected = 0;
        for (rank, &idx) in order.iter().enumerate() {
            // 1-based rank j has threshold level / (n − j + 1)
            let threshold = level / (n - rank) as f64;
            if pvalues[idx] <= threshold {
                rejected[idx] = true;
                num_rejected += 1;
            } else {
                break; // step-down stops at the first failure
            }
        }
        HolmBonferroni {
            rejected,
            num_rejected,
        }
    }

    /// Per-hypothesis rejection flags, in input order.
    pub fn rejected(&self) -> &[bool] {
        &self.rejected
    }

    /// Number of rejected hypotheses.
    pub fn num_rejected(&self) -> usize {
        self.num_rejected
    }
}

/// Plain Bonferroni: reject `H₀⁽ⁱ⁾` iff `pᵢ ≤ level / n`. Used only as a
/// reference in tests (Holm dominates it) and for documentation.
pub fn bonferroni(pvalues: &[f64], level: f64) -> Vec<bool> {
    let n = pvalues.len().max(1) as f64;
    pvalues.iter().map(|&p| p <= level / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_textbook_example() {
        // p = [0.01, 0.04, 0.03, 0.005], level 0.05, n = 4.
        // sorted: 0.005 ≤ .05/4, 0.01 ≤ .05/3, 0.03 > .05/2 ⇒ stop.
        let hb = HolmBonferroni::test(&[0.01, 0.04, 0.03, 0.005], 0.05);
        assert_eq!(hb.rejected(), &[true, false, false, true]);
        assert_eq!(hb.num_rejected(), 2);
    }

    #[test]
    fn rejects_everything_when_all_tiny() {
        let hb = HolmBonferroni::test(&[1e-10, 1e-12, 1e-11], 0.05);
        assert_eq!(hb.num_rejected(), 3);
    }

    #[test]
    fn rejects_nothing_when_all_large() {
        let hb = HolmBonferroni::test(&[0.5, 0.9, 0.2], 0.05);
        assert_eq!(hb.num_rejected(), 0);
    }

    #[test]
    fn empty_family_is_fine() {
        let hb = HolmBonferroni::test(&[], 0.05);
        assert_eq!(hb.num_rejected(), 0);
    }

    #[test]
    fn step_down_blocks_later_small_pvalues() {
        // Holm is step-down: once a sorted P-value fails, everything after
        // it is retained even if individually below its own threshold...
        // construct p where p(1) fails: [0.9, 1e-9] sorted = [1e-9, 0.9]:
        // 1e-9 ≤ 0.05/2 rejects, 0.9 > 0.05 stops.
        let hb = HolmBonferroni::test(&[0.9, 1e-9], 0.05);
        assert_eq!(hb.rejected(), &[false, true]);
        // Now make the first sorted one fail: nothing is rejected at all.
        let hb = HolmBonferroni::test(&[0.9, 0.03], 0.05);
        assert_eq!(hb.rejected(), &[false, false]);
    }

    #[test]
    fn holm_dominates_bonferroni() {
        // Anything Bonferroni rejects, Holm rejects too.
        let cases: &[&[f64]] = &[
            &[0.01, 0.02, 0.2, 0.001],
            &[0.012, 0.013, 0.014],
            &[0.9, 0.0001],
            &[0.05, 0.05, 0.05],
        ];
        for ps in cases {
            let bf = bonferroni(ps, 0.05);
            let hb = HolmBonferroni::test(ps, 0.05);
            for (i, &b) in bf.iter().enumerate() {
                if b {
                    assert!(hb.rejected()[i], "Holm must dominate Bonferroni: {ps:?}");
                }
            }
        }
    }

    #[test]
    fn ties_are_handled() {
        let hb = HolmBonferroni::test(&[0.001, 0.001, 0.001, 0.8], 0.05);
        assert_eq!(hb.rejected(), &[true, true, true, false]);
    }

    #[test]
    #[should_panic(expected = "level must lie in (0, 1)")]
    fn invalid_level_panics() {
        HolmBonferroni::test(&[0.5], 0.0);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_pvalue_panics() {
        HolmBonferroni::test(&[f64::NAN, 0.5], 0.05);
    }
}
