//! The Lemma 4 all-or-nothing simultaneous tester.
//!
//! Stage 2 of HistSim needs to reject an *entire family* of null hypotheses
//! at once — the separation guarantee only follows when every null is false.
//! Lemma 4 shows that the tester
//!
//! ```text
//! reject all  ⇔  max_i pᵢ ≤ δ_upper
//! ```
//!
//! rejects one or more *true* nulls with probability at most `δ_upper`
//! (this is the union–intersection method expressed in P-values). Unlike
//! Holm–Bonferroni it cannot reject a strict subset, which is exactly what
//! stage 2 wants: either the whole top-k split is certified or the round
//! continues.

/// Decision of the simultaneous tester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Every null hypothesis is rejected: the round's split is certified.
    RejectAll,
    /// At least one P-value exceeded the level: nothing is rejected.
    RejectNone,
}

/// Applies the Lemma 4 tester: rejects **all** hypotheses iff every P-value
/// is at most `level`. An empty family trivially rejects (there is nothing
/// to certify — used when `A \ M` is empty).
pub fn simultaneous_test<I>(pvalues: I, level: f64) -> Decision
where
    I: IntoIterator<Item = f64>,
{
    assert!(level > 0.0, "level must be positive");
    let mut worst = f64::NEG_INFINITY;
    for p in pvalues {
        assert!(!p.is_nan(), "P-values must not be NaN");
        if p > worst {
            worst = p;
        }
    }
    if worst == f64::NEG_INFINITY || worst <= level {
        Decision::RejectAll
    } else {
        Decision::RejectNone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_small_rejects() {
        assert_eq!(
            simultaneous_test([0.001, 0.0005, 0.002], 0.0033),
            Decision::RejectAll
        );
    }

    #[test]
    fn one_large_blocks_everything() {
        assert_eq!(
            simultaneous_test([0.001, 0.9, 0.0001], 0.0033),
            Decision::RejectNone
        );
    }

    #[test]
    fn boundary_is_inclusive() {
        assert_eq!(simultaneous_test([0.01], 0.01), Decision::RejectAll);
    }

    #[test]
    fn empty_family_rejects_vacuously() {
        assert_eq!(
            simultaneous_test(std::iter::empty::<f64>(), 0.01),
            Decision::RejectAll
        );
    }

    #[test]
    fn zero_pvalues_always_reject() {
        assert_eq!(simultaneous_test([0.0, 0.0], 1e-300), Decision::RejectAll);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_panics() {
        simultaneous_test([f64::NAN], 0.01);
    }
}
