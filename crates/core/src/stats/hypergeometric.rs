//! Hypergeometric distribution and the stage-1 underrepresentation test.
//!
//! After drawing `m` tuples uniformly at random **without replacement** from
//! a table of `N` tuples, the number of tuples belonging to a candidate with
//! `Nᵢ` total tuples follows `HypGeo(N, Nᵢ, m)` (paper §3.3). Stage 1 tests
//! the null hypothesis "candidate i is *not* rare", i.e. `Nᵢ ≥ ⌈σN⌉`, via
//! the one-sided P-value
//!
//! ```text
//! P(X ≤ nᵢ)  where  X ~ HypGeo(N, ⌈σN⌉, m)
//! ```
//!
//! — the probability of seeing `nᵢ` or fewer tuples for the candidate if it
//! actually met the selectivity threshold. Small P-value ⇒ we are surprised
//! ⇒ the candidate is declared rare and pruned.
//!
//! Following the paper's complexity note (§3.5 "Computational Complexity"),
//! [`underrepresentation_pvalues`] shares work across candidates: the pmf is
//! evaluated once along a prefix recurrence up to `max nᵢ` rather than once
//! per `(candidate, j)` pair.

use crate::stats::special::{ln_add_exp, ln_binomial};

/// Log-pmf `ln f(j; N, K, m)` of the hypergeometric distribution:
/// `f(j) = C(K, j) · C(N−K, m−j) / C(N, m)`.
///
/// Returns `-∞` outside the support `max(0, m−(N−K)) ≤ j ≤ min(K, m)`.
pub fn ln_pmf(j: u64, n_total: u64, k_success: u64, m_draws: u64) -> f64 {
    assert!(k_success <= n_total, "K must be ≤ N");
    assert!(m_draws <= n_total, "m must be ≤ N");
    if j > k_success || m_draws < j || m_draws - j > n_total - k_success {
        return f64::NEG_INFINITY;
    }
    ln_binomial(k_success, j) + ln_binomial(n_total - k_success, m_draws - j)
        - ln_binomial(n_total, m_draws)
}

/// Pmf `f(j; N, K, m)`.
pub fn pmf(j: u64, n_total: u64, k_success: u64, m_draws: u64) -> f64 {
    ln_pmf(j, n_total, k_success, m_draws).exp()
}

/// Lower CDF `P(X ≤ j)` computed by direct stable summation in log space.
pub fn cdf_lower(j: u64, n_total: u64, k_success: u64, m_draws: u64) -> f64 {
    let mut ln_acc = f64::NEG_INFINITY;
    let lo = support_lo(n_total, k_success, m_draws);
    if j < lo {
        return 0.0;
    }
    let hi = j.min(k_success).min(m_draws);
    // Seed with the lowest support point, then use the pmf ratio recurrence:
    // f(j+1)/f(j) = (K−j)(m−j) / ((j+1)(N−K−m+j+1))
    let mut ln_f = ln_pmf(lo, n_total, k_success, m_draws);
    ln_acc = ln_add_exp(ln_acc, ln_f);
    let mut jj = lo;
    while jj < hi {
        let num = (k_success - jj) as f64 * (m_draws - jj) as f64;
        // Reassociated to stay non-negative in u64: jj ≥ support lo ⇒
        // n_total + jj + 1 ≥ k_success + m_draws + 1.
        let den = (jj + 1) as f64 * (n_total + jj + 1 - k_success - m_draws) as f64;
        ln_f += num.ln() - den.ln();
        ln_acc = ln_add_exp(ln_acc, ln_f);
        jj += 1;
    }
    ln_acc.exp().min(1.0)
}

fn support_lo(n_total: u64, k_success: u64, m_draws: u64) -> u64 {
    m_draws.saturating_sub(n_total - k_success)
}

/// Computes, for every candidate `i` with observed sample count `n_is[i]`,
/// the underrepresentation P-value `Σ_{j=0}^{nᵢ} f(j; N, ⌈σN⌉, m)`.
///
/// Work is shared across candidates: the prefix CDF is evaluated once up to
/// `max nᵢ` (clamped to the support), so the total cost is
/// `O(max nᵢ + |V_Z|)` rather than `O(Σ nᵢ)`.
pub fn underrepresentation_pvalues(
    n_is: &[u64],
    n_total: u64,
    sigma: f64,
    m_draws: u64,
) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&sigma), "sigma must lie in [0, 1]");
    let k_success = (sigma * n_total as f64).ceil() as u64;
    if k_success == 0 {
        // σ = 0: no candidate can be underrepresented; P-value 1 for all.
        return vec![1.0; n_is.len()];
    }
    let max_n = n_is.iter().copied().max().unwrap_or(0);
    let hi = max_n.min(k_success).min(m_draws);
    let lo = support_lo(n_total, k_success, m_draws);

    // prefix[j] = ln P(X ≤ lo + j)
    let mut prefix = Vec::with_capacity((hi.saturating_sub(lo) + 1) as usize);
    let mut ln_f = ln_pmf(lo, n_total, k_success, m_draws);
    let mut ln_acc = ln_f;
    prefix.push(ln_acc);
    let mut j = lo;
    while j < hi {
        let num = (k_success - j) as f64 * (m_draws - j) as f64;
        let den = (j + 1) as f64 * (n_total + j + 1 - k_success - m_draws) as f64;
        ln_f += num.ln() - den.ln();
        ln_acc = ln_add_exp(ln_acc, ln_f);
        prefix.push(ln_acc);
        j += 1;
    }

    n_is.iter()
        .map(|&ni| {
            if ni < lo {
                0.0
            } else {
                let idx = (ni.min(hi) - lo) as usize;
                prefix[idx].exp().min(1.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    /// Exact pmf via 128-bit rational arithmetic for small instances.
    fn exact_pmf(j: u64, n: u64, k: u64, m: u64) -> f64 {
        fn choose(n: u64, k: u64) -> f64 {
            if k > n {
                return 0.0;
            }
            let mut acc = 1.0f64;
            for i in 0..k {
                acc *= (n - i) as f64 / (i + 1) as f64;
            }
            acc
        }
        choose(k, j) * choose(n - k, m - j) / choose(n, m)
    }

    #[test]
    fn pmf_matches_exact_small_cases() {
        for &(n, k, m) in &[(20u64, 7u64, 12u64), (10, 5, 5), (50, 3, 10)] {
            for j in 0..=m.min(k) {
                assert_close(pmf(j, n, k, m), exact_pmf(j, n, k, m), 1e-10);
            }
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let (n, k, m) = (100u64, 30u64, 40u64);
        let total: f64 = (0..=m).map(|j| pmf(j, n, k, m)).sum();
        assert_close(total, 1.0, 1e-9);
    }

    #[test]
    fn pmf_is_zero_outside_support() {
        // N=10, K=4, m=8 ⇒ support is [2, 4]
        assert_eq!(pmf(0, 10, 4, 8), 0.0);
        assert_eq!(pmf(1, 10, 4, 8), 0.0);
        assert!(pmf(2, 10, 4, 8) > 0.0);
        assert!(pmf(4, 10, 4, 8) > 0.0);
        assert_eq!(pmf(5, 10, 4, 8), 0.0);
    }

    #[test]
    fn cdf_lower_matches_partial_sums() {
        let (n, k, m) = (60u64, 20u64, 25u64);
        let mut acc = 0.0;
        for j in 0..=m.min(k) {
            acc += exact_pmf(j, n, k, m);
            assert_close(cdf_lower(j, n, k, m), acc.min(1.0), 1e-9);
        }
        assert_close(cdf_lower(m, n, k, m), 1.0, 1e-9);
    }

    #[test]
    fn cdf_lower_below_support_is_zero() {
        // N=10, K=6, m=8 ⇒ support low = 4
        assert_eq!(cdf_lower(3, 10, 6, 8), 0.0);
    }

    #[test]
    fn shared_pvalues_match_individual_cdfs() {
        let n_total = 10_000u64;
        let sigma = 0.01; // K = 100
        let m = 1_000u64;
        let n_is = vec![0u64, 1, 3, 7, 10, 15, 30, 100];
        let shared = underrepresentation_pvalues(&n_is, n_total, sigma, m);
        let k = (sigma * n_total as f64).ceil() as u64;
        for (i, &ni) in n_is.iter().enumerate() {
            assert_close(shared[i], cdf_lower(ni, n_total, k, m), 1e-9);
        }
    }

    #[test]
    fn truly_rare_candidates_get_small_pvalues() {
        // A candidate with few observed samples in a large draw is surprising
        // under the "not rare" null.
        let p = underrepresentation_pvalues(&[0, 500], 1_000_000, 0.001, 500_000);
        // Expected count under the null is ~500; observing 0 is essentially
        // impossible, observing exactly the mean is not surprising.
        assert!(p[0] < 1e-50, "p = {}", p[0]);
        assert!(p[1] > 0.4, "p = {}", p[1]);
    }

    #[test]
    fn sigma_zero_never_flags_anyone() {
        let p = underrepresentation_pvalues(&[0, 1, 2], 1000, 0.0, 100);
        assert_eq!(p, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn pvalues_are_monotone_in_observed_count() {
        let n_is: Vec<u64> = (0..50).collect();
        let p = underrepresentation_pvalues(&n_is, 100_000, 0.005, 10_000);
        for w in p.windows(2) {
            assert!(w[0] <= w[1] + 1e-15);
        }
    }

    #[test]
    fn large_scale_stability() {
        // Paper-scale: N = 600M, σ = 0.0008 (K = 480k), m = 500k.
        let p = underrepresentation_pvalues(&[0, 100, 400, 1000], 600_000_000, 0.0008, 500_000);
        assert!(p[0] >= 0.0 && p[0] < 1e-100);
        assert!(p[3] > 0.99); // expected count 400, so 1000 is not surprising
        assert!(p.iter().all(|x| x.is_finite()));
    }
}
