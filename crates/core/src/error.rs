//! Error types shared across the core crate.

use std::fmt;

/// Errors produced by HistSim configuration or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was outside its valid domain.
    InvalidConfig(String),
    /// The target histogram was empty or had a zero total count.
    InvalidTarget(String),
    /// A sample referenced a candidate or group outside the declared domain.
    SampleOutOfDomain {
        /// Candidate index of the offending sample.
        candidate: u32,
        /// Group index of the offending sample.
        group: u32,
    },
    /// An operation was invoked in a phase where it is not legal
    /// (e.g. ingesting samples after the algorithm finished).
    PhaseViolation(String),
    /// The driver's storage layer failed (I/O error, corrupt block).
    /// Core itself never produces this; executors map their storage
    /// backend's errors into it so one error type spans a whole run.
    Storage(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::InvalidTarget(msg) => write!(f, "invalid target: {msg}"),
            CoreError::SampleOutOfDomain { candidate, group } => write!(
                f,
                "sample out of domain: candidate {candidate}, group {group}"
            ),
            CoreError::PhaseViolation(msg) => write!(f, "phase violation: {msg}"),
            CoreError::Storage(msg) => write!(f, "storage failure: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = CoreError::InvalidConfig("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
        let e = CoreError::SampleOutOfDomain {
            candidate: 3,
            group: 9,
        };
        assert!(e.to_string().contains("candidate 3"));
        assert!(e.to_string().contains("group 9"));
        let e = CoreError::InvalidTarget("empty".into());
        assert!(e.to_string().contains("empty"));
        let e = CoreError::PhaseViolation("done".into());
        assert!(e.to_string().contains("done"));
        let e = CoreError::Storage("corrupt page".into());
        assert!(e.to_string().contains("corrupt page"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CoreError::InvalidConfig("x".into()),
            CoreError::InvalidConfig("x".into())
        );
        assert_ne!(
            CoreError::InvalidConfig("x".into()),
            CoreError::InvalidTarget("x".into())
        );
    }
}
