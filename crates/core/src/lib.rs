//! # fastmatch-core
//!
//! A from-scratch Rust implementation of **HistSim**, the probabilistic
//! top-k histogram-matching algorithm from *"Adaptive Sampling for Rapidly
//! Matching Histograms"* (Macke, Zhang, Huang, Parameswaran — VLDB 2018).
//!
//! Given a *visual target* histogram `q` and a large family of *candidate*
//! histograms (one per value of a candidate attribute `Z`, each a vector of
//! per-group counts over a grouping attribute `X`), HistSim identifies the
//! `k` candidates whose **normalized** histograms are closest to `q` under
//! ℓ1 distance, by sampling tuples rather than scanning all data, while
//! enforcing two probabilistic guarantees (with probability `> 1 − δ`):
//!
//! * **Separation (Guarantee 1)** — any true top-k candidate of selectivity
//!   at least `σ` that is missing from the output is less than `ε` closer to
//!   the target than the furthest reported candidate;
//! * **Reconstruction (Guarantee 2)** — every reported histogram is within
//!   ℓ1 distance `ε` of its exact counterpart.
//!
//! The algorithm runs in three stages (paper §3.1):
//!
//! 1. **Prune rare candidates** with a hypergeometric underrepresentation
//!    test combined through a Holm–Bonferroni procedure ([`stats::hypergeometric`],
//!    [`stats::holm_bonferroni`]);
//! 2. **Identify the top-k** through rounds of fresh sampling and an
//!    all-or-nothing simultaneous hypothesis test built on the ℓ1 deviation
//!    bound of Theorem 1 ([`stats::deviation`], [`stats::simultaneous`]);
//! 3. **Reconstruct the top-k** by topping samples up to the Theorem 1
//!    sample-complexity bound.
//!
//! The implementation here is *sans-I/O*: [`histsim::HistSim`] is a state
//! machine that tells its driver what samples it needs (a [`histsim::Demand`])
//! and consumes whatever samples the driver provides. Storage, block
//! selection policies and threading live in the companion crates
//! `fastmatch-store` and `fastmatch-engine`; a simple in-memory driver for
//! tests and examples is provided in [`sampler`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distance;
pub mod error;
pub mod extensions;
pub mod guarantees;
pub mod histogram;
pub mod histsim;
pub mod sampler;
pub mod stats;
pub mod topk;

pub use distance::Metric;
pub use error::{CoreError, Result};
pub use histogram::Histogram;
pub use histsim::{
    Demand, HistAccumulator, HistSim, HistSimConfig, HistSimOutput, MatchedCandidate, PhaseKind,
};
pub use sampler::{MemorySampler, Sample};
