//! Small selection utilities used by HistSim: picking the k smallest
//! distances, and the Appendix A.2.3 adaptive choice of `k` from a range.

/// Returns the indices of the `k` smallest values among the eligible
/// entries, in ascending value order. Fewer than `k` eligible entries
/// returns all of them. Ties are broken by index for determinism.
pub fn k_smallest_indices(values: &[f64], k: usize, eligible: &[bool]) -> Vec<usize> {
    assert_eq!(values.len(), eligible.len());
    let mut idx: Vec<usize> = (0..values.len()).filter(|&i| eligible[i]).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("distances must not be NaN")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Appendix A.2.3: given a permitted range `[k_lo, k_hi]` for the number of
/// matches, chooses the `k` that maximizes the distance gap
/// `τ₍ₖ₊₁₎ − τ₍ₖ₎` between the k-th and (k+1)-th closest candidates, which
/// makes the stage-2 separation test as easy as possible.
///
/// `sorted_tau` must be ascending. When the range is degenerate or the
/// candidate list is too short, the choice is clamped sensibly.
pub fn choose_k_in_range(sorted_tau: &[f64], k_lo: usize, k_hi: usize) -> usize {
    assert!(k_lo >= 1 && k_lo <= k_hi, "need 1 ≤ k_lo ≤ k_hi");
    let n = sorted_tau.len();
    if n == 0 {
        return k_lo;
    }
    let hi = k_hi.min(n.saturating_sub(1)).max(k_lo.min(n));
    let lo = k_lo.min(hi);
    let mut best_k = lo;
    let mut best_gap = f64::NEG_INFINITY;
    for k in lo..=hi {
        if k >= n {
            // No (k+1)-th candidate: the gap is effectively infinite.
            return k;
        }
        let gap = sorted_tau[k] - sorted_tau[k - 1];
        if gap > best_gap {
            best_gap = gap;
            best_k = k;
        }
    }
    best_k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_smallest_in_order() {
        let v = [5.0, 1.0, 3.0, 2.0];
        let all = [true; 4];
        assert_eq!(k_smallest_indices(&v, 2, &all), vec![1, 3]);
        assert_eq!(k_smallest_indices(&v, 10, &all), vec![1, 3, 2, 0]);
    }

    #[test]
    fn respects_eligibility() {
        let v = [5.0, 1.0, 3.0, 2.0];
        let elig = [true, false, true, true];
        assert_eq!(k_smallest_indices(&v, 2, &elig), vec![3, 2]);
    }

    #[test]
    fn ties_break_by_index() {
        let v = [2.0, 1.0, 1.0, 1.0];
        let all = [true; 4];
        assert_eq!(k_smallest_indices(&v, 2, &all), vec![1, 2]);
    }

    #[test]
    fn empty_eligible_gives_empty() {
        let v = [1.0, 2.0];
        assert!(k_smallest_indices(&v, 1, &[false, false]).is_empty());
    }

    #[test]
    fn choose_k_maximizes_gap() {
        // gaps after k=5..7: τ has a big jump between the 7th and 8th entry
        let tau = [0.1, 0.12, 0.13, 0.14, 0.15, 0.16, 0.17, 0.9, 0.91, 0.92];
        assert_eq!(choose_k_in_range(&tau, 5, 10), 7);
    }

    #[test]
    fn choose_k_clamps_to_candidate_count() {
        let tau = [0.1, 0.2, 0.3];
        // asking for 5..10 matches with 3 candidates: return something ≤ 3
        let k = choose_k_in_range(&tau, 5, 10);
        assert!((1..=3).contains(&k), "k = {k}");
    }

    #[test]
    fn choose_k_degenerate_range() {
        let tau = [0.1, 0.5, 0.6];
        assert_eq!(choose_k_in_range(&tau, 2, 2), 2);
    }

    #[test]
    fn choose_k_empty_candidates() {
        assert_eq!(choose_k_in_range(&[], 3, 5), 3);
    }
}
