//! Histogram representation: raw per-group counts plus normalization.
//!
//! In the paper's terminology (Definition 1), a *candidate visualization* is
//! the vector of grouped counts `(r1, …, rn)` produced by a
//! histogram-generating query. Distances are always taken between
//! *normalized* histograms (Definition 2), so this module provides both the
//! raw-count representation and its normalization into a discrete
//! probability distribution.

use crate::error::{CoreError, Result};

/// A histogram of raw per-group counts.
///
/// The `i`-th entry is the number of tuples whose grouping attribute takes
/// the `i`-th value of `V_X`. Groups never observed simply stay zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an all-zero histogram with `groups` bins.
    pub fn zeros(groups: usize) -> Self {
        Histogram {
            counts: vec![0; groups],
        }
    }

    /// Wraps an existing count vector.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Histogram { counts }
    }

    /// Number of bins (`|V_X|`).
    pub fn groups(&self) -> usize {
        self.counts.len()
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total mass `1ᵀ r` — the number of samples that contributed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Records one observation of group `g`.
    pub fn record(&mut self, g: usize) {
        self.counts[g] += 1;
    }

    /// Adds another histogram bin-wise. Panics if bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
    }

    /// Normalizes into a probability vector `r̄ = r / 1ᵀr`.
    ///
    /// Returns an error for an empty histogram (zero total), whose
    /// normalization — and therefore whose distance to any target — is
    /// undefined.
    pub fn normalized(&self) -> Result<Vec<f64>> {
        let total = self.total();
        if total == 0 {
            return Err(CoreError::InvalidTarget(
                "cannot normalize a histogram with zero total count".into(),
            ));
        }
        let inv = 1.0 / total as f64;
        Ok(self.counts.iter().map(|&c| c as f64 * inv).collect())
    }

    /// Resets all bins to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

/// Normalizes an arbitrary non-negative weight vector into a probability
/// vector. Used for user-specified targets that are given as shapes rather
/// than counts (e.g. FLIGHTS-q3's explicit target in Table 3).
pub fn normalize_weights(weights: &[f64]) -> Result<Vec<f64>> {
    if weights.is_empty() {
        return Err(CoreError::InvalidTarget("empty target vector".into()));
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(CoreError::InvalidTarget(
            "target weights must be finite and non-negative".into(),
        ));
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(CoreError::InvalidTarget(
            "target weights must have positive total".into(),
        ));
    }
    Ok(weights.iter().map(|w| w / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_zero_total() {
        let h = Histogram::zeros(5);
        assert_eq!(h.groups(), 5);
        assert_eq!(h.total(), 0);
        assert!(h.normalized().is_err());
    }

    #[test]
    fn record_and_total() {
        let mut h = Histogram::zeros(3);
        h.record(0);
        h.record(2);
        h.record(2);
        assert_eq!(h.counts(), &[1, 0, 2]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn normalization_sums_to_one() {
        let h = Histogram::from_counts(vec![1, 3, 4]);
        let p = h.normalized().unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[0] - 0.125).abs() < 1e-12);
        assert!((p[1] - 0.375).abs() < 1e-12);
        assert!((p[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_is_scale_invariant() {
        // The motivation for normalization (paper Figure 3): two histograms
        // that differ only by a scale factor normalize identically.
        let a = Histogram::from_counts(vec![2, 4, 6]);
        let b = Histogram::from_counts(vec![200, 400, 600]);
        for (x, y) in a.normalized().unwrap().iter().zip(b.normalized().unwrap()) {
            assert!((x - y).abs() < 1e-15);
        }
    }

    #[test]
    fn merge_adds_binwise() {
        let mut a = Histogram::from_counts(vec![1, 2]);
        let b = Histogram::from_counts(vec![10, 20]);
        a.merge(&b);
        assert_eq!(a.counts(), &[11, 22]);
    }

    #[test]
    fn clear_resets_counts() {
        let mut a = Histogram::from_counts(vec![1, 2]);
        a.clear();
        assert_eq!(a.counts(), &[0, 0]);
        assert_eq!(a.groups(), 2);
    }

    #[test]
    fn normalize_weights_happy_path() {
        let p = normalize_weights(&[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(p, vec![0.25, 0.25, 0.5]);
    }

    #[test]
    fn normalize_weights_rejects_bad_input() {
        assert!(normalize_weights(&[]).is_err());
        assert!(normalize_weights(&[0.0, 0.0]).is_err());
        assert!(normalize_weights(&[1.0, -0.5]).is_err());
        assert!(normalize_weights(&[f64::NAN]).is_err());
        assert!(normalize_weights(&[f64::INFINITY]).is_err());
    }
}
