//! A reference in-memory driver for [`HistSim`].
//!
//! [`MemorySampler`] holds the full list of `(candidate, group)` tuples,
//! shuffles it once (the paper's "randomly permute upfront" preprocessing,
//! §4.2 Challenge 1) and then feeds HistSim by scanning the permutation —
//! a faithful miniature of the `ScanMatch` executor. It is used by unit and
//! property tests, examples, and anywhere the full storage engine would be
//! overkill.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::Result;
use crate::histsim::{HistSim, HistSimOutput, PhaseKind};

/// One sampled tuple: the candidate it belongs to (`Z` code) and its group
/// (`X` code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Candidate (dictionary code of the `Z` attribute value).
    pub candidate: u32,
    /// Group (dictionary code of the `X` attribute value).
    pub group: u32,
}

/// In-memory sampling driver: a shuffled tuple list consumed sequentially,
/// without replacement.
#[derive(Debug, Clone)]
pub struct MemorySampler {
    tuples: Vec<Sample>,
    /// Exact per-candidate tuple totals, used to mark candidates exact once
    /// fully consumed.
    totals: Vec<u64>,
    seen: Vec<u64>,
    pos: usize,
}

impl MemorySampler {
    /// Builds a sampler over the given tuples for a domain of
    /// `num_candidates` candidates, shuffling with the given seed.
    pub fn new(mut tuples: Vec<Sample>, num_candidates: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        tuples.shuffle(&mut rng);
        let mut totals = vec![0u64; num_candidates];
        for t in &tuples {
            totals[t.candidate as usize] += 1;
        }
        MemorySampler {
            tuples,
            totals,
            seen: vec![0; num_candidates],
            pos: 0,
        }
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the tuple list is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Exact tuple count for one candidate (ground truth; useful in tests).
    pub fn candidate_total(&self, c: u32) -> u64 {
        self.totals[c as usize]
    }

    /// Drives the given HistSim run to completion and returns its output.
    ///
    /// Tuples are consumed in permutation order across all stages, so no
    /// tuple is ever ingested twice. Candidates whose tuples are fully
    /// consumed are marked exact; if the whole permutation is consumed
    /// while demand is still open, HistSim is finished in exact mode.
    pub fn run(&mut self, hs: &mut HistSim) -> Result<HistSimOutput> {
        while !hs.is_done() {
            // I/O phase: feed tuples until the demand is met or we run dry.
            while !hs.io_satisfied() && self.pos < self.tuples.len() {
                let t = self.tuples[self.pos];
                self.pos += 1;
                hs.ingest(t.candidate, t.group);
                let c = t.candidate as usize;
                self.seen[c] += 1;
                if self.seen[c] == self.totals[c] {
                    hs.mark_exact(t.candidate);
                }
            }
            // In per-candidate phases, candidates that can never be
            // satisfied from the remaining data must be marked exact. In
            // this sequential driver that only happens at full exhaustion.
            let exhausted = !hs.io_satisfied() && self.pos >= self.tuples.len();
            if matches!(hs.phase(), PhaseKind::Done) {
                break;
            }
            hs.complete_io_phase(exhausted)?;
        }
        hs.output()
    }
}

/// Convenience: builds tuples from per-candidate histograms given as count
/// vectors (`hists[c][g]` tuples with candidate `c` and group `g`).
pub fn tuples_from_histograms(hists: &[Vec<u64>]) -> Vec<Sample> {
    let mut tuples = Vec::new();
    for (c, h) in hists.iter().enumerate() {
        for (g, &count) in h.iter().enumerate() {
            for _ in 0..count {
                tuples.push(Sample {
                    candidate: c as u32,
                    group: g as u32,
                });
            }
        }
    }
    tuples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histsim::HistSimConfig;

    fn run_once(
        hists: &[Vec<u64>],
        target: &[f64],
        cfg: HistSimConfig,
        seed: u64,
    ) -> HistSimOutput {
        let tuples = tuples_from_histograms(hists);
        let n = tuples.len() as u64;
        let groups = hists[0].len();
        let mut sampler = MemorySampler::new(tuples, hists.len(), seed);
        let mut hs = HistSim::new(cfg, hists.len(), groups, n, target).unwrap();
        sampler.run(&mut hs).unwrap()
    }

    #[test]
    fn tuples_from_histograms_counts() {
        let t = tuples_from_histograms(&[vec![2, 1], vec![0, 3]]);
        assert_eq!(t.len(), 6);
        assert_eq!(
            t.iter()
                .filter(|s| s.candidate == 0 && s.group == 0)
                .count(),
            2
        );
        assert_eq!(
            t.iter()
                .filter(|s| s.candidate == 1 && s.group == 1)
                .count(),
            3
        );
    }

    #[test]
    fn finds_the_obvious_match_small_data() {
        // Three candidates; candidate 1 matches the target exactly.
        let hists = vec![
            vec![90, 10, 0, 0],   // far
            vec![25, 25, 25, 25], // exact match to uniform target
            vec![0, 0, 50, 50],   // far
        ];
        let cfg = HistSimConfig {
            k: 1,
            epsilon: 0.3,
            delta: 0.05,
            sigma: 0.0,
            stage1_samples: 30,
            ..HistSimConfig::default()
        };
        let out = run_once(&hists, &[0.25; 4], cfg, 7);
        assert_eq!(out.candidate_ids(), vec![1]);
    }

    #[test]
    fn small_data_terminates_exactly() {
        // Demands exceed tiny data: every candidate ends up fully consumed
        // (marked exact), so the answer is decided from exact counts and
        // must equal the true top-k.
        let hists = vec![vec![10, 0], vec![6, 4], vec![5, 5]];
        let cfg = HistSimConfig {
            k: 1,
            epsilon: 0.01, // very tight: forces full consumption
            delta: 0.01,
            sigma: 0.0,
            stage1_samples: 10,
            ..HistSimConfig::default()
        };
        let out = run_once(&hists, &[0.5, 0.5], cfg, 3);
        assert_eq!(out.candidate_ids(), vec![2]);
        // Every sample of the table was ingested.
        assert_eq!(out.diagnostics.total_samples, 30);
    }

    #[test]
    fn larger_synthetic_run_identifies_topk() {
        // 20 candidates, 2 designed matches near the target, the rest far.
        let mut hists = Vec::new();
        for c in 0..20usize {
            let h = match c {
                3 => vec![500, 500, 500, 500], // exact uniform
                7 => vec![520, 480, 510, 490], // near uniform
                _ => {
                    // peaked on bin c % 4
                    let mut h = vec![50u64; 4];
                    h[c % 4] = 1850;
                    h
                }
            };
            hists.push(h);
        }
        let cfg = HistSimConfig {
            k: 2,
            epsilon: 0.15,
            delta: 0.05,
            sigma: 0.0,
            stage1_samples: 2_000,
            ..HistSimConfig::default()
        };
        let out = run_once(&hists, &[0.25; 4], cfg, 42);
        let mut ids = out.candidate_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 7]);
    }

    #[test]
    fn different_seeds_agree_on_clear_instances() {
        let mut hists = Vec::new();
        for c in 0..10usize {
            let h = if c == 4 {
                vec![300, 300, 300]
            } else {
                let mut h = vec![30u64; 3];
                h[c % 3] = 840;
                h
            };
            hists.push(h);
        }
        for seed in 0..5u64 {
            let cfg = HistSimConfig {
                k: 1,
                epsilon: 0.2,
                delta: 0.05,
                sigma: 0.0,
                stage1_samples: 500,
                ..HistSimConfig::default()
            };
            let out = run_once(&hists, &[1.0, 1.0, 1.0], cfg, seed);
            assert_eq!(out.candidate_ids(), vec![4], "seed {seed}");
        }
    }

    #[test]
    fn sigma_prunes_rare_candidates() {
        // Candidate 2 is a perfect match but holds a vanishing fraction of
        // the data; with a selectivity threshold it may be pruned, and the
        // output falls back to the best sufficiently-frequent candidate.
        let mut hists = vec![
            vec![30_000, 10_000], // common, skewed
            vec![22_000, 18_000], // common, mildly skewed
            vec![5, 5],           // rare, perfect match to uniform
        ];
        // pad with more skewed common candidates
        for _ in 0..5 {
            hists.push(vec![35_000, 5_000]);
        }
        let cfg = HistSimConfig {
            k: 1,
            epsilon: 0.1,
            delta: 0.05,
            sigma: 0.01,
            stage1_samples: 20_000,
            ..HistSimConfig::default()
        };
        let out = run_once(&hists, &[0.5, 0.5], cfg, 11);
        assert_eq!(out.candidate_ids(), vec![1]);
        assert!(out.diagnostics.pruned_candidates >= 1);
    }

    #[test]
    fn exhausted_sampler_is_still_correct() {
        let hists = vec![vec![3, 3], vec![4, 2]];
        let cfg = HistSimConfig {
            k: 1,
            epsilon: 0.001,
            delta: 0.01,
            sigma: 0.0,
            stage1_samples: 5,
            ..HistSimConfig::default()
        };
        let out = run_once(&hists, &[0.5, 0.5], cfg, 0);
        assert_eq!(out.candidate_ids(), vec![0]);
        assert_eq!(out.diagnostics.total_samples, 12);
    }

    #[test]
    fn stage1_exhaustion_reports_exact_finish() {
        // stage1_samples exceeds the table: the sampler runs dry inside
        // stage 1 and HistSim must finish via the exact path.
        let hists = vec![vec![3, 3], vec![4, 2]];
        let cfg = HistSimConfig {
            k: 1,
            epsilon: 0.5,
            delta: 0.01,
            sigma: 0.0,
            stage1_samples: 500,
            ..HistSimConfig::default()
        };
        let tuples = tuples_from_histograms(&hists);
        let mut sampler = MemorySampler::new(tuples, 2, 9);
        // Lie about the table size so the stage-1 goal (clamped to N)
        // stays above what the sampler can deliver.
        let mut hs = HistSim::new(cfg, 2, 2, 100, &[0.5, 0.5]).unwrap();
        let out = sampler.run(&mut hs).unwrap();
        assert!(out.diagnostics.exact_finish);
        assert_eq!(out.candidate_ids(), vec![0]);
    }
}
