//! Distance metrics between normalized histograms.
//!
//! The paper's primary metric (Definition 2) is the ℓ1 distance between
//! normalized count vectors, which corresponds to twice the total variation
//! distance between the underlying discrete distributions. ℓ2 and
//! KL-divergence are provided for the comparisons of §2.1 and Table 5.

/// The distance metric used to compare a candidate with the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// `‖p − q‖₁` over normalized vectors — the paper's default.
    L1,
    /// `‖p − q‖₂` over normalized vectors (used by SeeDB / Sample+Seek).
    L2,
    /// Total variation distance `½‖p − q‖₁`.
    TotalVariation,
    /// KL divergence `KL(p ‖ q)`; infinite whenever `q` places zero mass
    /// where `p` does not (the drawback §2.1 calls out).
    KlDivergence,
}

impl Metric {
    /// Evaluates the metric between two normalized vectors of equal length.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn eval(&self, p: &[f64], q: &[f64]) -> f64 {
        assert_eq!(p.len(), q.len(), "distance between unequal-length vectors");
        match self {
            Metric::L1 => l1(p, q),
            Metric::L2 => l2(p, q),
            Metric::TotalVariation => 0.5 * l1(p, q),
            Metric::KlDivergence => kl(p, q),
        }
    }

    /// The largest possible value of the metric over probability vectors,
    /// used to initialize "unknown" distances so unseen candidates sort last.
    pub fn upper_limit(&self) -> f64 {
        match self {
            Metric::L1 => 2.0,
            Metric::L2 => 2.0_f64.sqrt(),
            Metric::TotalVariation => 1.0,
            Metric::KlDivergence => f64::INFINITY,
        }
    }

    /// Human-readable short name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::L1 => "l1",
            Metric::L2 => "l2",
            Metric::TotalVariation => "tv",
            Metric::KlDivergence => "kl",
        }
    }
}

/// `‖p − q‖₁`.
pub fn l1(p: &[f64], q: &[f64]) -> f64 {
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum()
}

/// `‖p − q‖₂`.
pub fn l2(p: &[f64], q: &[f64]) -> f64 {
    p.iter()
        .zip(q)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// `KL(p ‖ q) = Σ pᵢ ln(pᵢ / qᵢ)`, with the conventions `0 ln(0/q) = 0`
/// and `p ln(p/0) = ∞` for `p > 0`.
pub fn kl(p: &[f64], q: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return f64::INFINITY;
        }
        acc += pi * (pi / qi).ln();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = [0.25, 0.25, 0.5];
        for m in [
            Metric::L1,
            Metric::L2,
            Metric::TotalVariation,
            Metric::KlDivergence,
        ] {
            assert!(m.eval(&p, &p).abs() < EPS, "{m:?}");
        }
    }

    #[test]
    fn l1_of_disjoint_support_is_two() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((l1(&p, &q) - 2.0).abs() < EPS);
        assert!((Metric::TotalVariation.eval(&p, &q) - 1.0).abs() < EPS);
    }

    #[test]
    fn l2_can_be_small_for_disjoint_support() {
        // §2.1's argument against ℓ2: spread mass over many bins with
        // disjoint support and ℓ2 shrinks while ℓ1 stays at 2.
        let n = 200;
        let mut p = vec![0.0; 2 * n];
        let mut q = vec![0.0; 2 * n];
        for i in 0..n {
            p[i] = 1.0 / n as f64;
            q[n + i] = 1.0 / n as f64;
        }
        assert!((l1(&p, &q) - 2.0).abs() < EPS);
        assert!(l2(&p, &q) < 0.2, "l2 = {}", l2(&p, &q));
    }

    #[test]
    fn kl_is_infinite_on_unmatched_support() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!(kl(&p, &q).is_infinite());
        // ...but not the other way around when p has the zero.
        assert!(kl(&q, &p).is_finite());
    }

    #[test]
    fn metrics_are_symmetric_except_kl() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.3, 0.3, 0.4];
        assert!((l1(&p, &q) - l1(&q, &p)).abs() < EPS);
        assert!((l2(&p, &q) - l2(&q, &p)).abs() < EPS);
        assert!((kl(&p, &q) - kl(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn triangle_inequality_l1() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.3, 0.3, 0.4];
        let r = [0.1, 0.8, 0.1];
        assert!(l1(&p, &r) <= l1(&p, &q) + l1(&q, &r) + EPS);
    }

    #[test]
    fn upper_limits_are_attained_or_bounding() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!(l1(&p, &q) <= Metric::L1.upper_limit() + EPS);
        assert!(l2(&p, &q) <= Metric::L2.upper_limit() + EPS);
        assert!(Metric::KlDivergence.upper_limit().is_infinite());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Metric::L1.name(), "l1");
        assert_eq!(Metric::L2.name(), "l2");
        assert_eq!(Metric::TotalVariation.name(), "tv");
        assert_eq!(Metric::KlDivergence.name(), "kl");
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn unequal_lengths_panic() {
        Metric::L1.eval(&[1.0], &[0.5, 0.5]);
    }
}
