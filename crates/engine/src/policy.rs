//! Block-selection policies (paper §4.2, Challenge 3).
//!
//! The *AnyActive* policy reads a block iff it contains at least one tuple
//! of an *active* candidate (one that still needs samples this round).
//! Two implementations mirror the paper's Algorithms 2 and 3:
//!
//! * [`any_active_naive`] — per block, probe each active candidate's
//!   bitmap until one hits (Algorithm 2). Correct but cache-hostile when
//!   `|V_Z|` is large: each probe pulls a cache line of a different
//!   bitmap row and uses one bit of it.
//! * [`mark_lookahead`] — per *window* of blocks, OR each active
//!   candidate's bitmap row into a mark array (Algorithm 3). Each cache
//!   line of the bitmap is consumed fully, which is what makes FastMatch's
//!   lookahead thread cheap.

use fastmatch_store::bitmap::BitmapIndex;

/// Algorithm 2: should block `b` be read, given the active candidates?
/// Probes candidates in order and stops at the first hit.
pub fn any_active_naive<'a>(
    bitmap: &BitmapIndex,
    active: impl IntoIterator<Item = &'a u32>,
    b: usize,
) -> bool {
    for &c in active {
        if bitmap.block_has(c, b) {
            return true;
        }
    }
    false
}

/// Algorithm 3: fills `marks[i] = true` iff block `start + i` contains at
/// least one active candidate. `marks` must be pre-cleared; entries beyond
/// the bitmap's block count are left untouched.
pub fn mark_lookahead<'a>(
    bitmap: &BitmapIndex,
    active: impl IntoIterator<Item = &'a u32>,
    start: usize,
    marks: &mut [bool],
) {
    for &c in active {
        bitmap.mark_active_range(c, start, marks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_store::block::BlockLayout;
    use fastmatch_store::schema::{AttrDef, Schema};
    use fastmatch_store::table::Table;

    /// 8 blocks of 4 rows; candidate c appears only in block c (c < 8).
    fn diagonal_table() -> (Table, BlockLayout) {
        let col: Vec<u32> = (0..32).map(|r| r / 4).collect();
        let schema = Schema::new(vec![AttrDef::new("z", 8)]);
        (Table::new(schema, vec![col]), BlockLayout::new(32, 4))
    }

    #[test]
    fn naive_finds_active_blocks() {
        let (t, l) = diagonal_table();
        let idx = fastmatch_store::bitmap::BitmapIndex::build(&t, 0, &l);
        let active = vec![2u32, 5];
        for b in 0..8 {
            let expect = b == 2 || b == 5;
            assert_eq!(any_active_naive(&idx, &active, b), expect, "block {b}");
        }
    }

    #[test]
    fn naive_with_no_active_reads_nothing() {
        let (t, l) = diagonal_table();
        let idx = fastmatch_store::bitmap::BitmapIndex::build(&t, 0, &l);
        for b in 0..8 {
            assert!(!any_active_naive(&idx, &[], b));
        }
    }

    #[test]
    fn lookahead_matches_naive() {
        let (t, l) = diagonal_table();
        let idx = fastmatch_store::bitmap::BitmapIndex::build(&t, 0, &l);
        let active = vec![1u32, 3, 6];
        let mut marks = vec![false; 8];
        mark_lookahead(&idx, &active, 0, &mut marks);
        for (b, &m) in marks.iter().enumerate() {
            assert_eq!(m, any_active_naive(&idx, &active, b), "block {b}");
        }
    }

    #[test]
    fn lookahead_window_offset() {
        let (t, l) = diagonal_table();
        let idx = fastmatch_store::bitmap::BitmapIndex::build(&t, 0, &l);
        let mut marks = vec![false; 3];
        mark_lookahead(&idx, &[4u32], 3, &mut marks);
        assert_eq!(marks, vec![false, true, false]); // block 4 at offset 1
    }
}
