//! Executor outputs: matches plus run statistics.

use std::time::Duration;

use fastmatch_core::histsim::HistSimOutput;
use fastmatch_store::io::IoStats;

/// Statistics of one executor run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Block/tuple accounting.
    pub io: IoStats,
    /// Stage-2 rounds HistSim executed.
    pub stage2_rounds: u32,
    /// Total samples ingested.
    pub samples: u64,
    /// Whether the run degenerated to an exact full pass.
    pub exact_finish: bool,
    /// Candidates pruned in stage 1.
    pub pruned: usize,
}

/// The result of running a query through an executor.
#[derive(Debug, Clone)]
pub struct MatchOutput {
    /// HistSim output (matches in ascending distance order).
    pub output: HistSimOutput,
    /// Run statistics.
    pub stats: RunStats,
}

impl MatchOutput {
    /// Candidate ids of the matches, closest first.
    pub fn candidate_ids(&self) -> Vec<u32> {
        self.output.candidate_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_core::histsim::Diagnostics;

    #[test]
    fn candidate_ids_passthrough() {
        let out = MatchOutput {
            output: HistSimOutput {
                matches: vec![],
                diagnostics: Diagnostics::default(),
            },
            stats: RunStats::default(),
        };
        assert!(out.candidate_ids().is_empty());
        assert_eq!(out.stats.io.blocks_read, 0);
    }
}
