//! A fully prepared query: table, layout, index, target and parameters.

use fastmatch_core::histsim::HistSimConfig;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::table::Table;

/// Everything an executor needs to run one top-k histogram-matching query.
///
/// The table is expected to be pre-shuffled (the store's permutation
/// preprocessing); the bitmap index must cover the candidate attribute
/// under the same layout.
#[derive(Debug)]
pub struct QueryJob<'a> {
    /// The (shuffled) data.
    pub table: &'a Table,
    /// Block granularity.
    pub layout: BlockLayout,
    /// Bitmap index over the candidate attribute.
    pub bitmap: &'a BitmapIndex,
    /// Candidate attribute (`Z`) index.
    pub z_attr: usize,
    /// Grouping attribute (`X`) index.
    pub x_attr: usize,
    /// Normalized visual target `q̄` (length `|V_X|`).
    pub target: Vec<f64>,
    /// HistSim parameters.
    pub cfg: HistSimConfig,
    /// Simulated extra latency per block read, in nanoseconds (0 = pure
    /// in-memory). Lets experiments model storage-bound systems where
    /// block fetch dominates — the regime the paper's 2012-era testbed
    /// sits closer to.
    pub block_latency_ns: u64,
}

impl<'a> QueryJob<'a> {
    /// Builds a job, validating that the layout and index agree with the
    /// table and that the target matches the grouping cardinality.
    pub fn new(
        table: &'a Table,
        layout: BlockLayout,
        bitmap: &'a BitmapIndex,
        z_attr: usize,
        x_attr: usize,
        target: Vec<f64>,
        cfg: HistSimConfig,
    ) -> Self {
        assert_eq!(layout.n_rows(), table.n_rows(), "layout/table mismatch");
        assert_eq!(
            bitmap.num_blocks(),
            layout.num_blocks(),
            "bitmap/layout mismatch"
        );
        assert_eq!(
            bitmap.num_values(),
            table.cardinality(z_attr) as usize,
            "bitmap must index the candidate attribute"
        );
        assert_eq!(
            target.len(),
            table.cardinality(x_attr) as usize,
            "target arity must equal |V_X|"
        );
        QueryJob {
            table,
            layout,
            bitmap,
            z_attr,
            x_attr,
            target,
            cfg,
            block_latency_ns: 0,
        }
    }

    /// Sets the simulated per-block read latency.
    pub fn with_block_latency_ns(mut self, ns: u64) -> Self {
        self.block_latency_ns = ns;
        self
    }

    /// Candidate cardinality `|V_Z|`.
    pub fn num_candidates(&self) -> usize {
        self.table.cardinality(self.z_attr) as usize
    }

    /// Grouping cardinality `|V_X|`.
    pub fn num_groups(&self) -> usize {
        self.table.cardinality(self.x_attr) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_store::schema::{AttrDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 3), AttrDef::new("x", 2)]);
        Table::new(schema, vec![vec![0, 1, 2, 0], vec![0, 1, 0, 1]])
    }

    #[test]
    fn job_construction_validates() {
        let t = table();
        let layout = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 0, &layout);
        let job = QueryJob::new(
            &t,
            layout,
            &idx,
            0,
            1,
            vec![0.5, 0.5],
            HistSimConfig::default(),
        );
        assert_eq!(job.num_candidates(), 3);
        assert_eq!(job.num_groups(), 2);
    }

    #[test]
    #[should_panic(expected = "target arity")]
    fn wrong_target_arity_panics() {
        let t = table();
        let layout = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 0, &layout);
        QueryJob::new(
            &t,
            layout,
            &idx,
            0,
            1,
            vec![0.5, 0.25, 0.25],
            HistSimConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "bitmap must index")]
    fn bitmap_attribute_mismatch_panics() {
        let t = table();
        let layout = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 1, &layout); // wrong attribute
        QueryJob::new(
            &t,
            layout,
            &idx,
            0,
            1,
            vec![0.5, 0.5],
            HistSimConfig::default(),
        );
    }
}
