//! A fully prepared query: storage source, layout, index, target and
//! parameters.

use std::sync::Arc;

use fastmatch_core::histsim::HistSimConfig;
use fastmatch_store::backend::StorageBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::io::BlockReader;
use fastmatch_store::live::Snapshot;
use fastmatch_store::table::Table;

/// Where a job's blocks come from: the in-memory table (seed regime),
/// any pluggable [`StorageBackend`] (e.g. the file-backed columnar
/// store), or a shared-ownership backend the job co-owns (live-table
/// snapshots handed to `'static` service tasks).
#[derive(Debug, Clone)]
enum Source<'a> {
    Mem(&'a Table),
    Backend(&'a dyn StorageBackend),
    Shared(Arc<dyn StorageBackend>),
}

/// The bitmap index a job consults: borrowed from the caller (the
/// classic path) or co-owned (snapshot queries, whose index lives inside
/// the snapshot the job shares). Derefs to [`BitmapIndex`], so policy
/// code is oblivious to the distinction.
#[derive(Debug, Clone)]
pub enum BitmapHandle<'a> {
    /// Caller-owned index.
    Borrowed(&'a BitmapIndex),
    /// Shared index (e.g. [`Snapshot::bitmap_arc`]).
    Shared(Arc<BitmapIndex>),
}

impl std::ops::Deref for BitmapHandle<'_> {
    type Target = BitmapIndex;

    fn deref(&self) -> &BitmapIndex {
        match self {
            BitmapHandle::Borrowed(b) => b,
            BitmapHandle::Shared(b) => b,
        }
    }
}

/// Everything an executor needs to run one top-k histogram-matching query.
///
/// The data is expected to be pre-shuffled (the store's permutation
/// preprocessing — applied before persisting, for file-backed sources);
/// the bitmap index must cover the candidate attribute under the same
/// layout.
#[derive(Debug)]
pub struct QueryJob<'a> {
    /// The (shuffled) data source.
    source: Source<'a>,
    /// Block granularity.
    pub layout: BlockLayout,
    /// Bitmap index over the candidate attribute.
    pub bitmap: BitmapHandle<'a>,
    /// Candidate attribute (`Z`) index.
    pub z_attr: usize,
    /// Grouping attribute (`X`) index.
    pub x_attr: usize,
    /// Normalized visual target `q̄` (length `|V_X|`).
    pub target: Vec<f64>,
    /// HistSim parameters.
    pub cfg: HistSimConfig,
    /// Simulated extra latency per block read, in nanoseconds (0 = no
    /// extra latency). Layered on top of whatever the source itself
    /// costs; lets experiments model storage-bound systems on in-memory
    /// data — the regime the paper's 2012-era testbed sits closer to.
    pub block_latency_ns: u64,
}

impl<'a> QueryJob<'a> {
    /// Builds a job over an in-memory table, validating that the layout
    /// and index agree with the table and that the target matches the
    /// grouping cardinality.
    pub fn new(
        table: &'a Table,
        layout: BlockLayout,
        bitmap: &'a BitmapIndex,
        z_attr: usize,
        x_attr: usize,
        target: Vec<f64>,
        cfg: HistSimConfig,
    ) -> Self {
        assert_eq!(layout.n_rows(), table.n_rows(), "layout/table mismatch");
        Self::with_source(
            Source::Mem(table),
            layout,
            BitmapHandle::Borrowed(bitmap),
            z_attr,
            x_attr,
            target,
            cfg,
        )
    }

    /// Builds a job over any storage backend (the layout is the one the
    /// data was stored under), with the same validations as
    /// [`Self::new`].
    pub fn from_backend(
        backend: &'a dyn StorageBackend,
        bitmap: &'a BitmapIndex,
        z_attr: usize,
        x_attr: usize,
        target: Vec<f64>,
        cfg: HistSimConfig,
    ) -> Self {
        Self::with_source(
            Source::Backend(backend),
            backend.layout(),
            BitmapHandle::Borrowed(bitmap),
            z_attr,
            x_attr,
            target,
            cfg,
        )
    }

    /// Builds a job over a live-table [`Snapshot`], using the exact
    /// bitmap index the snapshot froze at capture time — no external
    /// index to build or keep in sync. Same validations as
    /// [`Self::new`] (they hold by construction here).
    pub fn from_snapshot(
        snapshot: &'a Snapshot,
        z_attr: usize,
        x_attr: usize,
        target: Vec<f64>,
        cfg: HistSimConfig,
    ) -> Self {
        Self::with_source(
            Source::Backend(snapshot),
            snapshot.layout(),
            BitmapHandle::Borrowed(snapshot.bitmap(z_attr)),
            z_attr,
            x_attr,
            target,
            cfg,
        )
    }

    /// The co-owning form of [`Self::from_snapshot`]: the job holds the
    /// snapshot (and its bitmap) by `Arc`, so it is `'static` and can be
    /// handed to scheduler tasks that outlive the scope that took the
    /// snapshot — the admission path of
    /// [`crate::service::QueryService::submit_snapshot`].
    pub fn from_snapshot_shared(
        snapshot: Arc<Snapshot>,
        z_attr: usize,
        x_attr: usize,
        target: Vec<f64>,
        cfg: HistSimConfig,
    ) -> QueryJob<'static> {
        QueryJob::with_source(
            Source::Shared(Arc::clone(&snapshot) as Arc<dyn StorageBackend>),
            snapshot.layout(),
            BitmapHandle::Shared(snapshot.bitmap_arc(z_attr)),
            z_attr,
            x_attr,
            target,
            cfg,
        )
    }

    fn with_source(
        source: Source<'a>,
        layout: BlockLayout,
        bitmap: BitmapHandle<'a>,
        z_attr: usize,
        x_attr: usize,
        target: Vec<f64>,
        cfg: HistSimConfig,
    ) -> Self {
        let job = QueryJob {
            source,
            layout,
            bitmap,
            z_attr,
            x_attr,
            target,
            cfg,
            block_latency_ns: 0,
        };
        assert_eq!(
            job.bitmap.num_blocks(),
            layout.num_blocks(),
            "bitmap/layout mismatch"
        );
        assert_eq!(
            job.bitmap.num_values(),
            job.cardinality(z_attr) as usize,
            "bitmap must index the candidate attribute"
        );
        assert_eq!(
            job.target.len(),
            job.cardinality(x_attr) as usize,
            "target arity must equal |V_X|"
        );
        job
    }

    /// Sets the simulated per-block read latency.
    pub fn with_block_latency_ns(mut self, ns: u64) -> Self {
        self.block_latency_ns = ns;
        self
    }

    /// Number of rows in the data source.
    pub fn n_rows(&self) -> usize {
        self.layout.n_rows()
    }

    /// Cardinality of one attribute of the source.
    pub fn cardinality(&self, attr: usize) -> u32 {
        match &self.source {
            Source::Mem(table) => table.cardinality(attr),
            Source::Backend(backend) => backend.cardinality(attr),
            Source::Shared(backend) => backend.cardinality(attr),
        }
    }

    /// Candidate cardinality `|V_Z|`.
    pub fn num_candidates(&self) -> usize {
        self.cardinality(self.z_attr) as usize
    }

    /// Grouping cardinality `|V_X|`.
    pub fn num_groups(&self) -> usize {
        self.cardinality(self.x_attr) as usize
    }

    /// Forwards a demand-aware readahead hint to the underlying backend:
    /// the caller has *marked* every block of `blocks` for reading and
    /// will request them soon, so a caching backend (e.g. the file
    /// backend's readahead pool) may warm its cache ahead of the demand
    /// reads. A no-op for in-memory sources, and always advisory — see
    /// [`StorageBackend::prefetch`].
    #[inline]
    pub fn prefetch(&self, blocks: std::ops::Range<usize>) {
        match &self.source {
            Source::Mem(_) => {}
            Source::Backend(backend) => backend.prefetch(blocks),
            Source::Shared(backend) => backend.prefetch(blocks),
        }
    }

    /// A fresh block reader over the job's source, with the job's
    /// simulated latency applied. Executors obtain all their I/O through
    /// this, so they run unchanged over any storage regime.
    pub fn reader(&self) -> BlockReader<'a> {
        let reader = match &self.source {
            Source::Mem(table) => BlockReader::new(table, self.layout),
            Source::Backend(backend) => BlockReader::over_backend(*backend),
            Source::Shared(backend) => BlockReader::over_shared(Arc::clone(backend)),
        };
        reader.with_simulated_latency(self.block_latency_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_store::file::FileBackend;
    use fastmatch_store::schema::{AttrDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 3), AttrDef::new("x", 2)]);
        Table::new(schema, vec![vec![0, 1, 2, 0], vec![0, 1, 0, 1]])
    }

    #[test]
    fn job_construction_validates() {
        let t = table();
        let layout = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 0, &layout);
        let job = QueryJob::new(
            &t,
            layout,
            &idx,
            0,
            1,
            vec![0.5, 0.5],
            HistSimConfig::default(),
        );
        assert_eq!(job.num_candidates(), 3);
        assert_eq!(job.num_groups(), 2);
        assert_eq!(job.n_rows(), 4);
    }

    #[test]
    fn job_reader_serves_table_blocks() {
        let t = table();
        let layout = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 0, &layout);
        let job = QueryJob::new(
            &t,
            layout,
            &idx,
            0,
            1,
            vec![0.5, 0.5],
            HistSimConfig::default(),
        );
        let mut r = job.reader();
        let (zs, xs) = r.block_slices(1, 0, 1);
        assert_eq!(zs, &[2, 0]);
        assert_eq!(xs, &[0, 1]);
    }

    #[test]
    fn backend_job_mirrors_memory_job() {
        let t = table();
        let layout = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 0, &layout);
        // RAII guard: the block file is removed even if an assertion
        // below panics first.
        let scratch = fastmatch_store::tempfile::TempBlockFile::new("queryjob");
        let be = FileBackend::create(scratch.path(), &t, 2).unwrap();
        let job = QueryJob::from_backend(&be, &idx, 0, 1, vec![0.5, 0.5], HistSimConfig::default());
        assert_eq!(job.num_candidates(), 3);
        assert_eq!(job.num_groups(), 2);
        let mut r = job.reader();
        let (zs, xs) = r.block_slices(1, 0, 1);
        assert_eq!(zs, &[2, 0]);
        assert_eq!(xs, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "target arity")]
    fn wrong_target_arity_panics() {
        let t = table();
        let layout = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 0, &layout);
        QueryJob::new(
            &t,
            layout,
            &idx,
            0,
            1,
            vec![0.5, 0.25, 0.25],
            HistSimConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "bitmap must index")]
    fn bitmap_attribute_mismatch_panics() {
        let t = table();
        let layout = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 1, &layout); // wrong attribute
        QueryJob::new(
            &t,
            layout,
            &idx,
            0,
            1,
            vec![0.5, 0.5],
            HistSimConfig::default(),
        );
    }
}
