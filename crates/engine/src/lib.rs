//! # fastmatch-engine
//!
//! The FastMatch system (paper §4): executors that drive the HistSim
//! state machine over the block storage substrate.
//!
//! Five executors extend the paper's §5.2 comparison lineup; each differs
//! from the next in exactly one mechanism, so comparing adjacent pairs
//! isolates one design decision:
//!
//! * [`exec::ScanExec`] — exact full scan (no approximation);
//! * [`exec::ScanMatchExec`] — HistSim termination, sequential blocks, no
//!   skipping (adds *approximation*);
//! * [`exec::SyncMatchExec`] — AnyActive block selection applied
//!   synchronously per block, Algorithm 2 style (adds *block skipping*);
//! * [`exec::FastMatchExec`] — AnyActive with asynchronous, cache-conscious
//!   lookahead on a separate sampling-engine thread, Algorithm 3 style
//!   (adds *decoupled lookahead*);
//! * [`exec::ParallelMatchExec`] — shard-parallel ingestion: N workers
//!   fill phase-free [`HistAccumulator`](fastmatch_core::histsim::HistAccumulator)
//!   batches from disjoint block ranges, merged into the authoritative
//!   state machine by the statistics thread (adds *multi-core
//!   ingestion*).
//!
//! All approximate executors provide the same Guarantee 1/2 semantics; they
//! differ only in how fast they reach HistSim's termination conditions.
//!
//! On top of the single-query executors, [`service::QueryService`] serves
//! **many queries concurrently** over one shared storage backend: a
//! bounded worker pool multiplexes (query, shard) ingestion quanta, with
//! per-query progressive results, cooperative cancellation, deadlines and
//! attributed I/O — see the [`service`] module docs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exec;
pub mod policy;
pub mod progress;
pub mod query;
pub mod result;
pub mod service;
pub mod shared;

pub use exec::{
    Executor, FastMatchExec, ParallelMatchExec, ScanExec, ScanMatchExec, SyncMatchExec,
};
pub use query::QueryJob;
pub use result::{MatchOutput, RunStats};
pub use service::{
    GuaranteeState, QueryHandle, QueryOutcome, QueryProgress, QueryRequest, QueryService,
    ServiceConfig, ServiceError, SnapshotRequest,
};
