//! The exact `Scan` baseline (paper §5.2).
//!
//! A single heap scan over every block: exact candidate histograms, exact
//! selectivity pruning at σ, exact top-k. Trivially satisfies both
//! guarantees; its latency is the denominator of every speedup the
//! evaluation reports.

use std::time::Instant;

use fastmatch_core::error::Result;
use fastmatch_core::histogram::Histogram;
use fastmatch_core::histsim::{Diagnostics, HistSimOutput, MatchedCandidate};
use fastmatch_core::topk::k_smallest_indices;

use crate::exec::{storage_err, Executor};
use crate::query::QueryJob;
use crate::result::{MatchOutput, RunStats};

/// Exact full-scan executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanExec;

impl Executor for ScanExec {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn run(&self, job: &QueryJob<'_>, _seed: u64) -> Result<MatchOutput> {
        let t0 = Instant::now();
        let vz = job.num_candidates();
        let vx = job.num_groups();
        let mut counts = vec![0u64; vz * vx];
        let mut totals = vec![0u64; vz];
        let mut reader = job.reader();
        for b in 0..job.layout.num_blocks() {
            let (zs, xs) = reader
                .try_block_slices(b, job.z_attr, job.x_attr)
                .map_err(storage_err)?;
            for (&zc, &xc) in zs.iter().zip(xs) {
                counts[zc as usize * vx + xc as usize] += 1;
                totals[zc as usize] += 1;
            }
        }

        let n = job.n_rows() as f64;
        let sigma_threshold = job.cfg.sigma * n;
        let metric = job.cfg.metric;
        let mut tau = vec![f64::MAX; vz];
        let mut eligible = vec![false; vz];
        for c in 0..vz {
            if (totals[c] as f64) < sigma_threshold || totals[c] == 0 {
                continue;
            }
            eligible[c] = true;
            let inv = 1.0 / totals[c] as f64;
            let p: Vec<f64> = counts[c * vx..(c + 1) * vx]
                .iter()
                .map(|&v| v as f64 * inv)
                .collect();
            tau[c] = metric.eval(&p, &job.target);
        }
        let pruned = eligible.iter().filter(|&&e| !e).count();
        let top = k_smallest_indices(&tau, job.cfg.k, &eligible);
        let matches: Vec<MatchedCandidate> = top
            .into_iter()
            .map(|c| MatchedCandidate {
                candidate: c as u32,
                distance: tau[c],
                histogram: Histogram::from_counts(counts[c * vx..(c + 1) * vx].to_vec()),
                samples: totals[c],
            })
            .collect();

        let samples = job.n_rows() as u64;
        let output = HistSimOutput {
            matches,
            diagnostics: Diagnostics {
                stage1_samples_taken: 0,
                pruned_candidates: pruned,
                stage2_rounds: 0,
                total_samples: samples,
                exact_finish: true,
                unseen_mass_rare: None,
                effective_k: job.cfg.k,
            },
        };
        let stats = RunStats {
            wall: t0.elapsed(),
            io: reader.stats(),
            stage2_rounds: 0,
            samples,
            exact_finish: true,
            pruned,
        };
        Ok(MatchOutput { output, stats })
    }
}
