//! `FastMatch`: AnyActive block selection with asynchronous,
//! cache-conscious lookahead (paper §4).
//!
//! Two threads, mirroring Figure 6:
//!
//! * the **sampling engine** (lookahead thread) walks the block sequence in
//!   windows of `lookahead` blocks, marking each window for reading or
//!   skipping with Algorithm 3 (one pass over each active candidate's
//!   bitmap row per window), and streams read decisions through a bounded
//!   channel;
//! * the **I/O manager + statistics engine** (caller thread) consumes the
//!   marked blocks, ingests tuples into HistSim, advances its stages, and
//!   publishes fresh per-candidate demand through [`SharedDemand`].
//!
//! The channel's capacity equals the lookahead amount, so block selection
//! runs at most one window ahead of I/O — exactly the freshness/decoupling
//! trade-off of §4.2 Challenge 4. Active states seen by the sampling
//! engine may be slightly stale; correctness is unaffected (stale reads
//! only deliver extra valid samples), only efficiency is at stake.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use fastmatch_core::error::{CoreError, Result};
use fastmatch_store::io::IoStats;

use crate::exec::driver::Driver;
use crate::exec::{start_block, storage_err, Executor};
use crate::policy::mark_lookahead;
use crate::query::QueryJob;
use crate::result::MatchOutput;
use crate::shared::{DemandMode, SharedDemand};

/// Default lookahead window (paper default, §5.2).
pub const DEFAULT_LOOKAHEAD: usize = 1024;

/// How often (in blocks read) the I/O thread republishes per-candidate
/// demand. Staleness of a few blocks is negligible next to the lookahead
/// window itself.
const PUBLISH_EVERY: u64 = 16;

/// The full FastMatch executor.
#[derive(Debug, Clone, Copy)]
pub struct FastMatchExec {
    /// Lookahead window in blocks.
    pub lookahead: usize,
}

impl Default for FastMatchExec {
    fn default() -> Self {
        FastMatchExec {
            lookahead: DEFAULT_LOOKAHEAD,
        }
    }
}

impl FastMatchExec {
    /// Creates the executor with a custom lookahead window.
    pub fn with_lookahead(lookahead: usize) -> Self {
        assert!(lookahead > 0, "lookahead must be positive");
        FastMatchExec { lookahead }
    }
}

/// Messages from the sampling engine to the I/O manager — one batch per
/// marked lookahead window, so channel traffic (and any backpressure
/// parking) is amortized over the whole window.
enum Msg {
    /// One window's decisions: contiguous `(start, len)` runs of blocks to
    /// read, plus the number of blocks the window skipped.
    Batch {
        /// Contiguous block runs to read, in scan order.
        runs: Vec<(u32, u32)>,
        /// Blocks skipped by AnyActive in this window.
        skipped: u32,
    },
    /// A full pass over the block sequence finished.
    PassEnd,
    /// Every block has been marked for reading at some point: the table is
    /// fully consumed once the channel drains.
    Exhausted,
}

impl Executor for FastMatchExec {
    fn name(&self) -> &'static str {
        "FastMatch"
    }

    fn run(&self, job: &QueryJob<'_>, seed: u64) -> Result<MatchOutput> {
        let mut d = Driver::new(job)?;

        let nb = job.layout.num_blocks();
        let start = start_block(nb, seed);
        let shared = Arc::new(SharedDemand::new(job.num_candidates()));
        shared.set_mode(DemandMode::ReadAll); // stage 1

        // One message per lookahead window; capacity 2 keeps the sampling
        // engine at most two windows ahead of I/O (§4.2 Challenge 4's
        // freshness bound).
        let (tx, rx) = sync_channel::<Msg>(2);
        let lookahead = self.lookahead;
        let shared_for_marker = Arc::clone(&shared);

        let mut result: Option<Result<IoStats>> = None;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                sampling_engine(job, &shared_for_marker, tx, nb, start, lookahead);
            });
            let r = io_and_stats_loop(job, &mut d, &shared, rx);
            shared.set_mode(DemandMode::Stop);
            result = Some(r);
        });
        result.expect("scope completed").and_then(|io| d.finish(io))
    }
}

/// The lookahead thread: Algorithm 3 over windows, multi-pass with a
/// visited set so skipped blocks stay eligible for later rounds.
///
/// This is also where the lookahead decisions start paying twice: each
/// window's read-runs are forwarded to the backend's prefetcher *before*
/// the window is shipped to the I/O manager, so by the time the consumer
/// reaches a run its pages are (ideally) already warm — selection runs
/// ahead of I/O, and I/O runs ahead of ingestion. Skipped blocks are
/// never hinted (demand-aware readahead).
fn sampling_engine(
    job: &QueryJob<'_>,
    shared: &SharedDemand,
    tx: SyncSender<Msg>,
    nb: usize,
    start: usize,
    lookahead: usize,
) {
    let bitmap = &job.bitmap;
    let mut visited = vec![false; nb];
    let mut visited_count = 0usize;
    let mut marks = vec![false; lookahead];
    'outer: loop {
        if shared.mode() == DemandMode::Stop {
            break;
        }
        let pass_epoch = shared.epoch();
        let mut sent_this_pass = false;
        let mut off = 0usize;
        while off < nb {
            let mode = shared.mode();
            if mode == DemandMode::Stop {
                break 'outer;
            }
            let win = lookahead.min(nb - off);
            match mode {
                DemandMode::Stop => break 'outer,
                DemandMode::ReadAll => marks[..win].iter_mut().for_each(|m| *m = true),
                DemandMode::AnyActive => {
                    marks[..win].iter_mut().for_each(|m| *m = false);
                    let active = shared.active_candidates();
                    // The window's offsets map to at most two contiguous
                    // block ranges (wrap at nb).
                    let s0 = (start + off) % nb;
                    let first_len = win.min(nb - s0);
                    mark_lookahead(bitmap, &active, s0, &mut marks[..first_len]);
                    if first_len < win {
                        mark_lookahead(bitmap, &active, 0, &mut marks[first_len..win]);
                    }
                }
            }
            // Collect the window's decisions as maximal contiguous runs
            // and ship them as a single message.
            let mut skipped = 0u32;
            let mut runs: Vec<(u32, u32)> = Vec::new();
            let mut run_start = 0usize;
            let mut run_len = 0u32;
            for (i, &marked) in marks[..win].iter().enumerate() {
                let b = (start + off + i) % nb;
                if !visited[b] && marked {
                    visited[b] = true;
                    visited_count += 1;
                    sent_this_pass = true;
                    if run_len > 0 && b == run_start + run_len as usize {
                        run_len += 1;
                    } else {
                        if run_len > 0 {
                            runs.push((run_start as u32, run_len));
                        }
                        run_start = b;
                        run_len = 1;
                    }
                } else if !visited[b] {
                    skipped += 1;
                }
            }
            if run_len > 0 {
                runs.push((run_start as u32, run_len));
            }
            // Warm the cache for exactly the blocks this window decided
            // to read, before handing the window to the I/O manager.
            for &(s, l) in &runs {
                job.prefetch(s as usize..s as usize + l as usize);
            }
            if (!runs.is_empty() || skipped > 0) && tx.send(Msg::Batch { runs, skipped }).is_err() {
                break 'outer;
            }
            off += win;
        }
        if visited_count == nb {
            let _ = tx.send(Msg::Exhausted);
            break;
        }
        if tx.send(Msg::PassEnd).is_err() {
            break;
        }
        if !sent_this_pass {
            // Nothing readable under the demand snapshot this pass saw:
            // re-marking the whole sequence with identical demand would be
            // wasted work, so wait for the statistics engine to publish a
            // new epoch (or stop).
            while shared.epoch() == pass_epoch && shared.mode() != DemandMode::Stop {
                std::thread::sleep(Duration::from_micros(20));
            }
        }
    }
}

/// The I/O manager + statistics engine on the caller thread. Returns the
/// run's I/O accounting; the caller packages it via [`Driver::finish`].
fn io_and_stats_loop(
    job: &QueryJob<'_>,
    d: &mut Driver,
    shared: &SharedDemand,
    rx: Receiver<Msg>,
) -> Result<IoStats> {
    let mut reader = job.reader();
    let mut reads_since_publish = 0u64;
    let mut had_read_since_pass_end = true;
    let mut idle_passes = 0u32;

    // The initial phase may already be satisfied (degenerate configs).
    d.advance_and_publish(shared)?;

    while !d.hs.is_done() {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => {
                return Err(CoreError::PhaseViolation(
                    "sampling engine terminated early".into(),
                ))
            }
        };
        match msg {
            Msg::Batch { runs, skipped } => {
                reader.skip_blocks(skipped as u64);
                for (start, len) in runs {
                    had_read_since_pass_end = true;
                    for b in start..start + len {
                        if d.hs.is_done() {
                            break;
                        }
                        let (zs, xs) = reader
                            .try_block_slices(b as usize, job.z_attr, job.x_attr)
                            .map_err(storage_err)?;
                        d.ingest_block(b as usize, zs, xs);
                        reads_since_publish += 1;
                        if d.hs.io_satisfied() || reads_since_publish >= PUBLISH_EVERY {
                            d.advance_and_publish(shared)?;
                            reads_since_publish = 0;
                        }
                    }
                }
            }
            Msg::PassEnd => {
                d.advance_and_publish(shared)?;
                if had_read_since_pass_end {
                    idle_passes = 0;
                } else {
                    // Several idle passes in a row can be legitimate: the
                    // sampling engine may queue PassEnd messages faster
                    // than fresh demand propagates to it. Only a long
                    // sustained streak (the engine sleeps 100µs per idle
                    // pass) indicates a genuine bug.
                    idle_passes += 1;
                    if idle_passes >= 1000 && !d.hs.is_done() {
                        return Err(CoreError::PhaseViolation(
                            "no readable blocks for outstanding demand".into(),
                        ));
                    }
                }
                had_read_since_pass_end = false;
            }
            Msg::Exhausted => {
                d.advance_and_publish(shared)?;
                d.finish_exhausted()?;
            }
        }
    }
    shared.set_mode(DemandMode::Stop);
    drop(rx); // unblock the sampling engine

    Ok(reader.stats())
}
