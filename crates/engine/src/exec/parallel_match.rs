//! `ParallelMatch`: shard-parallel ingestion over mergeable accumulators.
//!
//! FastMatch (paper §4) decouples *block selection* from the statistics
//! engine but still funnels every tuple through one ingesting core.
//! `ParallelMatch` removes that ceiling by splitting ingestion itself:
//!
//! * `N` **shard workers** each own a disjoint contiguous block range
//!   (a [`ShardedBlockReader`]), walk it in lookahead windows applying the
//!   same AnyActive marking as FastMatch's sampling engine (Algorithm 3),
//!   and fold the tuples of read blocks into phase-free
//!   [`HistAccumulator`] deltas — no locks, no shared mutable state;
//! * the **statistics engine** (caller thread) receives accumulator
//!   batches over a bounded channel, merges them into the authoritative
//!   [`HistSim`](fastmatch_core::histsim::HistSim) via the shared
//!   [`Driver`], advances phases, and publishes fresh per-candidate demand
//!   through [`SharedDemand`] — the same phase/demand protocol every other
//!   executor honors.
//!
//! Workers see demand snapshots that may be slightly stale, exactly like
//! FastMatch's lookahead thread: stale reads only deliver extra valid
//! samples (the table is pre-permuted, so any block set is a uniform
//! without-replacement sample), trading a bounded amount of over-reading
//! for never stalling any core. Each worker multi-passes its shard so
//! blocks skipped under one round's demand stay eligible for later
//! rounds; a worker whose shard is fully consumed reports exhaustion and
//! exits. When every shard is exhausted the table has been fully
//! consumed and the run finishes with exact results.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use fastmatch_core::error::{CoreError, Result};
use fastmatch_core::histsim::HistAccumulator;
use fastmatch_store::io::{IoStats, ShardedBlockReader};

use crate::exec::driver::{BlockTouch, Driver};
use crate::exec::Executor;
use crate::policy::mark_lookahead;
use crate::query::QueryJob;
use crate::result::MatchOutput;
use crate::shared::{DemandMode, SharedDemand};

/// Default number of shard workers: the machine's parallelism, capped —
/// beyond a handful of cores the statistics engine's merge becomes the
/// bottleneck before ingestion does.
pub const DEFAULT_SHARDS: usize = 4;

/// Blocks accumulated per batch message. Larger batches amortize channel
/// and merge overhead; smaller ones bound demand staleness and stage
/// overshoot. 32 blocks ≈ 4800 tuples at the paper's block size.
pub const DEFAULT_BATCH_BLOCKS: usize = 32;

/// Lookahead window used for AnyActive marking inside each shard.
const MARK_WINDOW: usize = 256;

/// The shard-parallel executor.
#[derive(Debug, Clone, Copy)]
pub struct ParallelMatchExec {
    /// Number of shard workers (and block-range shards).
    pub shards: usize,
    /// Blocks per accumulator batch.
    pub batch_blocks: usize,
}

impl Default for ParallelMatchExec {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(DEFAULT_SHARDS);
        ParallelMatchExec {
            shards: cores.clamp(1, 8),
            batch_blocks: DEFAULT_BATCH_BLOCKS,
        }
    }
}

impl ParallelMatchExec {
    /// Creates the executor with a fixed shard count.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ParallelMatchExec {
            shards,
            batch_blocks: DEFAULT_BATCH_BLOCKS,
        }
    }

    /// Sets the number of blocks per accumulator batch.
    ///
    /// # Panics
    /// Panics if `batch_blocks` is zero.
    pub fn with_batch_blocks(mut self, batch_blocks: usize) -> Self {
        assert!(batch_blocks > 0, "batch size must be positive");
        self.batch_blocks = batch_blocks;
        self
    }
}

/// One message from a shard worker to the statistics engine. Idle and
/// exit messages carry the worker's index so the statistics engine can
/// track exactly which workers are parked versus gone — counting
/// anonymous messages is not enough (see `stats_loop`).
enum Msg {
    /// A batch of accumulated deltas plus the per-block distinct-candidate
    /// lists (for consumption tracking).
    Batch {
        /// Phase-free count deltas of every block in `blocks`.
        acc: HistAccumulator,
        /// Distinct candidates per read block, in read order.
        blocks: Vec<BlockTouch>,
    },
    /// Worker `.0` finished a full pass over its shard without reading a
    /// single block and is parking until demand changes.
    IdlePass(usize),
    /// Worker `.0`'s shard is fully consumed (or was empty); it has
    /// exited.
    ShardExhausted(usize),
    /// A worker hit a storage failure (I/O error, corrupt page) and has
    /// exited; the run must fail with this error.
    Failed(CoreError),
}

impl Executor for ParallelMatchExec {
    fn name(&self) -> &'static str {
        "ParallelMatch"
    }

    fn run(&self, job: &QueryJob<'_>, seed: u64) -> Result<MatchOutput> {
        let mut d = Driver::new(job)?;
        let nb = job.layout.num_blocks();
        // Never spawn more workers than blocks: the extra shards would be
        // empty. (An empty shard is still handled gracefully by
        // `shard_worker` — it reports exhaustion and exits immediately —
        // but correctness should not depend on this clamp alone.)
        let shards = self.shards.min(nb).max(1);
        let batch_blocks = self.batch_blocks;

        let shared = Arc::new(SharedDemand::new(job.num_candidates()));
        shared.set_mode(DemandMode::ReadAll); // stage 1

        // Bounded to 2 in-flight batches per worker: backpressure keeps
        // workers from racing arbitrarily far ahead of the merge.
        let (tx, rx) = sync_channel::<Msg>(2 * shards);
        let reader = job.reader();

        let mut result: Option<Result<()>> = None;
        let mut io = IoStats::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|w| {
                    let shard_reader = reader.shard(w, shards);
                    // Seed-derived start offset within the shard: repeated
                    // runs draw different samples, mirroring the random
                    // scan start of the sequential executors.
                    let start = crate::exec::start_block(
                        shard_reader.num_blocks(),
                        seed.wrapping_add(w as u64).wrapping_mul(0x9e37_79b9),
                    );
                    let tx = tx.clone();
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        shard_worker(job, w, shard_reader, &shared, tx, batch_blocks, start)
                    })
                })
                .collect();
            drop(tx); // the statistics engine holds only the receiver
            let r = stats_loop(&mut d, &shared, rx, shards);
            shared.set_mode(DemandMode::Stop);
            // Workers are unblocked (receiver dropped, mode = Stop): join
            // them and aggregate the per-shard I/O accounting, wasted
            // reads included — the same accounting basis as FastMatch.
            io = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .sum();
            result = Some(r);
        });
        result.expect("scope completed")?;
        d.finish(io)
    }
}

/// One shard worker: multi-pass AnyActive walk over its block range
/// (rotated by `start` so the seed varies the sample), producing
/// accumulator batches. Returns the shard's I/O accounting.
///
/// KEEP IN SYNC with `run_quantum` in `service/mod.rs`, which runs the
/// same walk in resumable bounded quanta for the multi-query service —
/// a behavioral fix to demand marking or pass bookkeeping here almost
/// certainly applies there too.
///
/// An **empty** shard (possible when a caller shards a reader more ways
/// than there are blocks) reports exhaustion and exits immediately — it
/// must never park waiting for an epoch, because with nothing to read no
/// demand change could ever release it.
fn shard_worker(
    job: &QueryJob<'_>,
    w: usize,
    mut reader: ShardedBlockReader<'_>,
    shared: &SharedDemand,
    tx: SyncSender<Msg>,
    batch_blocks: usize,
    start: usize,
) -> IoStats {
    let range = reader.blocks();
    let lo = range.start;
    let n_local = range.len();
    if n_local == 0 {
        let _ = tx.send(Msg::ShardExhausted(w));
        return reader.stats();
    }
    let nc = job.num_candidates();
    let ng = job.num_groups();
    let mut visited = vec![false; n_local];
    let mut visited_count = 0usize;
    let mut marks = vec![false; MARK_WINDOW];

    let mut acc = HistAccumulator::new(nc, ng);
    // Per-block delta buffer: its touched list after accumulating one
    // block *is* that block's distinct-candidate set (for consumption
    // tracking), so the tuples are traversed exactly once — no more
    // sort-and-dedup second pass.
    let mut block_acc = HistAccumulator::new(nc, ng);
    let mut blocks: Vec<BlockTouch> = Vec::new();

    // A pass walks the shard from its rotated start as two contiguous
    // segments (local offsets), so window marking never wraps.
    let start = start % n_local;
    let segments = [(start, n_local - start), (0, start)];

    'outer: loop {
        let pass_epoch = shared.epoch();
        let mut read_this_pass = false;
        for &(seg_start, seg_len) in &segments {
            let mut off = 0usize;
            while off < seg_len {
                let mode = shared.mode();
                let win = MARK_WINDOW.min(seg_len - off);
                let seg_off = seg_start + off;
                match mode {
                    DemandMode::Stop => break 'outer,
                    DemandMode::ReadAll => marks[..win].fill(true),
                    DemandMode::AnyActive => {
                        marks[..win].fill(false);
                        let active = shared.active_candidates();
                        mark_lookahead(&job.bitmap, &active, lo + seg_off, &mut marks[..win]);
                    }
                }
                // Hint this window's read-runs to the backend's
                // prefetcher before ingesting it: the readahead workers
                // warm the window's later blocks while this worker
                // accumulates the earlier ones.
                crate::exec::prefetch_marked(job, lo, seg_off, &marks[..win], &visited);
                // Unvisited-unmarked blocks are skipped in maximal
                // contiguous runs through the range-validated bulk API.
                let mut skip_from: Option<usize> = None;
                for (i, &marked) in marks[..win].iter().enumerate() {
                    let li = seg_off + i;
                    if visited[li] || marked {
                        if let Some(s) = skip_from.take() {
                            reader.skip_blocks(lo + s..lo + li);
                        }
                    }
                    if visited[li] {
                        continue;
                    }
                    let b = lo + li;
                    if marked {
                        visited[li] = true;
                        visited_count += 1;
                        read_this_pass = true;
                        // A storage failure (I/O error, corrupt page) ends
                        // the worker and fails the whole run through the
                        // statistics engine — same error contract as the
                        // sequential executors, no panic.
                        let (zs, xs) = match reader.try_block_slices(b, job.z_attr, job.x_attr) {
                            Ok(pair) => pair,
                            Err(e) => {
                                let _ = tx.send(Msg::Failed(crate::exec::storage_err(e)));
                                break 'outer;
                            }
                        };
                        block_acc.accumulate(zs, xs);
                        blocks.push(BlockTouch {
                            id: b as u32,
                            candidates: block_acc.touched().to_vec(),
                        });
                        acc.merge_from(&block_acc);
                        block_acc.clear();
                        if blocks.len() >= batch_blocks {
                            let msg = Msg::Batch {
                                acc: std::mem::replace(&mut acc, HistAccumulator::new(nc, ng)),
                                blocks: std::mem::take(&mut blocks),
                            };
                            if tx.send(msg).is_err() {
                                break 'outer;
                            }
                        }
                    } else if skip_from.is_none() {
                        skip_from = Some(li);
                    }
                }
                if let Some(s) = skip_from.take() {
                    reader.skip_blocks(lo + s..lo + seg_off + win);
                }
                off += win;
            }
        }
        // Flush the pass's partial batch so the statistics engine always
        // sees completed passes promptly.
        if !acc.is_empty() {
            let msg = Msg::Batch {
                acc: std::mem::replace(&mut acc, HistAccumulator::new(nc, ng)),
                blocks: std::mem::take(&mut blocks),
            };
            if tx.send(msg).is_err() {
                break;
            }
        }
        if visited_count == n_local {
            let _ = tx.send(Msg::ShardExhausted(w));
            break;
        }
        if !read_this_pass {
            // Nothing readable under the demand snapshot this pass saw:
            // tell the statistics engine (its stuck-detection valve) and
            // wait for a new epoch (or stop) instead of re-marking
            // identical state.
            if tx.send(Msg::IdlePass(w)).is_err() {
                break;
            }
            while shared.epoch() == pass_epoch && shared.mode() != DemandMode::Stop {
                std::thread::sleep(Duration::from_micros(20));
            }
        }
    }
    reader.stats()
}

/// The statistics engine: merges worker batches into the state machine and
/// republishes demand. I/O accounting lives in the per-shard readers and
/// is aggregated by the caller after joining the workers.
fn stats_loop(
    d: &mut Driver,
    shared: &SharedDemand,
    rx: Receiver<Msg>,
    shards: usize,
) -> Result<()> {
    // Per-worker liveness: which workers have exited (shard consumed or
    // empty) and which are currently parked after an idle pass. Both are
    // tracked by worker id — an anonymous tally would go stale the moment
    // a worker exits, which is exactly how the old accounting could
    // deadlock: with the last live workers already parked, a late
    // `ShardExhausted` shrank the live count without re-running the
    // all-parked check, so nobody ever bumped the epoch again.
    let mut exhausted = vec![false; shards];
    let mut idle = vec![false; shards];
    // Stuck-detection valve (the parallel analogue of the sequential
    // executors' idle-pass check): when every live worker is parked with
    // no merge in between, demand should be impossible — a candidate
    // needing samples implies an unread block in some shard. Re-publish
    // to give workers a fresh epoch, and fail loudly rather than hang if
    // that happens repeatedly. The valve only errors; it must never
    // silently degrade the run (e.g. by forcing an exact finish the data
    // does not justify).
    let mut stuck_rounds = 0u32;

    // The initial phase may already be satisfied (degenerate configs).
    d.advance_and_publish(shared)?;

    while !d.hs.is_done() {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => {
                // All workers exited. Only a full set of exhaustion
                // reports makes finishing exact sound; anything else is a
                // protocol bug that must not masquerade as completion.
                if exhausted.iter().all(|&e| e) {
                    d.finish_exhausted()?;
                    break;
                }
                return Err(CoreError::PhaseViolation(
                    "shard workers exited with open demand and unconsumed blocks".into(),
                ));
            }
        };
        match msg {
            Msg::Batch { acc, blocks } => {
                // The merge below republishes (bumping the epoch), which
                // wakes every parked worker for a fresh pass.
                idle.iter_mut().for_each(|f| *f = false);
                stuck_rounds = 0;
                d.merge_batch(acc, &blocks);
                d.advance_and_publish(shared)?;
            }
            Msg::IdlePass(w) => {
                idle[w] = true;
                wake_if_all_parked(d, shared, &mut idle, &exhausted, &mut stuck_rounds)?;
            }
            Msg::ShardExhausted(w) => {
                exhausted[w] = true;
                idle[w] = false;
                if exhausted.iter().all(|&e| e) {
                    if !d.hs.is_done() {
                        d.finish_exhausted()?;
                    }
                } else {
                    // The live set shrank: the remaining workers may all
                    // be parked already, so the all-parked check must be
                    // re-evaluated here too.
                    wake_if_all_parked(d, shared, &mut idle, &exhausted, &mut stuck_rounds)?;
                }
            }
            // A storage failure in any shard fails the run with that
            // error; the caller's cleanup (Stop + receiver drop) unwinds
            // the surviving workers.
            Msg::Failed(e) => return Err(e),
        }
    }
    shared.set_mode(DemandMode::Stop);
    drop(rx); // unblock workers parked on a full channel

    Ok(())
}

/// The park/exit tally decision: is every still-live worker parked?
///
/// Extracted as a pure function because this predicate *is* the PR-2
/// deadlock fix: it must be evaluated against the by-id `idle` /
/// `exhausted` sets (and re-evaluated whenever the live set shrinks),
/// not against an anonymous running count. Both call sites —
/// `wake_if_all_parked` here and the quantum scheduler's analogue in
/// `service/state.rs` — and `fastmatch-check`'s `park_exit` model (which
/// keeps the historical anonymous tally as a mutation and shows it
/// deadlocks) share this definition. Invariant name in DESIGN.md:
/// `all-parked-implies-wake`.
pub fn all_live_parked(idle: &[bool], exhausted: &[bool]) -> bool {
    debug_assert_eq!(idle.len(), exhausted.len());
    let live = exhausted.iter().filter(|&&e| !e).count();
    if live == 0 {
        return false;
    }
    let parked = idle
        .iter()
        .zip(exhausted)
        .filter(|&(&i, &e)| i && !e)
        .count();
    parked >= live
}

/// If every still-live worker is parked after an idle pass, republish the
/// demand snapshot (bumping the epoch wakes them all) and count a stuck
/// round; after too many consecutive stuck rounds, fail loudly.
fn wake_if_all_parked(
    d: &mut Driver,
    shared: &SharedDemand,
    idle: &mut [bool],
    exhausted: &[bool],
    stuck_rounds: &mut u32,
) -> Result<()> {
    if !all_live_parked(idle, exhausted) {
        return Ok(());
    }
    idle.iter_mut().for_each(|f| *f = false);
    *stuck_rounds += 1;
    if *stuck_rounds >= 16 {
        return Err(CoreError::PhaseViolation(
            "no readable blocks for outstanding demand".into(),
        ));
    }
    d.advance_and_publish(shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_core::histsim::HistSimConfig;
    use fastmatch_store::bitmap::BitmapIndex;
    use fastmatch_store::block::BlockLayout;
    use fastmatch_store::schema::{AttrDef, Schema};
    use fastmatch_store::table::Table;

    #[test]
    fn all_live_parked_tracks_identity_not_counts() {
        // No workers / all exhausted: nothing to wake.
        assert!(!all_live_parked(&[], &[]));
        assert!(!all_live_parked(&[false, false], &[true, true]));
        // The PR-2 scenario: one worker parked, the other exhausted —
        // the live set is exactly the parked set, so a wake is due.
        assert!(all_live_parked(&[true, false], &[false, true]));
        // A live, running worker means no wake yet.
        assert!(!all_live_parked(&[true, false], &[false, false]));
        // A stale idle flag on an exhausted worker must not count
        // toward the parked tally (identity, not anonymous counts).
        assert!(!all_live_parked(&[false, true], &[false, true]));
    }

    /// An empty shard (shard count > block count, below the executor's
    /// clamp) must make the worker report exhaustion and return at once —
    /// never park on an epoch that cannot change for it.
    #[test]
    fn empty_shard_worker_reports_exhaustion_and_exits() {
        let schema = Schema::new(vec![AttrDef::new("z", 2), AttrDef::new("x", 2)]);
        let table = Table::new(schema, vec![vec![0, 1, 0, 1, 0, 1], vec![0, 0, 1, 1, 0, 1]]);
        let layout = BlockLayout::new(6, 3); // 2 blocks
        let bitmap = BitmapIndex::build(&table, 0, &layout);
        let job = QueryJob::new(
            &table,
            layout,
            &bitmap,
            0,
            1,
            vec![0.5, 0.5],
            HistSimConfig::default(),
        );
        let shared = SharedDemand::new(job.num_candidates());
        let (tx, rx) = sync_channel::<Msg>(4);
        let reader = job.reader().shard(3, 4); // of 2 blocks: empty
        assert_eq!(reader.num_blocks(), 0);
        // Never publish any demand: a parking worker would hang forever,
        // so returning at all proves the early exit.
        let stats = shard_worker(&job, 3, reader, &shared, tx, 8, 0);
        assert_eq!(stats, IoStats::default());
        match rx.try_recv() {
            Ok(Msg::ShardExhausted(3)) => {}
            other => panic!(
                "expected ShardExhausted(3), got {:?}",
                other.map(|m| match m {
                    Msg::Batch { .. } => "Batch",
                    Msg::IdlePass(_) => "IdlePass",
                    Msg::ShardExhausted(_) => "ShardExhausted",
                    Msg::Failed(_) => "Failed",
                })
            ),
        }
    }
}
