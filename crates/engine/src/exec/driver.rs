//! The shared statistics-engine driver.
//!
//! Every executor that runs the HistSim protocol repeats the same
//! scaffolding: build the state machine, mark never-present candidates
//! exact, feed it samples while tracking per-candidate consumption,
//! advance phases whenever demand is met, publish fresh demand to any
//! sampling-engine threads, and package the output with run statistics.
//! [`Driver`] owns exactly that scaffolding so `ScanMatch`/`SyncMatch`
//! (sequential), `FastMatch` (async lookahead) and `ParallelMatch`
//! (sharded workers) differ only in *how blocks are chosen and delivered*,
//! not in how HistSim is driven.

use std::time::Instant;

use fastmatch_core::error::Result;
use fastmatch_core::histsim::{HistAccumulator, HistSim, PhaseKind};
use fastmatch_store::io::IoStats;

use crate::progress::ConsumptionTracker;
use crate::query::QueryJob;
use crate::result::{MatchOutput, RunStats};
use crate::shared::{DemandMode, SharedDemand};

/// Distinct candidates of one block delivered by a shard worker, so the
/// statistics thread can maintain consumption tracking without re-reading
/// the block.
#[derive(Debug)]
pub(crate) struct BlockTouch {
    /// Block id.
    pub id: u32,
    /// Distinct candidate codes appearing in the block.
    pub candidates: Vec<u32>,
}

/// The statistics engine shared by all HistSim executors: the state
/// machine plus consumption tracking and run-stats packaging.
#[derive(Debug)]
pub(crate) struct Driver {
    /// The state machine being driven.
    pub hs: HistSim,
    tracker: ConsumptionTracker,
    /// Reused per-block delta buffer backing the fused ingestion path.
    scratch: HistAccumulator,
    t0: Instant,
}

impl Driver {
    /// Builds the state machine for `job` and marks candidates that never
    /// occur in the data as exact (they can yield no samples).
    pub fn new(job: &QueryJob<'_>) -> Result<Self> {
        let t0 = Instant::now();
        let mut hs = HistSim::new(
            job.cfg.clone(),
            job.num_candidates(),
            job.num_groups(),
            job.n_rows() as u64,
            &job.target,
        )?;
        let tracker = ConsumptionTracker::new(&job.bitmap);
        let absent: Vec<u32> = tracker.never_present().collect();
        for c in absent {
            hs.mark_exact(c);
        }
        let scratch = HistAccumulator::new(job.num_candidates(), job.num_groups());
        Ok(Driver {
            hs,
            tracker,
            scratch,
            t0,
        })
    }

    /// Ingests one read block and updates consumption tracking — the
    /// synchronous ingestion path, fused so the block's tuples are
    /// traversed exactly once: the batch kernel accumulates the deltas,
    /// whose touched list *is* the block's distinct-candidate set, so
    /// consumption tracking runs over `O(distinct)` candidates instead of
    /// re-walking all tuples.
    #[inline]
    pub fn ingest_block(&mut self, b: usize, zs: &[u32], xs: &[u32]) {
        self.scratch.accumulate(zs, xs);
        self.hs.merge_ref(&self.scratch);
        let hs = &mut self.hs;
        self.tracker
            .block_read(b, self.scratch.touched(), |c| hs.mark_exact(c));
        self.scratch.clear();
    }

    /// Merges a shard batch: folds the accumulated deltas into the state
    /// machine and updates consumption tracking from the per-block
    /// distinct-candidate lists — the parallel ingestion path.
    pub fn merge_batch(&mut self, acc: HistAccumulator, blocks: &[BlockTouch]) {
        self.hs.merge(acc);
        let hs = &mut self.hs;
        for bt in blocks {
            self.tracker
                .block_read(bt.id as usize, &bt.candidates, |c| hs.mark_exact(c));
        }
    }

    /// Advances the state machine through every phase whose demand is
    /// already satisfied.
    pub fn advance(&mut self) -> Result<()> {
        while self.hs.io_satisfied() && !self.hs.is_done() {
            self.hs.complete_io_phase(false)?;
        }
        Ok(())
    }

    /// [`Self::advance`], then publishes the resulting demand snapshot for
    /// sampling-engine / shard-worker threads — as one atomic publication
    /// (single epoch bump), so a woken reader never sees a fresh mode
    /// with stale demand or vice versa.
    pub fn advance_and_publish(&mut self, shared: &SharedDemand) -> Result<()> {
        self.advance()?;
        match self.hs.phase() {
            PhaseKind::Stage1 => shared.publish(DemandMode::ReadAll, None),
            PhaseKind::Stage2 | PhaseKind::Stage3 => {
                shared.publish(DemandMode::AnyActive, Some(self.hs.remaining_slice()));
            }
            PhaseKind::Done => shared.publish(DemandMode::Stop, None),
        }
        Ok(())
    }

    /// Finishes the run in exact mode: the entire table has been consumed.
    pub fn finish_exhausted(&mut self) -> Result<()> {
        self.advance()?;
        if !self.hs.is_done() {
            self.hs.complete_io_phase(true)?;
        }
        Ok(())
    }

    /// Extracts the output and packages it with run statistics.
    pub fn finish(self, io: IoStats) -> Result<MatchOutput> {
        let output = self.hs.output()?;
        let stats = RunStats {
            wall: self.t0.elapsed(),
            io,
            stage2_rounds: output.diagnostics.stage2_rounds,
            samples: output.diagnostics.total_samples,
            exact_finish: output.diagnostics.exact_finish,
            pruned: output.diagnostics.pruned_candidates,
        };
        Ok(MatchOutput { output, stats })
    }
}
