//! `ScanMatch`: HistSim termination over a plain sequential scan
//! (paper §5.2).
//!
//! No block is ever skipped — the executor simply stops scanning once
//! HistSim's statistical termination criterion is met. Comparing against
//! [`super::ScanExec`] isolates the benefit of *approximation*; comparing
//! [`super::SyncMatchExec`] against this isolates the benefit of
//! *AnyActive block selection*.

use fastmatch_core::error::Result;

use crate::exec::{run_sequential, BlockPolicy, Executor};
use crate::query::QueryJob;
use crate::result::MatchOutput;

/// Sequential-scan executor with HistSim early termination.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanMatchExec;

impl Executor for ScanMatchExec {
    fn name(&self) -> &'static str {
        "ScanMatch"
    }

    fn run(&self, job: &QueryJob<'_>, seed: u64) -> Result<MatchOutput> {
        run_sequential(job, seed, BlockPolicy::ReadAll)
    }
}
