//! `SyncMatch`: AnyActive block selection applied synchronously, one block
//! at a time (paper §5.2).
//!
//! Before each block, the executor probes the bitmap index of every still-
//! active candidate until one hits (Algorithm 2). This skips useless
//! blocks but (a) leaves the I/O path idle while deciding and (b) touches
//! one cache line per candidate per block, using a single bit of it — the
//! pathology that makes SyncMatch slower than a plain scan on
//! high-cardinality candidate attributes (TAXI, POLICE-q3 in Table 4).
//! Comparing [`super::FastMatchExec`] against this isolates the benefit of
//! asynchronous cache-conscious lookahead.

use fastmatch_core::error::Result;

use crate::exec::{run_sequential, BlockPolicy, Executor};
use crate::query::QueryJob;
use crate::result::MatchOutput;

/// Synchronous AnyActive executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncMatchExec;

impl Executor for SyncMatchExec {
    fn name(&self) -> &'static str {
        "SyncMatch"
    }

    fn run(&self, job: &QueryJob<'_>, seed: u64) -> Result<MatchOutput> {
        run_sequential(job, seed, BlockPolicy::SyncAnyActive)
    }
}
