//! Query executors.
//!
//! [`Executor`] is the common interface; the implementations extend the
//! §5.2 comparison ladder (each adds exactly one mechanism):
//! `Scan` → `ScanMatch` (approximation) → `SyncMatch` (AnyActive block
//! skipping) → `FastMatch` (asynchronous cache-conscious lookahead) →
//! `ParallelMatch` (shard-parallel ingestion over mergeable accumulators).
//!
//! All HistSim executors drive the state machine through the shared
//! `driver::Driver` (crate-internal); they differ only in how blocks are
//! selected and delivered to it.

pub(crate) mod driver;
mod fast_match;
mod parallel_match;
mod scan;
mod scan_match;
mod sync_match;

pub use fast_match::FastMatchExec;
pub use parallel_match::{all_live_parked, ParallelMatchExec};
pub use scan::ScanExec;
pub use scan_match::ScanMatchExec;
pub use sync_match::SyncMatchExec;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fastmatch_core::error::{CoreError, Result};
use fastmatch_core::histsim::PhaseKind;
use fastmatch_store::error::StoreError;

use crate::exec::driver::Driver;
use crate::query::QueryJob;
use crate::result::MatchOutput;

/// Maps a storage-layer failure into the engine's error domain.
pub(crate) fn storage_err(e: StoreError) -> CoreError {
    CoreError::Storage(e.to_string())
}

/// A query executor: runs one top-k histogram-matching query to
/// completion. `seed` controls the random scan start position (each run of
/// an approximate executor starts from a random offset in the permuted
/// data, as in §5.2).
pub trait Executor {
    /// Human-readable executor name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Runs the query.
    fn run(&self, job: &QueryJob<'_>, seed: u64) -> Result<MatchOutput>;
}

/// Picks the random start block for a run.
pub(crate) fn start_block(num_blocks: usize, seed: u64) -> usize {
    if num_blocks == 0 {
        return 0;
    }
    StdRng::seed_from_u64(seed).gen_range(0..num_blocks)
}

/// Forwards one marked lookahead window to the backend's prefetcher:
/// every maximal run of blocks that is *marked for reading* and *not yet
/// visited* becomes one readahead hint, issued before the caller starts
/// ingesting the window — so the backend warms the window's later blocks
/// while the earlier ones are being accumulated. Skipped (unmarked) and
/// already-read blocks are never hinted: that is the demand-aware half
/// of the prefetch pipeline.
///
/// `marks[i]` describes local block `seg_off + i`, whose global id is
/// `base + seg_off + i`; `visited` is indexed by local block id.
pub(crate) fn prefetch_marked(
    job: &QueryJob<'_>,
    base: usize,
    seg_off: usize,
    marks: &[bool],
    visited: &[bool],
) {
    let mut run_start: Option<usize> = None;
    for (i, &marked) in marks.iter().enumerate() {
        let li = seg_off + i;
        if marked && !visited[li] {
            run_start.get_or_insert(li);
        } else if let Some(s) = run_start.take() {
            job.prefetch(base + s..base + li);
        }
    }
    if let Some(s) = run_start.take() {
        job.prefetch(base + s..base + seg_off + marks.len());
    }
}

/// Per-block read/skip decision for the synchronous executors.
pub(crate) enum BlockPolicy {
    /// Read every unread block (ScanMatch).
    ReadAll,
    /// Probe active candidates' bitmaps per block, Algorithm 2 style
    /// (SyncMatch).
    SyncAnyActive,
}

/// The shared synchronous driver behind `ScanMatch` and `SyncMatch`: a
/// wrap-around multi-pass cursor over blocks, ingesting read blocks into
/// HistSim and advancing its phases as demand is met.
pub(crate) fn run_sequential(
    job: &QueryJob<'_>,
    seed: u64,
    policy: BlockPolicy,
) -> Result<MatchOutput> {
    let mut d = Driver::new(job)?;
    let mut reader = job.reader();

    let nb = job.layout.num_blocks();
    let start = start_block(nb, seed);
    let mut read = vec![false; nb];
    let mut blocks_read_total = 0usize;
    let mut idle_passes = 0u32;

    'outer: loop {
        let mut pass_had_reads = false;
        for off in 0..nb {
            let b = (start + off) % nb;
            if read[b] {
                continue;
            }
            d.advance()?;
            if d.hs.is_done() {
                break 'outer;
            }
            let do_read = match d.hs.phase() {
                PhaseKind::Stage1 => true,
                PhaseKind::Stage2 | PhaseKind::Stage3 => match policy {
                    BlockPolicy::ReadAll => true,
                    BlockPolicy::SyncAnyActive => {
                        // Honest Algorithm 2: probe one candidate bitmap at
                        // a time until a hit — the cache-hostile pattern
                        // whose cost §5.4 quantifies.
                        (0..job.num_candidates() as u32)
                            .any(|c| d.hs.is_active(c) && job.bitmap.block_has(c, b))
                    }
                },
                PhaseKind::Done => break 'outer,
            };
            if do_read {
                let (zs, xs) = reader
                    .try_block_slices(b, job.z_attr, job.x_attr)
                    .map_err(storage_err)?;
                d.ingest_block(b, zs, xs);
                read[b] = true;
                blocks_read_total += 1;
                pass_had_reads = true;
            } else {
                reader.skip_block(b);
            }
        }
        d.advance()?;
        if d.hs.is_done() {
            break;
        }
        if blocks_read_total == nb {
            d.finish_exhausted()?;
            break;
        }
        idle_passes = if pass_had_reads { 0 } else { idle_passes + 1 };
        if idle_passes >= 2 {
            // Should be impossible: demand on a candidate implies unread
            // blocks containing it. Fail loudly rather than spin.
            return Err(CoreError::PhaseViolation(
                "no readable blocks for outstanding demand".into(),
            ));
        }
    }

    d.finish(reader.stats())
}
