//! Per-candidate consumption tracking.
//!
//! Executors sample without replacement by never re-reading a block. A
//! candidate whose every block has been read is *fully consumed*: its
//! counts are exact, it can never yield more samples, and HistSim must be
//! told (`mark_exact`) so demand on it is dropped. [`ConsumptionTracker`]
//! detects this the moment the candidate's last block is read, using the
//! per-candidate block counts from the bitmap index.
//!
//! Deduplication of candidates within a block is done with per-candidate
//! block stamps (blocks are never re-read, so a block id is a unique
//! stamp), keeping the hot path at O(1) per tuple.

use fastmatch_store::bitmap::BitmapIndex;

/// Tracks how many unread blocks still contain each candidate.
#[derive(Debug)]
pub struct ConsumptionTracker {
    blocks_left: Vec<u32>,
    /// `block id + 1` of the last block in which the candidate was
    /// counted; 0 = never seen.
    last_stamp: Vec<u32>,
}

impl ConsumptionTracker {
    /// Initializes from the bitmap index (one popcount per candidate).
    pub fn new(bitmap: &BitmapIndex) -> Self {
        let blocks_left = (0..bitmap.num_values() as u32)
            .map(|c| bitmap.blocks_with_value(c) as u32)
            .collect();
        ConsumptionTracker {
            last_stamp: vec![0; bitmap.num_values()],
            blocks_left,
        }
    }

    /// Records that block `block_id` (never previously read) has been
    /// read, with the given tuple candidates. Each distinct candidate's
    /// remaining-block count is decremented once; `on_consumed(c)` fires
    /// for every candidate that just ran out of unread blocks.
    #[inline]
    pub fn block_read(
        &mut self,
        block_id: usize,
        candidates_in_block: &[u32],
        mut on_consumed: impl FnMut(u32),
    ) {
        let stamp = block_id as u32 + 1;
        for &c in candidates_in_block {
            let ci = c as usize;
            if self.last_stamp[ci] != stamp {
                self.last_stamp[ci] = stamp;
                let left = &mut self.blocks_left[ci];
                debug_assert!(*left > 0, "candidate {c} read in more blocks than indexed");
                *left -= 1;
                if *left == 0 {
                    on_consumed(c);
                }
            }
        }
    }

    /// Number of unread blocks still containing candidate `c`.
    pub fn blocks_left(&self, c: u32) -> u32 {
        self.blocks_left[c as usize]
    }

    /// Candidates that never had any block (zero tuples in the data).
    pub fn never_present(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks_left
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(c, _)| c as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_store::block::BlockLayout;
    use fastmatch_store::schema::{AttrDef, Schema};
    use fastmatch_store::table::Table;

    fn tracker() -> ConsumptionTracker {
        // candidate 0 in blocks 0,1; candidate 1 in block 1; candidate 2
        // nowhere (cardinality 3, never appears).
        let col = vec![0, 0, 0, 1, 0, 1];
        let schema = Schema::new(vec![AttrDef::new("z", 3)]);
        let t = Table::new(schema, vec![col]);
        let l = BlockLayout::new(6, 3);
        let idx = fastmatch_store::bitmap::BitmapIndex::build(&t, 0, &l);
        ConsumptionTracker::new(&idx)
    }

    #[test]
    fn initial_counts_from_bitmap() {
        let tr = tracker();
        assert_eq!(tr.blocks_left(0), 2);
        assert_eq!(tr.blocks_left(1), 1);
        assert_eq!(tr.blocks_left(2), 0);
        assert_eq!(tr.never_present().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn consumption_fires_on_last_block() {
        let mut tr = tracker();
        let mut consumed = Vec::new();
        tr.block_read(0, &[0, 0, 0], |c| consumed.push(c));
        assert!(consumed.is_empty());
        assert_eq!(tr.blocks_left(0), 1);
        tr.block_read(1, &[1, 0, 1], |c| consumed.push(c));
        consumed.sort_unstable();
        assert_eq!(consumed, vec![0, 1]);
        assert_eq!(tr.blocks_left(0), 0);
    }

    #[test]
    fn duplicates_in_block_count_once() {
        let mut tr = tracker();
        let mut consumed = Vec::new();
        tr.block_read(1, &[1, 1, 1], |c| consumed.push(c));
        assert_eq!(consumed, vec![1]);
        assert_eq!(tr.blocks_left(1), 0);
    }

    #[test]
    fn stamps_distinguish_blocks() {
        let mut tr = tracker();
        let mut consumed = Vec::new();
        // candidate 0 appears in two different blocks: both decrements
        // must land even though the tuple values are identical.
        tr.block_read(0, &[0], |c| consumed.push(c));
        tr.block_read(1, &[0], |c| consumed.push(c));
        assert_eq!(consumed, vec![0]);
        assert_eq!(tr.blocks_left(0), 0);
    }
}
