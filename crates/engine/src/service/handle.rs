//! Per-query handles: progressive results, cancellation and final
//! outcomes.
//!
//! A [`QueryHandle`] is the client's view of one admitted query. It is
//! `'static` (no borrow of the service, the backend or the bitmap), so a
//! client thread can hold handles, poll [`QueryHandle::progress`] for the
//! current top-k preview and guarantee state, request cooperative
//! cancellation, and block on [`QueryHandle::wait`] for the final
//! [`QueryOutcome`] — all while the service's workers keep multiplexing
//! other queries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

use fastmatch_core::error::CoreError;
use fastmatch_core::histsim::PhaseKind;
use fastmatch_store::io::IoStats;

use crate::result::MatchOutput;

/// How much of HistSim's ε–δ contract the current (or final) result
/// carries. Derived from the phase the state machine has reached: each
/// stage *completes* by certifying one more piece of the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuaranteeState {
    /// Stage 1 in progress: the preview is a raw estimate; rare
    /// candidates have not even been pruned yet.
    None,
    /// Stage 2 in progress: the preview is the current round's matching
    /// set, not yet certified to be the true top-k.
    Separating,
    /// Stage 3 in progress: the matched *set* is certified (Guarantee 1
    /// holds at level δ); member histograms are still being topped up to
    /// the reconstruction bound.
    Separated,
    /// Terminal: both guarantees hold (separation and ε-reconstruction).
    Full,
    /// Terminal: the whole table was consumed — results are exact, which
    /// is strictly stronger than [`GuaranteeState::Full`].
    Exact,
}

impl GuaranteeState {
    /// Maps the state machine's phase (plus the exact-finish flag, once
    /// done) to the guarantee the client may rely on.
    pub(crate) fn from_phase(phase: PhaseKind, exact_finish: bool) -> Self {
        match phase {
            PhaseKind::Stage1 => GuaranteeState::None,
            PhaseKind::Stage2 => GuaranteeState::Separating,
            PhaseKind::Stage3 => GuaranteeState::Separated,
            PhaseKind::Done => {
                if exact_finish {
                    GuaranteeState::Exact
                } else {
                    GuaranteeState::Full
                }
            }
        }
    }
}

/// A progressive snapshot of one running query, refreshed after every
/// merged ingestion quantum.
#[derive(Debug, Clone)]
pub struct QueryProgress {
    /// The stage the query's state machine is in.
    pub phase: PhaseKind,
    /// The guarantee attached to `current_topk` right now.
    pub guarantee: GuaranteeState,
    /// The current best estimate of the top-k (closest first). Empty
    /// until the first quantum merges.
    pub current_topk: Vec<u32>,
    /// Samples ingested so far.
    pub samples: u64,
    /// I/O attributed to this query so far — including its private view
    /// of the *shared* cache (`pages_cache_hit` / `pages_cache_miss`).
    pub io: IoStats,
}

impl QueryProgress {
    pub(crate) fn initial() -> Self {
        QueryProgress {
            phase: PhaseKind::Stage1,
            guarantee: GuaranteeState::None,
            current_topk: Vec::new(),
            samples: 0,
            io: IoStats::default(),
        }
    }
}

/// How one admitted query ended.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The run terminated through HistSim (guarantee-satisfying, or exact
    /// after consuming the whole table). Per-query I/O attribution is in
    /// `stats.io`.
    Finished(MatchOutput),
    /// The client cancelled the query (or the service shut down first).
    Cancelled,
    /// The query's deadline expired before it finished.
    DeadlineExpired,
    /// The run failed (storage error, phase violation).
    Failed(CoreError),
}

impl QueryOutcome {
    /// The finished output, if the query completed normally.
    pub fn finished(&self) -> Option<&MatchOutput> {
        match self {
            QueryOutcome::Finished(out) => Some(out),
            _ => None,
        }
    }
}

/// Handle-side shared state: cancellation flag, latest progress snapshot
/// and the final outcome, all `'static` so handles outlive the scope that
/// produced them.
#[derive(Debug)]
pub(crate) struct QueryShared {
    id: u64,
    cancel: AtomicBool,
    inner: Mutex<HandleInner>,
    cv: Condvar,
}

#[derive(Debug)]
struct HandleInner {
    progress: QueryProgress,
    outcome: Option<QueryOutcome>,
}

impl QueryShared {
    pub(crate) fn new(id: u64) -> Self {
        QueryShared {
            id,
            cancel: AtomicBool::new(false),
            inner: Mutex::new(HandleInner {
                progress: QueryProgress::initial(),
                outcome: None,
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    pub(crate) fn set_progress(&self, progress: QueryProgress) {
        let mut inner = self.inner.lock().unwrap();
        // Never regress a terminal snapshot (a late quantum's update must
        // not overwrite the outcome-time progress).
        if inner.outcome.is_none() {
            inner.progress = progress;
        }
    }

    /// Publishes the terminal outcome. `progress` replaces the snapshot
    /// only for finished queries; for cancelled/expired/failed ones the
    /// last progressive snapshot is kept (it is the client's best-effort
    /// answer) with just its I/O brought up to the final attribution.
    pub(crate) fn publish_outcome(
        &self,
        progress: Option<QueryProgress>,
        final_io: IoStats,
        outcome: QueryOutcome,
    ) {
        let mut inner = self.inner.lock().unwrap();
        debug_assert!(inner.outcome.is_none(), "outcome published twice");
        match progress {
            Some(p) => inner.progress = p,
            None => inner.progress.io = final_io,
        }
        inner.outcome = Some(outcome);
        self.cv.notify_all();
    }
}

/// The client's handle to one admitted query.
#[derive(Debug, Clone)]
pub struct QueryHandle {
    pub(crate) shared: std::sync::Arc<QueryShared>,
}

impl QueryHandle {
    /// The service-assigned query id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The latest progress snapshot (current top-k + guarantee state +
    /// attributed I/O). Cheap: clones one small struct under a mutex.
    pub fn progress(&self) -> QueryProgress {
        self.shared.inner.lock().unwrap().progress.clone()
    }

    /// Requests cooperative cancellation. Workers observe the flag at
    /// their next scheduling quantum; the outcome becomes
    /// [`QueryOutcome::Cancelled`] unless the query terminated first.
    /// Idempotent; never blocks.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the final outcome is available.
    pub fn is_done(&self) -> bool {
        self.shared.inner.lock().unwrap().outcome.is_some()
    }

    /// The final outcome, if available (non-blocking).
    pub fn try_outcome(&self) -> Option<QueryOutcome> {
        self.shared.inner.lock().unwrap().outcome.clone()
    }

    /// Blocks until the query reaches a terminal state and returns the
    /// outcome.
    pub fn wait(&self) -> QueryOutcome {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(out) = &inner.outcome {
                return out.clone();
            }
            inner = self.shared.cv.wait(inner).unwrap();
        }
    }
}
