//! Service internals: per-query state, shard tasks and the scheduler.
//!
//! One admitted query is decomposed into `shards_per_query` *shard
//! tasks*, each owning a disjoint contiguous block range of the shared
//! backend (a [`ShardedBlockReader`]) plus its own visited set and pass
//! cursor. Tasks are the scheduler's unit of work: each worker pops
//! FIFO from its own ready queue (stealing from a sibling's queue when
//! its own runs dry), runs one bounded ingestion quantum, and requeues
//! the task at its home queue's tail — so concurrent queries interleave
//! at quantum granularity over one pool instead of each spawning its
//! own threads. Stealing is safe because a task is self-contained: it
//! owns its reader/cursor state outright and every cross-task effect
//! (merge, demand publication) is serialized by the query's engine
//! mutex, so *which* worker runs a quantum is immaterial.
//!
//! A task that completes a full pass over its shard without finding a
//! readable block under the query's current demand snapshot *parks*:
//! it leaves the ready queue and is only re-enqueued when the query's
//! demand epoch changes (a sibling shard merged, or the stuck valve
//! republished). Parking is what keeps fruitless shards from burning
//! pool capacity that other queries could use.
//!
//! Lock order (strict, deadlock-free): a query's engine mutex may be
//! taken before the scheduler's queue mutex, never after; the handle
//! mutex ([`super::handle::QueryShared`]) may be taken under the
//! engine mutex (progress publication from the quantum loop), never
//! the other way around, and never under the queue mutex.
//! `fastmatch-lint`'s `lock_order` check extracts this graph from the
//! source on every CI push (`crates/lint/LOCK_ORDER.dot`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use fastmatch_core::error::CoreError;
use fastmatch_store::io::{IoStats, ShardedBlockReader};

use crate::exec::driver::Driver;
use crate::query::QueryJob;
use crate::service::handle::QueryShared;
use crate::shared::SharedDemand;

/// Why a query stopped making progress (set once, under the engine
/// mutex; the *last retiring shard* converts it into the published
/// [`super::QueryOutcome`]).
#[derive(Debug)]
pub(crate) enum Verdict {
    /// HistSim terminated (guarantees met, or exact after exhaustion).
    Completed,
    /// Cancelled by the client or by service shutdown.
    Cancelled,
    /// The deadline expired before termination.
    DeadlineExpired,
    /// The run failed.
    Failed(CoreError),
}

/// The mutable heart of one query: the HistSim driver plus aggregated
/// per-query accounting. Guarded by [`QueryState::engine`].
#[derive(Debug)]
pub(crate) struct EngineState {
    /// The statistics engine; taken (`None`) by the last retiring shard.
    pub driver: Option<Driver>,
    /// I/O attributed to this query so far (flushed from shard readers
    /// at every quantum boundary).
    pub io: IoStats,
    /// Shards not yet retired.
    pub live_shards: usize,
    /// Consecutive all-parked valve rounds without a merge in between.
    pub stuck_rounds: u32,
    /// Terminal reason, once known.
    pub verdict: Option<Verdict>,
}

impl EngineState {
    /// Records the terminal reason if none is set yet (first writer
    /// wins: a cancel racing a completion must not overwrite it).
    pub fn set_verdict(&mut self, verdict: Verdict) {
        if self.verdict.is_none() {
            self.verdict = Some(verdict);
        }
    }
}

/// Everything the workers share about one admitted query.
#[derive(Debug)]
pub(crate) struct QueryState<'a> {
    /// Service-assigned id.
    pub id: u64,
    /// The prepared query (holds the backend + bitmap references).
    pub job: QueryJob<'a>,
    /// Demand snapshot published to all of this query's shard tasks —
    /// the same protocol `ParallelMatch` workers follow.
    pub demand: SharedDemand,
    /// Driver + accounting, under the query's engine mutex.
    pub engine: Mutex<EngineState>,
    /// Handle-side shared state (`'static`).
    pub shared: Arc<QueryShared>,
    /// Absolute deadline, if the request set one.
    pub deadline: Option<Instant>,
    /// Mirror of `EngineState::live_shards` readable without the engine
    /// mutex — the scheduler's all-parked check runs under the *queue*
    /// mutex, which by the lock order must not take the engine mutex.
    pub live_shards_hint: AtomicUsize,
}

impl QueryState<'_> {
    /// Whether the query is past its deadline.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// One schedulable unit: a shard of one query, with its multi-pass walk
/// state. Owned by exactly one of {ready queue, parked list, a worker}
/// at any time, so none of its fields need locks.
#[derive(Debug)]
pub(crate) struct ShardTask<'a> {
    /// The query this shard belongs to.
    pub query: Arc<QueryState<'a>>,
    /// Reader over this shard's contiguous block range, with per-shard
    /// [`IoStats`].
    pub reader: ShardedBlockReader<'a>,
    /// Per-local-block visited flags (blocks are never re-read).
    pub visited: Vec<bool>,
    /// Number of visited blocks.
    pub visited_count: usize,
    /// Seed-derived rotation offset: local block `(start + i) % n` is
    /// the `i`-th in pass order, so repeated runs draw different samples.
    pub start: usize,
    /// Position in rotated pass order (`0..n`); `0` means a new pass is
    /// about to begin.
    pub cursor: usize,
    /// Demand epoch observed when the current pass started.
    pub pass_epoch: u64,
    /// Whether the current pass has read at least one block.
    pub read_this_pass: bool,
    /// The part of `reader.stats()` already charged to the query.
    pub flushed: IoStats,
    /// Home worker queue (round-robin at admission). The task prefers
    /// its home worker — quantum-to-quantum cache affinity — but any
    /// idle worker may steal it.
    pub home: usize,
    /// Smoothed observed ingestion cost of this shard, ns per block
    /// (`0.0` until the first timed quantum). Feeds adaptive quantum
    /// sizing; per-*shard* because cost is dominated by where the
    /// shard's blocks live (cache-hot memory vs cold file pages).
    pub ewma_ns_per_block: f64,
}

impl<'a> ShardTask<'a> {
    /// Flushes the reader stats accrued since the last flush into the
    /// query's aggregate (caller holds the engine mutex).
    pub fn flush_io(&mut self, eng: &mut EngineState) {
        let stats = self.reader.stats();
        eng.io.merge(stats.since(self.flushed));
        self.flushed = stats;
    }
}

/// The order in which worker `own` of `n` scans the per-worker ready
/// queues: always its own queue first, then — only when stealing is
/// enabled or shutdown is draining — every sibling queue round-robin
/// from its right neighbor.
///
/// Extracted as a pure function because this scan order *is* the
/// scheduler's liveness contract, shared verbatim with
/// `fastmatch-check`'s `admission_steal` model: during shutdown every
/// worker must serve every queue (or a task re-enqueued after its home
/// worker exited is stranded forever — invariant
/// `shutdown-drains-all-queues`), and with stealing disabled a wakeup
/// must reach the home worker specifically, which is why
/// `Scheduler::enqueue` uses `notify_all` (invariant
/// `no-lost-wakeup`; the model shows the `notify_one` interleaving that
/// deadlocks, documented in DESIGN.md).
pub fn queue_scan_order(
    own: usize,
    n: usize,
    stealing: bool,
    shutdown: bool,
) -> impl Iterator<Item = usize> {
    let own = own.min(n.saturating_sub(1));
    std::iter::once(own).chain(
        (1..n)
            .filter(move |_| stealing || shutdown)
            .map(move |off| (own + off) % n),
    )
}

/// Whether a query with `live` still-unretired shards, `parked` of them
/// currently parked, has its *entire* live set parked — the condition
/// that must trigger the stuck valve. Shared with the `admission_steal`
/// and `park_exit` models; the `live == 0` case is "query already
/// fully retired", where there is nobody left to wake.
pub fn all_shards_parked(parked: usize, live: usize) -> bool {
    live > 0 && parked >= live
}

/// Whether the admission CAS loop may take another slot: `active`
/// admitted-and-not-terminal queries against the configured bound.
/// Shared with the `admission_steal` model's invariant
/// `admission-bounded` — the bound must hold on every interleaving of
/// concurrent submits, which is why the caller retries on CAS failure
/// instead of load-then-increment.
pub fn admission_has_capacity(active: usize, limit: usize) -> bool {
    active < limit
}

/// A parked task. The epoch whose fruitless pass parked it is *not*
/// kept: `wake_query` wakes a query's parked tasks unconditionally on
/// any epoch bump, and the park-vs-requeue decision is made once, under
/// the queue lock, in [`Scheduler::park`].
#[derive(Debug)]
struct ParkedTask<'a> {
    task: ShardTask<'a>,
}

/// Scheduler-level counters, exposed through
/// [`super::QueryService::sched_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Scheduling quanta executed across all workers and queries.
    pub quanta: u64,
    /// Tasks a worker popped from another worker's queue because its
    /// own had run dry. Zero when work-stealing is disabled.
    pub steals: u64,
}

#[derive(Debug)]
struct SchedState<'a> {
    /// One FIFO ready queue per worker; tasks land on their home queue
    /// and idle workers steal from others when theirs runs dry.
    queues: Vec<VecDeque<ShardTask<'a>>>,
    parked: Vec<ParkedTask<'a>>,
    shutdown: bool,
}

/// The shared scheduler: per-worker FIFO ready queues (with optional
/// work-stealing) and one parked list for the whole service.
#[derive(Debug)]
pub(crate) struct Scheduler<'a> {
    state: Mutex<SchedState<'a>>,
    cv: Condvar,
    stealing: bool,
    quanta: AtomicU64,
    steals: AtomicU64,
}

impl<'a> Scheduler<'a> {
    pub fn new(workers: usize, stealing: bool) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                parked: Vec::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            stealing,
            quanta: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().unwrap().shutdown
    }

    /// Counts one executed scheduling quantum.
    pub fn note_quantum(&self) {
        self.quanta.fetch_add(1, Ordering::Relaxed);
    }

    /// Current scheduler counters.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            quanta: self.quanta.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    /// Appends a runnable task at its home queue's tail (FIFO ⇒ quanta
    /// of different queries round-robin within a queue).
    pub fn enqueue(&self, task: ShardTask<'a>) {
        let mut s = self.state.lock().unwrap();
        let home = task.home.min(s.queues.len() - 1);
        s.queues[home].push_back(task);
        drop(s);
        // notify_all, not notify_one: with per-worker queues a single
        // wakeup can land on a worker that (stealing disabled) will not
        // serve this queue and would strand the task.
        self.cv.notify_all();
    }

    /// Blocks for worker `worker`'s next runnable task — from its own
    /// queue first, else (when stealing is enabled) from the first
    /// non-empty queue scanning round-robin from its right neighbor.
    /// `None` once shutdown is requested *and* every queue this worker
    /// may serve has drained (parked tasks are moved to ready by
    /// [`Self::shutdown`], so nothing is stranded).
    pub fn pop(&self, worker: usize) -> Option<ShardTask<'a>> {
        let mut s = self.state.lock().unwrap();
        loop {
            let n = s.queues.len();
            let own = worker.min(n - 1);
            // During shutdown every worker serves every queue even with
            // stealing disabled: a task re-enqueued late could land on
            // a queue whose worker already exited and would otherwise
            // be stranded unretired. (The scan order is the extracted
            // [`queue_scan_order`] the model checks.)
            for q in queue_scan_order(own, n, self.stealing, s.shutdown) {
                if let Some(task) = s.queues[q].pop_front() {
                    if q != own && !s.shutdown {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(task);
                }
            }
            if s.shutdown {
                return None;
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Parks a task whose last full pass found nothing readable under
    /// demand epoch `pass_epoch`. If the query's epoch has already moved
    /// on, the task is re-enqueued instead (the wake it would wait for
    /// already happened — checking under the queue lock closes the
    /// lost-wakeup window). Returns `true` when, after parking, every
    /// still-live shard of the query is parked — the caller must then
    /// run the stuck valve.
    pub fn park(&self, task: ShardTask<'a>, pass_epoch: u64) -> bool {
        let query = Arc::clone(&task.query);
        let mut s = self.state.lock().unwrap();
        if s.shutdown || query.demand.epoch() != pass_epoch {
            let home = task.home.min(s.queues.len() - 1);
            s.queues[home].push_back(task);
            drop(s);
            self.cv.notify_all();
            return false;
        }
        s.parked.push(ParkedTask { task });
        let parked = s
            .parked
            .iter()
            .filter(|p| p.task.query.id == query.id)
            .count();
        all_shards_parked(parked, query.live_shards_hint.load(Ordering::Relaxed))
    }

    /// Whether every one of the query's `live` still-unretired shards is
    /// currently parked. Called after a shard retires: the live set
    /// shrinking can make an existing parked set become "all of them",
    /// with no parking transition left to notice it (the same stale-tally
    /// hazard `ParallelMatch` re-checks for on `ShardExhausted`).
    pub fn all_parked(&self, query_id: u64, live: usize) -> bool {
        if live == 0 {
            return false;
        }
        let s = self.state.lock().unwrap();
        let parked = s
            .parked
            .iter()
            .filter(|p| p.task.query.id == query_id)
            .count();
        all_shards_parked(parked, live)
    }

    /// Moves every parked task of `query_id` back to the ready queue
    /// (called after a demand republication for that query — any epoch
    /// bump, merge or valve, wakes the whole query).
    pub fn wake_query(&self, query_id: u64) {
        let mut s = self.state.lock().unwrap();
        let mut woken = 0usize;
        let mut i = 0;
        while i < s.parked.len() {
            if s.parked[i].task.query.id == query_id {
                let p = s.parked.swap_remove(i);
                let home = p.task.home.min(s.queues.len() - 1);
                s.queues[home].push_back(p.task);
                woken += 1;
            } else {
                i += 1;
            }
        }
        drop(s);
        if woken > 0 {
            self.cv.notify_all();
        }
    }

    /// Requests shutdown: every parked task is made runnable (so workers
    /// retire it as cancelled) and all workers are woken; `pop` returns
    /// `None` once the queues it may serve drain.
    pub fn shutdown(&self) {
        let mut s = self.state.lock().unwrap();
        s.shutdown = true;
        while let Some(p) = s.parked.pop() {
            let home = p.task.home.min(s.queues.len() - 1);
            s.queues[home].push_back(p.task);
        }
        drop(s);
        self.cv.notify_all();
    }
}
