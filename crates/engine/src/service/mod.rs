//! Concurrent multi-query service over one shared storage backend.
//!
//! The single-query executors answer *one* top-k histogram-matching
//! query as fast as possible. A serving system answers *many at once*,
//! against one storage backend and one block cache — the contention
//! regime this module exists for. [`QueryService`] is that layer:
//!
//! * **Admission** — [`QueryService::submit`] validates a
//!   [`QueryRequest`], builds its HistSim driver, splits the shared
//!   backend's block range into shard tasks, and returns a `'static`
//!   [`QueryHandle`]. Admission is bounded
//!   ([`ServiceConfig::max_admitted`]); beyond the bound `submit`
//!   rejects with [`ServiceError::Saturated`] instead of queueing
//!   unboundedly.
//! * **Scheduling** — one bounded worker pool serves *all* queries.
//!   The schedulable unit is a (query, shard) pair running one bounded
//!   ingestion quantum, after which the task goes back to its home
//!   queue's FIFO tail. Queries therefore multiplex over shards at
//!   quantum granularity — 16 queries × 4 shards is 64 interleaved
//!   tasks on the same pool, not 16 private pools — and no query can
//!   monopolize a worker for longer than one quantum. The quantum
//!   budget is either a fixed block count
//!   ([`ServiceConfig::quantum_blocks`]) or sized *adaptively* from
//!   each shard's observed per-block cost so quanta approximate a
//!   fixed time slice ([`QuantumPolicy::Adaptive`]). Idle workers
//!   steal queued tasks from busy siblings
//!   ([`ServiceConfig::work_stealing`]), and shards with nothing
//!   readable under the query's current demand *park* and stop
//!   consuming pool capacity until the query's demand epoch moves
//!   (`state` module docs, crate-internal).
//! * **Per-query protocol** — each query runs the same demand protocol
//!   as `ParallelMatch`: shard quanta fill phase-free
//!   [`HistAccumulator`] batches, merge into the authoritative driver
//!   under the query's
//!   engine mutex, advance phases and republish demand. The paper's
//!   correctness argument carries over unchanged: any set of blocks of
//!   the pre-permuted table is a uniform without-replacement sample, so
//!   quantum scheduling changes *latency*, never the guarantee.
//! * **Progressive results** — after every merged quantum the handle's
//!   snapshot is refreshed: current top-k preview, phase,
//!   [`GuaranteeState`], samples so far, and the query's attributed
//!   [`IoStats`](fastmatch_store::io::IoStats) — including its private
//!   hit/miss view of the *shared* block cache.
//! * **Cancellation & deadlines** — cooperative: workers observe the
//!   cancel flag and the deadline at quantum boundaries, so a stuck
//!   disk read is never interrupted mid-page, and a cancelled query's
//!   shards retire within one quantum each.
//!
//! Worker threads are scoped ([`QueryService::serve`]), so the service
//! borrows the backend and bitmaps instead of forcing `Arc`-wrapping
//! onto callers; handles are `'static` and may outlive the scope (they
//! resolve to [`QueryOutcome::Cancelled`] if the service shuts down
//! under them).

mod handle;
mod state;

pub use handle::{GuaranteeState, QueryHandle, QueryOutcome, QueryProgress};
pub use state::{admission_has_capacity, all_shards_parked, queue_scan_order, SchedStats};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fastmatch_core::error::CoreError;
use fastmatch_core::histsim::{HistAccumulator, HistSimConfig};
use fastmatch_store::backend::StorageBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::live::{LiveTable, Snapshot};

use crate::exec::driver::{BlockTouch, Driver};
use crate::policy::mark_lookahead;
use crate::query::QueryJob;
use crate::service::handle::QueryShared;
use crate::service::state::{EngineState, QueryState, Scheduler, ShardTask, Verdict};
use crate::shared::{DemandMode, SharedDemand};

/// Lookahead window for AnyActive marking inside a quantum (identical to
/// `ParallelMatch`'s, for the same bitmap cache-locality reasons).
const MARK_WINDOW: usize = 256;

/// Consecutive all-parked valve rounds (demand republished, every shard
/// still finds nothing readable) after which a query fails loudly
/// instead of cycling forever.
const MAX_STUCK_ROUNDS: u32 = 16;

/// How the per-quantum block budget is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumPolicy {
    /// Every quantum reads at most [`ServiceConfig::quantum_blocks`]
    /// blocks, regardless of how fast those reads are.
    Fixed,
    /// Size each quantum from the shard's *observed* per-block cost so
    /// quanta approximate a fixed **time** slice: budget =
    /// `target / ewma_ns_per_block`, clamped to `[min_blocks,
    /// max_blocks]`. Cache-hot shards take big bites (less scheduling
    /// overhead per block); cold/slow-medium shards stay preemptible
    /// (no quantum hogs a worker for a multiple of the slice). The
    /// first quantum of a shard, with no observation yet, uses
    /// [`ServiceConfig::quantum_blocks`] clamped to the same bounds.
    Adaptive {
        /// The time slice each quantum aims for.
        target: Duration,
        /// Budget floor, blocks (keeps progress under pathological
        /// cost estimates).
        min_blocks: usize,
        /// Budget ceiling, blocks (bounds the error when a shard
        /// suddenly gets slower than its EWMA).
        max_blocks: usize,
    },
}

/// Default adaptive time slice: long enough to amortize a merge under
/// the engine mutex, short enough that a 16-query box still feels
/// interactive.
pub const DEFAULT_QUANTUM_SLICE: Duration = Duration::from_micros(500);

/// Default adaptive budget bounds, in blocks.
pub const DEFAULT_QUANTUM_BOUNDS: (usize, usize) = (8, 4096);

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads in the shared pool.
    pub workers: usize,
    /// Ingestion shards per query (clamped to the block count).
    pub shards_per_query: usize,
    /// Maximum blocks read per scheduling quantum under
    /// [`QuantumPolicy::Fixed`]; the pre-observation initial budget
    /// under [`QuantumPolicy::Adaptive`].
    pub quantum_blocks: usize,
    /// How quantum budgets are sized.
    pub quantum: QuantumPolicy,
    /// Whether an idle worker may steal tasks from a sibling's queue.
    pub work_stealing: bool,
    /// Maximum queries admitted and not yet terminal.
    pub max_admitted: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            workers: cores.clamp(1, 8),
            shards_per_query: 4,
            quantum_blocks: 64,
            quantum: QuantumPolicy::Fixed,
            work_stealing: true,
            max_admitted: 4096,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker-pool size.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "worker pool must be positive");
        self.workers = workers;
        self
    }

    /// Sets the ingestion shard count per query.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards_per_query(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards_per_query = shards;
        self
    }

    /// Sets the per-quantum block-read budget.
    ///
    /// # Panics
    /// Panics if `quantum_blocks` is zero.
    pub fn with_quantum_blocks(mut self, quantum_blocks: usize) -> Self {
        assert!(quantum_blocks > 0, "quantum must be positive");
        self.quantum_blocks = quantum_blocks;
        self
    }

    /// Sets the admission bound.
    ///
    /// # Panics
    /// Panics if `max_admitted` is zero.
    pub fn with_max_admitted(mut self, max_admitted: usize) -> Self {
        assert!(max_admitted > 0, "admission bound must be positive");
        self.max_admitted = max_admitted;
        self
    }

    /// Switches to adaptive quantum sizing with time slice `target` and
    /// the default block bounds ([`DEFAULT_QUANTUM_BOUNDS`]).
    ///
    /// # Panics
    /// Panics if `target` is zero.
    pub fn with_adaptive_quantum(self, target: Duration) -> Self {
        let (min_blocks, max_blocks) = DEFAULT_QUANTUM_BOUNDS;
        self.with_quantum_policy(QuantumPolicy::Adaptive {
            target,
            min_blocks,
            max_blocks,
        })
    }

    /// Sets the quantum policy explicitly.
    ///
    /// # Panics
    /// Panics on a degenerate adaptive policy (zero target, zero
    /// `min_blocks`, or `min_blocks > max_blocks`).
    pub fn with_quantum_policy(mut self, policy: QuantumPolicy) -> Self {
        if let QuantumPolicy::Adaptive {
            target,
            min_blocks,
            max_blocks,
        } = policy
        {
            assert!(!target.is_zero(), "quantum time slice must be positive");
            assert!(min_blocks > 0, "quantum floor must be positive");
            assert!(min_blocks <= max_blocks, "quantum bounds must be ordered");
        }
        self.quantum = policy;
        self
    }

    /// Enables or disables work-stealing across worker queues.
    pub fn with_work_stealing(mut self, stealing: bool) -> Self {
        self.work_stealing = stealing;
        self
    }
}

/// One query, as submitted by a client.
#[derive(Debug, Clone)]
pub struct QueryRequest<'a> {
    /// Bitmap index over the candidate attribute (under the backend's
    /// layout).
    pub bitmap: &'a BitmapIndex,
    /// Candidate attribute (`Z`) index.
    pub z_attr: usize,
    /// Grouping attribute (`X`) index.
    pub x_attr: usize,
    /// Normalized visual target (length `|V_X|`).
    pub target: Vec<f64>,
    /// HistSim parameters.
    pub cfg: HistSimConfig,
    /// Seed for the per-shard random scan starts.
    pub seed: u64,
    /// Relative deadline: the query resolves to
    /// [`QueryOutcome::DeadlineExpired`] if it is still running this
    /// long after admission.
    pub deadline: Option<Duration>,
}

impl<'a> QueryRequest<'a> {
    /// A request with no deadline and seed 0.
    pub fn new(
        bitmap: &'a BitmapIndex,
        z_attr: usize,
        x_attr: usize,
        target: Vec<f64>,
        cfg: HistSimConfig,
    ) -> Self {
        QueryRequest {
            bitmap,
            z_attr,
            x_attr,
            target,
            cfg,
            seed: 0,
            deadline: None,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One query over a live-table snapshot, as submitted by a client. The
/// bitmap-free twin of [`QueryRequest`]: a snapshot carries its own
/// exact per-attribute indexes, frozen at capture time, so there is
/// nothing external to reference.
#[derive(Debug, Clone)]
pub struct SnapshotRequest {
    /// Candidate attribute (`Z`) index.
    pub z_attr: usize,
    /// Grouping attribute (`X`) index.
    pub x_attr: usize,
    /// Normalized visual target (length `|V_X|`).
    pub target: Vec<f64>,
    /// HistSim parameters.
    pub cfg: HistSimConfig,
    /// Seed for the per-shard random scan starts.
    pub seed: u64,
    /// Relative deadline, as in [`QueryRequest::deadline`].
    pub deadline: Option<Duration>,
}

impl SnapshotRequest {
    /// A request with no deadline and seed 0.
    pub fn new(z_attr: usize, x_attr: usize, target: Vec<f64>, cfg: HistSimConfig) -> Self {
        SnapshotRequest {
            z_attr,
            x_attr,
            target,
            cfg,
            seed: 0,
            deadline: None,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Admission errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission bound is reached; retry after some queries finish.
    Saturated {
        /// Queries currently admitted and not yet terminal.
        active: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
    /// The request failed validation (e.g. degenerate table or config).
    Invalid(CoreError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Saturated { active, limit } => {
                write!(f, "service saturated: {active} active of {limit} allowed")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The multi-query scheduler. Created by [`QueryService::serve`]; see
/// the [module docs](self) for the architecture.
#[derive(Debug)]
pub struct QueryService<'env> {
    backend: &'env dyn StorageBackend,
    config: ServiceConfig,
    sched: Scheduler<'env>,
    next_id: AtomicU64,
    active: AtomicUsize,
    /// Round-robin cursor for shard tasks' home queues.
    next_home: AtomicUsize,
}

impl<'env> QueryService<'env> {
    /// Runs a service session: spawns the worker pool, hands the service
    /// to `f`, and on return shuts the pool down (cancelling any queries
    /// still in flight) before joining every worker.
    pub fn serve<R>(
        backend: &'env dyn StorageBackend,
        config: ServiceConfig,
        f: impl FnOnce(&QueryService<'env>) -> R,
    ) -> R {
        assert!(config.workers > 0, "worker pool must be positive");
        assert!(config.shards_per_query > 0, "shard count must be positive");
        assert!(config.quantum_blocks > 0, "quantum must be positive");
        assert!(config.max_admitted > 0, "admission bound must be positive");
        if let QuantumPolicy::Adaptive {
            target,
            min_blocks,
            max_blocks,
        } = config.quantum
        {
            assert!(!target.is_zero(), "quantum time slice must be positive");
            assert!(min_blocks > 0, "quantum floor must be positive");
            assert!(min_blocks <= max_blocks, "quantum bounds must be ordered");
        }
        let svc = QueryService {
            backend,
            config,
            sched: Scheduler::new(config.workers, config.work_stealing),
            next_id: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            next_home: AtomicUsize::new(0),
        };
        std::thread::scope(|scope| {
            for w in 0..config.workers {
                let svc = &svc;
                scope.spawn(move || worker_loop(svc, w));
            }
            let r = f(&svc);
            svc.sched.shutdown();
            r
        })
    }

    /// The service configuration in use.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Scheduler counters (quanta executed, tasks stolen).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// Queries admitted and not yet terminal.
    pub fn active_queries(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Admits one query over the service's shared backend, returning its
    /// handle. Fails fast — [`ServiceError::Saturated`] at the admission
    /// bound, [`ServiceError::Invalid`] when the driver cannot be built —
    /// and never blocks.
    pub fn submit(&self, req: QueryRequest<'env>) -> Result<QueryHandle, ServiceError> {
        self.reserve_slot()?;
        let job = QueryJob::from_backend(
            self.backend,
            req.bitmap,
            req.z_attr,
            req.x_attr,
            req.target,
            req.cfg,
        );
        self.admit_reserved(job, req.seed, req.deadline)
    }

    /// Admits one query over a live-table [`Snapshot`] the query will
    /// co-own: the snapshot (and the exact bitmap it froze) ride inside
    /// the job, so the caller may take snapshots *inside* the serve
    /// scope — including one per admission — while writers keep
    /// appending to the live table underneath. Admission bounds, the
    /// demand protocol, scheduling fairness and progressive results are
    /// identical to [`Self::submit`].
    pub fn submit_snapshot(
        &self,
        snapshot: Arc<Snapshot>,
        req: SnapshotRequest,
    ) -> Result<QueryHandle, ServiceError> {
        // Pre-validate what `QueryJob`'s constructor would otherwise
        // assert: a service must reject malformed requests, not panic.
        let schema = fastmatch_store::backend::StorageBackend::schema(&*snapshot);
        if req.z_attr >= schema.len() || req.x_attr >= schema.len() {
            return Err(ServiceError::Invalid(CoreError::InvalidConfig(format!(
                "attribute out of range (z {}, x {}, schema {})",
                req.z_attr,
                req.x_attr,
                schema.len()
            ))));
        }
        if req.target.len() != schema.attr(req.x_attr).cardinality as usize {
            return Err(ServiceError::Invalid(CoreError::InvalidTarget(format!(
                "target arity {} != |V_X| {}",
                req.target.len(),
                schema.attr(req.x_attr).cardinality
            ))));
        }
        self.reserve_slot()?;
        let job =
            QueryJob::from_snapshot_shared(snapshot, req.z_attr, req.x_attr, req.target, req.cfg);
        self.admit_reserved(job, req.seed, req.deadline)
    }

    /// Takes a fresh point-in-time snapshot of `live` and admits one
    /// query over it — the live-table admission path. Returns the
    /// snapshot alongside the handle so the caller can correlate the
    /// result with the watermark it reflects.
    pub fn submit_live(
        &self,
        live: &LiveTable,
        req: SnapshotRequest,
    ) -> Result<(Arc<Snapshot>, QueryHandle), ServiceError> {
        let snapshot = Arc::new(live.snapshot());
        let handle = self.submit_snapshot(Arc::clone(&snapshot), req)?;
        Ok((snapshot, handle))
    }

    /// Reserves one admission slot atomically (CAS loop): a plain
    /// load-then-increment would let concurrent submits race past the
    /// bound. The slot is released on rejection and when the query's
    /// outcome is published.
    fn reserve_slot(&self) -> Result<(), ServiceError> {
        if self.sched.is_shutdown() {
            return Err(ServiceError::ShuttingDown);
        }
        let mut active = self.active.load(Ordering::Relaxed);
        loop {
            if !state::admission_has_capacity(active, self.config.max_admitted) {
                return Err(ServiceError::Saturated {
                    active,
                    limit: self.config.max_admitted,
                });
            }
            match self.active.compare_exchange_weak(
                active,
                active + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => active = now,
            }
        }
    }

    /// Builds the driver for an already-reserved admission slot, then
    /// decomposes the query into shard tasks on the shared scheduler —
    /// the backend-agnostic tail of every submit path.
    fn admit_reserved(
        &self,
        job: QueryJob<'env>,
        seed: u64,
        deadline: Option<Duration>,
    ) -> Result<QueryHandle, ServiceError> {
        let admitted = (|| {
            let mut driver = Driver::new(&job).map_err(ServiceError::Invalid)?;
            let demand = SharedDemand::new(job.num_candidates());
            // Initial publication: degenerate configs may already satisfy
            // stage boundaries, and shard tasks must never observe the
            // pre-publication zero state as real demand.
            driver
                .advance_and_publish(&demand)
                .map_err(ServiceError::Invalid)?;
            Ok((driver, demand))
        })();
        let (driver, demand) = match admitted {
            Ok(parts) => parts,
            Err(e) => {
                // Validation failed: release the reserved admission slot.
                self.active.fetch_sub(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let done_at_submit = driver.hs.is_done();

        let nb = job.layout.num_blocks();
        let shards = self.config.shards_per_query.min(nb).max(1);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(QueryShared::new(id));
        let reader = job.reader();
        let query = Arc::new(QueryState {
            id,
            job,
            demand,
            engine: Mutex::new(EngineState {
                driver: Some(driver),
                io: Default::default(),
                live_shards: shards,
                stuck_rounds: 0,
                verdict: done_at_submit.then_some(Verdict::Completed),
            }),
            shared: Arc::clone(&shared),
            deadline: deadline.map(|d| Instant::now() + d),
            live_shards_hint: AtomicUsize::new(shards),
        });
        // The admission slot reserved above is released when the query's
        // outcome is published (the last shard's retire).
        for w in 0..shards {
            let shard_reader = reader.shard(w, shards);
            let start = crate::exec::start_block(
                shard_reader.num_blocks(),
                seed.wrapping_add(w as u64).wrapping_mul(0x9e37_79b9),
            );
            let n_local = shard_reader.num_blocks();
            let home = self.next_home.fetch_add(1, Ordering::Relaxed) % self.config.workers;
            self.sched.enqueue(ShardTask {
                query: Arc::clone(&query),
                reader: shard_reader,
                visited: vec![false; n_local],
                visited_count: 0,
                start,
                cursor: 0,
                pass_epoch: 0,
                read_this_pass: false,
                flushed: Default::default(),
                home,
                ewma_ns_per_block: 0.0,
            });
        }
        Ok(QueryHandle { shared })
    }
}

/// What a finished quantum wants the scheduler to do with its task.
enum Next {
    /// More work possible now: requeue at the FIFO tail.
    Requeue,
    /// A full pass found nothing readable under this epoch: park.
    Park { pass_epoch: u64 },
    /// The shard is finished (exhausted, or the query is terminal).
    Retire,
}

fn worker_loop(svc: &QueryService<'_>, worker: usize) {
    while let Some(task) = svc.sched.pop(worker) {
        run_quantum(svc, task);
    }
}

/// The per-quantum block budget for a shard whose smoothed cost
/// estimate is `ewma_ns_per_block` (`0.0` = no observation yet), under
/// the configured policy; see [`QuantumPolicy`]. Pure — exposed so the
/// `admission_steal` model in `fastmatch-check` can bound quanta with
/// the real policy arithmetic rather than a parallel reimplementation.
pub fn quantum_budget(config: &ServiceConfig, ewma_ns_per_block: f64) -> usize {
    match config.quantum {
        QuantumPolicy::Fixed => config.quantum_blocks,
        QuantumPolicy::Adaptive {
            target,
            min_blocks,
            max_blocks,
        } => {
            if ewma_ns_per_block > 0.0 {
                let blocks = target.as_nanos() as f64 / ewma_ns_per_block;
                (blocks as usize).clamp(min_blocks, max_blocks)
            } else {
                config.quantum_blocks.clamp(min_blocks, max_blocks)
            }
        }
    }
}

/// EWMA smoothing factor for observed per-block cost: new observations
/// get 30% weight, so one cache-anomalous quantum cannot whipsaw the
/// budget, while a genuine regime change (the shard's pages went cold)
/// converges within a few quanta.
const EWMA_ALPHA: f64 = 0.3;

/// Runs one scheduling quantum of one shard task, then routes the task
/// (requeue / park / retire) and performs any terminal bookkeeping.
fn run_quantum<'env>(svc: &QueryService<'env>, mut task: ShardTask<'env>) {
    let query = Arc::clone(&task.query);

    // Terminal and cooperative checks, once per quantum.
    if svc.sched.is_shutdown() || query.shared.cancel_requested() {
        finalize_reason(svc, &query, Verdict::Cancelled);
        retire(svc, task);
        return;
    }
    if query.deadline_expired() {
        finalize_reason(svc, &query, Verdict::DeadlineExpired);
        retire(svc, task);
        return;
    }
    if query.demand.mode() == DemandMode::Stop {
        retire(svc, task);
        return;
    }
    let n_local = task.reader.num_blocks();
    if n_local == 0 || task.visited_count == n_local {
        retire(svc, task);
        return;
    }

    // The ingestion quantum: walk the shard in rotated pass order,
    // reading demand-marked unvisited blocks into an accumulator, at
    // most `quantum_blocks` of them.
    //
    // KEEP IN SYNC with `shard_worker` in exec/parallel_match.rs: this is
    // the same demand-marked shard walk (rotated two-segment order,
    // MARK_WINDOW lookahead marking, visited set, fruitless-pass
    // detection), differing only in that it is *resumable* — bounded by
    // the quantum and re-entered with the cursor where it left off —
    // where ParallelMatch's worker owns its thread and runs passes to
    // exhaustion. A behavioral fix to demand marking or pass-epoch
    // bookkeeping in either walker almost certainly applies to both.
    let job = &query.job;
    let lo = task.reader.blocks().start;
    let mut acc = HistAccumulator::new(job.num_candidates(), job.num_groups());
    // Per-block delta buffer; its touched list is the block's distinct
    // candidates (one traversal per block, as in `shard_worker`).
    let mut block_acc = HistAccumulator::new(job.num_candidates(), job.num_groups());
    let mut touches: Vec<BlockTouch> = Vec::new();
    let mut reads = 0usize;
    let mut marks = vec![false; MARK_WINDOW];
    let mut park_epoch: Option<u64> = None;
    let mut failure: Option<CoreError> = None;
    let budget = quantum_budget(&svc.config, task.ewma_ns_per_block);
    let adaptive = matches!(svc.config.quantum, QuantumPolicy::Adaptive { .. });
    let walk_started = adaptive.then(Instant::now);
    svc.sched.note_quantum();

    'quantum: while reads < budget {
        if task.cursor == 0 {
            task.pass_epoch = query.demand.epoch();
            task.read_this_pass = false;
        }
        // Rotated order: position `cursor` maps to local block
        // `(start + cursor) % n_local`; windows never cross the wrap
        // point, so bitmap marking stays contiguous.
        let first_len = n_local - task.start;
        let (seg_off, seg_remaining) = if task.cursor < first_len {
            (task.start + task.cursor, first_len - task.cursor)
        } else {
            (task.cursor - first_len, n_local - task.cursor)
        };
        let win = MARK_WINDOW.min(seg_remaining);
        match query.demand.mode() {
            DemandMode::Stop => break 'quantum,
            DemandMode::ReadAll => marks[..win].fill(true),
            DemandMode::AnyActive => {
                marks[..win].fill(false);
                let active = query.demand.active_candidates();
                mark_lookahead(&job.bitmap, &active, lo + seg_off, &mut marks[..win]);
            }
        }
        // Hint the window's read-runs ahead of ingestion — the whole
        // window, not just this quantum's budget: blocks past the budget
        // are precisely "the shard's next ingestion quantum", and warming
        // them now is what overlaps their I/O with this quantum's
        // compute. (Skipped blocks are never hinted.)
        crate::exec::prefetch_marked(job, lo, seg_off, &marks[..win], &task.visited);
        let mut processed = 0usize;
        // Unvisited-unmarked blocks are skipped in maximal contiguous
        // runs via the range-validated bulk API; a run may only extend
        // over blocks this quantum actually examined.
        let mut skip_from: Option<usize> = None;
        for (i, &marked) in marks[..win].iter().enumerate() {
            let li = seg_off + i;
            if reads >= budget {
                break;
            }
            processed += 1;
            if task.visited[li] || marked {
                if let Some(s) = skip_from.take() {
                    task.reader.skip_blocks(lo + s..lo + li);
                }
            }
            if task.visited[li] {
                continue;
            }
            let b = lo + li;
            if marked {
                task.visited[li] = true;
                task.visited_count += 1;
                task.read_this_pass = true;
                reads += 1;
                let (zs, xs) = match task.reader.try_block_slices(b, job.z_attr, job.x_attr) {
                    Ok(pair) => pair,
                    Err(e) => {
                        failure = Some(crate::exec::storage_err(e));
                        break 'quantum;
                    }
                };
                block_acc.accumulate(zs, xs);
                touches.push(BlockTouch {
                    id: b as u32,
                    candidates: block_acc.touched().to_vec(),
                });
                acc.merge_from(&block_acc);
                block_acc.clear();
            } else if skip_from.is_none() {
                skip_from = Some(li);
            }
        }
        if let Some(s) = skip_from.take() {
            task.reader.skip_blocks(lo + s..lo + seg_off + processed);
        }
        task.cursor += processed;
        if task.cursor >= n_local {
            let pass_epoch = task.pass_epoch;
            let had_reads = task.read_this_pass;
            task.cursor = 0;
            if !had_reads {
                park_epoch = Some(pass_epoch);
                break 'quantum;
            }
        }
    }

    // Fold the observed per-block cost into the shard's estimate (only
    // quanta that actually read carry signal; walk overhead over
    // skipped blocks is charged to the blocks that were read, which is
    // what the budget should account for anyway).
    if let Some(t0) = walk_started {
        if reads > 0 {
            let per_block = t0.elapsed().as_nanos() as f64 / reads as f64;
            task.ewma_ns_per_block = if task.ewma_ns_per_block > 0.0 {
                (1.0 - EWMA_ALPHA) * task.ewma_ns_per_block + EWMA_ALPHA * per_block
            } else {
                per_block
            };
        }
    }

    // Merge the quantum under the query's engine mutex, then decide the
    // task's next life.
    let mut merged = false;
    let next = {
        let mut eng = query.engine.lock().unwrap();
        task.flush_io(&mut eng);
        if let Some(e) = failure {
            eng.set_verdict(Verdict::Failed(e));
            query.demand.set_mode(DemandMode::Stop);
        } else if eng.verdict.is_none() && !touches.is_empty() {
            eng.stuck_rounds = 0;
            let d = eng.driver.as_mut().expect("driver taken before verdict");
            d.merge_batch(acc, &touches);
            let advanced = d.advance_and_publish(&query.demand);
            let done = advanced.is_ok() && d.hs.is_done();
            match advanced {
                Ok(()) => {
                    if done {
                        eng.set_verdict(Verdict::Completed);
                    }
                }
                Err(e) => {
                    eng.set_verdict(Verdict::Failed(e));
                    query.demand.set_mode(DemandMode::Stop);
                }
            }
            merged = true;
            refresh_progress(&query, &mut eng);
        }
        if eng.verdict.is_some() || task.visited_count == n_local {
            Next::Retire
        } else if let Some(pass_epoch) = park_epoch {
            Next::Park { pass_epoch }
        } else {
            Next::Requeue
        }
    };
    if merged {
        // The merge republished demand (epoch bump): wake this query's
        // parked shards so they re-evaluate under the fresh snapshot.
        svc.sched.wake_query(query.id);
    }
    match next {
        Next::Requeue => svc.sched.enqueue(task),
        Next::Retire => retire(svc, task),
        Next::Park { pass_epoch } => {
            if svc.sched.park(task, pass_epoch) {
                stuck_valve(svc, &query);
            }
        }
    }
}

/// Records a terminal reason (cancel / deadline), publishes `Stop`, and
/// wakes the query's parked shards so every task retires promptly.
fn finalize_reason(svc: &QueryService<'_>, query: &QueryState<'_>, verdict: Verdict) {
    {
        let mut eng = query.engine.lock().unwrap();
        eng.set_verdict(verdict);
        query.demand.set_mode(DemandMode::Stop);
    }
    svc.sched.wake_query(query.id);
}

/// The all-parked valve: every live shard of `query` parked with no
/// merge in between. Demand should then be impossible to satisfy only
/// transiently (a republication races the parks); republish to give the
/// shards a fresh epoch, and fail the query loudly after
/// [`MAX_STUCK_ROUNDS`] consecutive fruitless rounds rather than cycle
/// forever.
fn stuck_valve(svc: &QueryService<'_>, query: &QueryState<'_>) {
    {
        let mut eng = query.engine.lock().unwrap();
        if eng.verdict.is_none() {
            eng.stuck_rounds += 1;
            if eng.stuck_rounds >= MAX_STUCK_ROUNDS {
                eng.set_verdict(Verdict::Failed(CoreError::PhaseViolation(
                    "no readable blocks for outstanding demand".into(),
                )));
                query.demand.set_mode(DemandMode::Stop);
            } else {
                let d = eng.driver.as_mut().expect("driver taken before verdict");
                if let Err(e) = d.advance_and_publish(&query.demand) {
                    eng.set_verdict(Verdict::Failed(e));
                    query.demand.set_mode(DemandMode::Stop);
                }
            }
        }
    }
    svc.sched.wake_query(query.id);
}

/// Refreshes the handle's progressive snapshot (caller holds the engine
/// mutex).
fn refresh_progress(query: &QueryState<'_>, eng: &mut EngineState) {
    let d = match &eng.driver {
        Some(d) => d,
        None => return,
    };
    let phase = d.hs.phase();
    let exact = d.hs.diagnostics().exact_finish;
    let samples = (0..query.job.num_candidates() as u32)
        .map(|c| d.hs.samples_for(c))
        .sum();
    query.shared.set_progress(QueryProgress {
        phase,
        guarantee: GuaranteeState::from_phase(phase, exact),
        current_topk: d.hs.current_topk(),
        samples,
        io: eng.io,
    });
}

/// Retires one shard task: folds its remaining I/O into the query and,
/// when it is the *last* live shard, converts the verdict into the
/// published outcome (finishing the driver, exhausted-exact if no
/// verdict was recorded).
fn retire<'env>(svc: &QueryService<'env>, mut task: ShardTask<'env>) {
    let query = Arc::clone(&task.query);
    let publish = {
        let mut eng = query.engine.lock().unwrap();
        task.flush_io(&mut eng);
        eng.live_shards -= 1;
        query
            .live_shards_hint
            .store(eng.live_shards, Ordering::Relaxed);
        if eng.live_shards > 0 {
            None
        } else {
            let verdict = eng.verdict.take();
            let driver = eng.driver.take();
            let io = eng.io;
            let outcome = match verdict {
                Some(Verdict::Cancelled) => QueryOutcome::Cancelled,
                Some(Verdict::DeadlineExpired) => QueryOutcome::DeadlineExpired,
                Some(Verdict::Failed(e)) => QueryOutcome::Failed(e),
                // `Completed`, or no verdict at all — the latter means
                // every shard consumed its whole block range without the
                // state machine terminating: the table is exhausted and
                // the results are exact.
                Some(Verdict::Completed) | None => {
                    let mut d = driver.expect("driver must exist until the last retire");
                    let run = (|| {
                        if !d.hs.is_done() {
                            d.finish_exhausted()?;
                        }
                        d.finish(io)
                    })();
                    match run {
                        Ok(out) => QueryOutcome::Finished(out),
                        Err(e) => QueryOutcome::Failed(e),
                    }
                }
            };
            Some((outcome, io))
        }
    };
    if let Some((outcome, io)) = publish {
        query.demand.set_mode(DemandMode::Stop);
        query
            .shared
            .publish_outcome(final_progress(&outcome), io, outcome);
        svc.active.fetch_sub(1, Ordering::Relaxed);
    } else {
        // The live set shrank: the query's remaining shards may all be
        // parked already, and with this shard gone no parking transition
        // is left to trigger the valve — re-evaluate all-parked here,
        // exactly as `ParallelMatch` re-checks on `ShardExhausted`.
        let live = query.live_shards_hint.load(Ordering::Relaxed);
        if svc.sched.all_parked(query.id, live) {
            stuck_valve(svc, &query);
        }
    }
}

/// The terminal progress snapshot for a *finished* outcome. Cancelled,
/// deadline-expired and failed queries return `None`: their last
/// progressive snapshot is the best answer the client will ever get
/// (the whole point of pairing deadlines with progressive results), so
/// it must be preserved, not replaced by an empty terminal one.
fn final_progress(outcome: &QueryOutcome) -> Option<QueryProgress> {
    use fastmatch_core::histsim::PhaseKind;
    match outcome {
        QueryOutcome::Finished(out) => Some(QueryProgress {
            phase: PhaseKind::Done,
            guarantee: GuaranteeState::from_phase(PhaseKind::Done, out.stats.exact_finish),
            current_topk: out.candidate_ids(),
            samples: out.stats.samples,
            io: out.stats.io,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_store::backend::MemBackend;
    use fastmatch_store::bitmap::BitmapIndex;
    use fastmatch_store::block::BlockLayout;
    use fastmatch_store::schema::{AttrDef, Schema};
    use fastmatch_store::table::Table;

    fn table() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 4), AttrDef::new("x", 2)]);
        let rows = 4096;
        let z: Vec<u32> = (0..rows as u32).map(|r| r.wrapping_mul(7) % 4).collect();
        let x: Vec<u32> = (0..rows as u32).map(|r| r.wrapping_mul(3) % 2).collect();
        Table::new(schema, vec![z, x])
    }

    fn cfg() -> HistSimConfig {
        HistSimConfig {
            k: 2,
            epsilon: 0.2,
            delta: 0.05,
            sigma: 0.0,
            stage1_samples: 500,
            ..HistSimConfig::default()
        }
    }

    #[test]
    fn single_query_completes_with_attributed_io() {
        let t = table();
        let layout = BlockLayout::new(t.n_rows(), 64);
        let backend = MemBackend::new(&t, layout);
        let bitmap = BitmapIndex::build(&t, 0, &layout);
        let outcome = QueryService::serve(&backend, ServiceConfig::default(), |svc| {
            let h = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg()))
                .unwrap();
            h.wait()
        });
        let out = outcome.finished().expect("query must finish").clone();
        assert_eq!(out.candidate_ids().len(), 2);
        assert!(out.stats.io.blocks_read > 0, "io must be attributed");
    }

    #[test]
    fn cancellation_resolves_promptly() {
        let t = table();
        let layout = BlockLayout::new(t.n_rows(), 64);
        let backend = MemBackend::new(&t, layout);
        let bitmap = BitmapIndex::build(&t, 0, &layout);
        // Slow every block read down so the query cannot finish before
        // the cancel lands.
        let config = ServiceConfig::default()
            .with_workers(2)
            .with_quantum_blocks(1);
        let outcome = QueryService::serve(&backend, config, |svc| {
            let req = QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg());
            let h = svc.submit(req).unwrap();
            h.cancel();
            h.wait()
        });
        assert!(
            matches!(outcome, QueryOutcome::Cancelled | QueryOutcome::Finished(_)),
            "cancel must resolve (cancelled, or finished if it won the race): {outcome:?}"
        );
    }

    #[test]
    fn zero_deadline_expires() {
        let t = table();
        let layout = BlockLayout::new(t.n_rows(), 64);
        let backend = MemBackend::new(&t, layout);
        let bitmap = BitmapIndex::build(&t, 0, &layout);
        let (outcome, progress) = QueryService::serve(&backend, ServiceConfig::default(), |svc| {
            let req = QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg())
                .with_deadline(Duration::ZERO);
            let h = svc.submit(req).unwrap();
            (h.wait(), h.progress())
        });
        assert!(
            matches!(outcome, QueryOutcome::DeadlineExpired),
            "zero deadline must expire: {outcome:?}"
        );
        // The last progressive snapshot survives the terminal outcome —
        // it must not be replaced by a fake phase-Done empty one (the
        // state machine never reached Done here).
        assert_ne!(
            progress.phase,
            fastmatch_core::histsim::PhaseKind::Done,
            "expired query must keep its honest last snapshot"
        );
    }

    #[test]
    fn admission_bound_rejects_when_saturated() {
        let t = table();
        let layout = BlockLayout::new(t.n_rows(), 64);
        let backend = MemBackend::new(&t, layout);
        let bitmap = BitmapIndex::build(&t, 0, &layout);
        QueryService::serve(
            &backend,
            ServiceConfig::default()
                .with_max_admitted(1)
                .with_workers(1),
            |svc| {
                // Submit a slow query, then immediately try a second one:
                // the first may still be active (it can also finish fast —
                // then the second submit simply succeeds, so only assert
                // the error *shape* when it appears).
                let h = svc
                    .submit(QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg()))
                    .unwrap();
                match svc.submit(QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg())) {
                    Err(ServiceError::Saturated { active, limit }) => {
                        assert_eq!(limit, 1);
                        assert!(active >= 1);
                    }
                    Ok(h2) => {
                        h2.wait();
                    }
                    Err(other) => panic!("unexpected admission error: {other}"),
                }
                h.wait();
            },
        );
    }

    #[test]
    fn handle_outliving_the_scope_still_resolves() {
        let t = table();
        let layout = BlockLayout::new(t.n_rows(), 64);
        let backend = MemBackend::new(&t, layout);
        let bitmap = BitmapIndex::build(&t, 0, &layout);
        // A handle can legally outlive the serve scope: it must resolve
        // (either the query finished in time or shutdown cancelled it).
        let handle = QueryService::serve(&backend, ServiceConfig::default(), |svc| {
            svc.submit(QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg()))
                .unwrap()
        });
        let out = handle.wait();
        assert!(
            matches!(out, QueryOutcome::Finished(_) | QueryOutcome::Cancelled),
            "{out:?}"
        );
    }

    #[test]
    fn quantum_budget_follows_policy() {
        let fixed = ServiceConfig::default().with_quantum_blocks(48);
        assert_eq!(quantum_budget(&fixed, 0.0), 48);
        assert_eq!(quantum_budget(&fixed, 1e9), 48, "fixed ignores the EWMA");
        let adaptive = ServiceConfig::default()
            .with_quantum_blocks(48)
            .with_quantum_policy(QuantumPolicy::Adaptive {
                target: Duration::from_micros(100),
                min_blocks: 8,
                max_blocks: 512,
            });
        // No observation yet: initial guess, clamped.
        assert_eq!(quantum_budget(&adaptive, 0.0), 48);
        // 100 µs target / 1 µs per block = 100 blocks.
        assert_eq!(quantum_budget(&adaptive, 1_000.0), 100);
        // Cache-hot shard (1 ns/block) hits the ceiling, cold shard
        // (1 ms/block) the floor.
        assert_eq!(quantum_budget(&adaptive, 1.0), 512);
        assert_eq!(quantum_budget(&adaptive, 1_000_000.0), 8);
    }

    #[test]
    #[should_panic(expected = "quantum bounds must be ordered")]
    fn degenerate_adaptive_policy_is_rejected() {
        let _ = ServiceConfig::default().with_quantum_policy(QuantumPolicy::Adaptive {
            target: Duration::from_micros(100),
            min_blocks: 64,
            max_blocks: 8,
        });
    }

    #[test]
    fn adaptive_service_completes_and_counts_quanta() {
        let t = table();
        let layout = BlockLayout::new(t.n_rows(), 64);
        let backend = MemBackend::new(&t, layout);
        let bitmap = BitmapIndex::build(&t, 0, &layout);
        let config = ServiceConfig::default()
            .with_workers(2)
            .with_quantum_blocks(8)
            .with_adaptive_quantum(Duration::from_micros(200));
        let (outcome, stats) = QueryService::serve(&backend, config, |svc| {
            let h = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg()))
                .unwrap();
            (h.wait(), svc.sched_stats())
        });
        assert!(outcome.finished().is_some(), "{outcome:?}");
        assert!(stats.quanta > 0, "quanta must be counted: {stats:?}");
    }

    #[test]
    fn disabled_stealing_never_steals() {
        let t = table();
        let layout = BlockLayout::new(t.n_rows(), 64);
        let backend = MemBackend::new(&t, layout);
        let bitmap = BitmapIndex::build(&t, 0, &layout);
        let config = ServiceConfig::default()
            .with_workers(4)
            .with_work_stealing(false);
        let stats = QueryService::serve(&backend, config, |svc| {
            for seed in 0..4 {
                let h = svc
                    .submit(QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg()).with_seed(seed))
                    .unwrap();
                h.wait();
            }
            svc.sched_stats()
        });
        assert_eq!(stats.steals, 0, "{stats:?}");
        assert!(stats.quanta > 0);
    }

    #[test]
    fn progress_snapshots_are_monotone_enough() {
        let t = table();
        let layout = BlockLayout::new(t.n_rows(), 64);
        let backend = MemBackend::new(&t, layout);
        let bitmap = BitmapIndex::build(&t, 0, &layout);
        QueryService::serve(&backend, ServiceConfig::default(), |svc| {
            let h = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, vec![0.5, 0.5], cfg()))
                .unwrap();
            let out = h.wait();
            let progress = h.progress();
            assert_eq!(progress.phase, fastmatch_core::histsim::PhaseKind::Done);
            let finished = out.finished().expect("must finish");
            assert_eq!(progress.current_topk, finished.candidate_ids());
            assert!(matches!(
                progress.guarantee,
                GuaranteeState::Full | GuaranteeState::Exact
            ));
        });
    }
}
