//! Lock-free state shared between FastMatch's statistics/I/O side and its
//! lookahead (sampling-engine) thread (paper §4.2, Challenge 4).
//!
//! The lookahead thread needs each candidate's *active* status to apply
//! AnyActive selection; the main thread owns the authoritative HistSim
//! demand and publishes snapshots here. Freshness is deliberately relaxed
//! — the whole point of lookahead is that slightly stale active states are
//! acceptable in exchange for never blocking I/O.
//!
//! ## Publication ordering
//!
//! Each publication is a *complete* snapshot: per-candidate `remaining`
//! is stored first, the mode second, and the `epoch` counter is bumped
//! **last**, exactly once, with release ordering. A reader that parks on
//! the epoch and wakes on a new value therefore always observes the full
//! publication that bumped it — never a fresh epoch paired with a stale
//! mode or stale demand. (The original protocol bumped the epoch once in
//! `set_mode` and once in a separate `publish_remaining`, so a worker
//! woken by the first bump could act on a half-published snapshot —
//! re-reading an entire pass under a stale `ReadAll`, or seeing
//! `AnyActive` with the previous round's counts. The regression test in
//! `tests/demand_ordering.rs` fails under that ordering.)

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Demand mode published to the lookahead thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandMode {
    /// Read every unread block (stage 1 and exact fallback).
    ReadAll,
    /// Apply AnyActive selection with the published per-candidate demand.
    AnyActive,
    /// The run is over; the lookahead thread should exit.
    Stop,
}

/// One primitive store of a demand publication. [`SharedDemand::publish`]
/// executes these in exactly the order of [`PUBLISH_ORDER`]; the
/// `demand_publish` model in `fastmatch-check` enumerates interleavings
/// of the same actions against parked and polling readers, so the order
/// here and the order the model checks cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishAction {
    /// Store every per-candidate `remaining` count (relaxed; the later
    /// release store orders them for readers).
    StoreRemaining,
    /// Store the mode flag (release, so mode-polling readers also see
    /// the demand published with or before the mode they read).
    StoreMode,
    /// Bump the epoch counter once, with release ordering — the *only*
    /// bump of the publication, and always the final action.
    BumpEpoch,
}

/// The load-bearing publication order: `remaining → mode → epoch`, one
/// epoch bump per publication, last. Checked by `fastmatch-check`'s
/// `demand_publish` model (invariants `wake-sees-complete-mode`,
/// `wake-sees-complete-demand`, `mode-implies-demand`,
/// `one-bump-per-publish`); the historical PR-2 two-bump ordering is
/// kept there as a mutation and demonstrably violates them.
pub const PUBLISH_ORDER: [PublishAction; 3] = [
    PublishAction::StoreRemaining,
    PublishAction::StoreMode,
    PublishAction::BumpEpoch,
];

/// Encodes a [`DemandMode`] into its published `u8` representation.
/// Extracted (with [`decode_mode`]) so the model and the real snapshot
/// agree on the wire form by construction.
pub const fn encode_mode(mode: DemandMode) -> u8 {
    match mode {
        DemandMode::ReadAll => 0,
        DemandMode::AnyActive => 1,
        DemandMode::Stop => 2,
    }
}

/// Decodes a published `u8` back into its [`DemandMode`]. Unknown values
/// decode to `Stop`: a reader confronted with a representation it does
/// not understand must wind down, never spin.
pub const fn decode_mode(v: u8) -> DemandMode {
    match v {
        0 => DemandMode::ReadAll,
        1 => DemandMode::AnyActive,
        _ => DemandMode::Stop,
    }
}

/// Shared demand snapshot: a mode flag plus per-candidate outstanding
/// sample counts (0 ⇒ inactive).
#[derive(Debug)]
pub struct SharedDemand {
    mode: AtomicU8,
    epoch: AtomicU64,
    remaining: Vec<AtomicU64>,
}

impl SharedDemand {
    /// Creates the snapshot in `ReadAll` mode with zero demand.
    pub fn new(num_candidates: usize) -> Self {
        SharedDemand {
            mode: AtomicU8::new(0),
            epoch: AtomicU64::new(0),
            remaining: (0..num_candidates).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publishes one complete demand snapshot: the per-candidate
    /// `remaining` counts (when the mode uses them), then the mode, then a
    /// **single** release-ordered epoch bump. Readers woken by the new
    /// epoch are guaranteed to see the whole snapshot; see the module
    /// docs for why the order is load-bearing.
    pub fn publish(&self, mode: DemandMode, remaining: Option<&[u64]>) {
        for action in PUBLISH_ORDER {
            match action {
                PublishAction::StoreRemaining => {
                    if let Some(rem) = remaining {
                        debug_assert_eq!(rem.len(), self.remaining.len());
                        for (slot, &v) in self.remaining.iter().zip(rem) {
                            slot.store(v, Ordering::Relaxed);
                        }
                    }
                }
                // Release on the mode store so even readers that poll
                // `mode()` without touching the epoch observe the demand
                // published with (or before) the mode they see.
                PublishAction::StoreMode => self.mode.store(encode_mode(mode), Ordering::Release),
                PublishAction::BumpEpoch => {
                    self.epoch.fetch_add(1, Ordering::Release);
                }
            }
        }
    }

    /// Publishes a mode-only snapshot (`ReadAll` / `Stop`), leaving the
    /// per-candidate counts untouched.
    pub fn set_mode(&self, mode: DemandMode) {
        self.publish(mode, None);
    }

    /// Monotone counter bumped exactly once per publication; lets an idle
    /// reader wait for *new* demand instead of re-scanning unchanged
    /// state.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Reads the current mode.
    pub fn mode(&self) -> DemandMode {
        decode_mode(self.mode.load(Ordering::Acquire))
    }

    /// Whether candidate `c` is currently active (possibly stale).
    #[inline]
    pub fn is_active(&self, c: usize) -> bool {
        self.remaining[c].load(Ordering::Relaxed) > 0
    }

    /// The published outstanding count for candidate `c` (possibly
    /// stale).
    #[inline]
    pub fn remaining(&self, c: usize) -> u64 {
        self.remaining[c].load(Ordering::Relaxed)
    }

    /// Snapshot of the active candidate ids (used per lookahead window).
    pub fn active_candidates(&self) -> Vec<u32> {
        self.remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| r.load(Ordering::Relaxed) > 0)
            .map(|(c, _)| c as u32)
            .collect()
    }

    /// Number of candidates tracked.
    pub fn len(&self) -> usize {
        self.remaining.len()
    }

    /// Whether the snapshot tracks no candidates.
    pub fn is_empty(&self) -> bool {
        self.remaining.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_order_ends_with_a_single_bump() {
        // The model checks interleavings of this exact order; the real
        // protocol's side of the contract is that the bump is unique and
        // final.
        let bumps = PUBLISH_ORDER
            .iter()
            .filter(|a| **a == PublishAction::BumpEpoch)
            .count();
        assert_eq!(bumps, 1);
        assert_eq!(*PUBLISH_ORDER.last().unwrap(), PublishAction::BumpEpoch);
    }

    #[test]
    fn mode_codec_roundtrips() {
        for m in [DemandMode::ReadAll, DemandMode::AnyActive, DemandMode::Stop] {
            assert_eq!(decode_mode(encode_mode(m)), m);
        }
        // Unknown representations decode to Stop, never to a live mode.
        assert_eq!(decode_mode(7), DemandMode::Stop);
    }

    #[test]
    fn mode_roundtrip() {
        let s = SharedDemand::new(3);
        assert_eq!(s.mode(), DemandMode::ReadAll);
        s.set_mode(DemandMode::AnyActive);
        assert_eq!(s.mode(), DemandMode::AnyActive);
        s.set_mode(DemandMode::Stop);
        assert_eq!(s.mode(), DemandMode::Stop);
    }

    #[test]
    fn demand_publication() {
        let s = SharedDemand::new(4);
        assert!(s.active_candidates().is_empty());
        s.publish(DemandMode::AnyActive, Some(&[0, 5, 0, 2]));
        assert!(!s.is_active(0));
        assert!(s.is_active(1));
        assert_eq!(s.remaining(1), 5);
        assert_eq!(s.active_candidates(), vec![1, 3]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn each_publication_bumps_epoch_once() {
        let s = SharedDemand::new(2);
        let e0 = s.epoch();
        s.publish(DemandMode::AnyActive, Some(&[1, 2]));
        assert_eq!(s.epoch(), e0 + 1);
        s.set_mode(DemandMode::ReadAll);
        assert_eq!(s.epoch(), e0 + 2);
    }

    #[test]
    fn cross_thread_visibility() {
        use std::sync::Arc;
        let s = Arc::new(SharedDemand::new(2));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.publish(DemandMode::AnyActive, Some(&[7, 0]));
        });
        h.join().unwrap();
        assert_eq!(s.mode(), DemandMode::AnyActive);
        assert!(s.is_active(0));
    }
}
