//! Lock-free state shared between FastMatch's statistics/I/O side and its
//! lookahead (sampling-engine) thread (paper §4.2, Challenge 4).
//!
//! The lookahead thread needs each candidate's *active* status to apply
//! AnyActive selection; the main thread owns the authoritative HistSim
//! demand and publishes snapshots here. Freshness is deliberately relaxed
//! — the whole point of lookahead is that slightly stale active states are
//! acceptable in exchange for never blocking I/O.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Demand mode published to the lookahead thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandMode {
    /// Read every unread block (stage 1 and exact fallback).
    ReadAll,
    /// Apply AnyActive selection with the published per-candidate demand.
    AnyActive,
    /// The run is over; the lookahead thread should exit.
    Stop,
}

/// Shared demand snapshot: a mode flag plus per-candidate outstanding
/// sample counts (0 ⇒ inactive).
#[derive(Debug)]
pub struct SharedDemand {
    mode: AtomicU8,
    epoch: AtomicU64,
    remaining: Vec<AtomicU64>,
}

impl SharedDemand {
    /// Creates the snapshot in `ReadAll` mode with zero demand.
    pub fn new(num_candidates: usize) -> Self {
        SharedDemand {
            mode: AtomicU8::new(0),
            epoch: AtomicU64::new(0),
            remaining: (0..num_candidates).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publishes a new mode.
    pub fn set_mode(&self, mode: DemandMode) {
        let v = match mode {
            DemandMode::ReadAll => 0,
            DemandMode::AnyActive => 1,
            DemandMode::Stop => 2,
        };
        self.mode.store(v, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Monotone counter bumped on every publication; lets an idle reader
    /// wait for *new* demand instead of re-scanning unchanged state.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Reads the current mode.
    pub fn mode(&self) -> DemandMode {
        match self.mode.load(Ordering::Acquire) {
            0 => DemandMode::ReadAll,
            1 => DemandMode::AnyActive,
            _ => DemandMode::Stop,
        }
    }

    /// Publishes the full per-candidate demand vector.
    pub fn publish_remaining(&self, remaining: &[u64]) {
        debug_assert_eq!(remaining.len(), self.remaining.len());
        for (slot, &v) in self.remaining.iter().zip(remaining) {
            slot.store(v, Ordering::Relaxed);
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Whether candidate `c` is currently active (possibly stale).
    #[inline]
    pub fn is_active(&self, c: usize) -> bool {
        self.remaining[c].load(Ordering::Relaxed) > 0
    }

    /// Snapshot of the active candidate ids (used per lookahead window).
    pub fn active_candidates(&self) -> Vec<u32> {
        self.remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| r.load(Ordering::Relaxed) > 0)
            .map(|(c, _)| c as u32)
            .collect()
    }

    /// Number of candidates tracked.
    pub fn len(&self) -> usize {
        self.remaining.len()
    }

    /// Whether the snapshot tracks no candidates.
    pub fn is_empty(&self) -> bool {
        self.remaining.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip() {
        let s = SharedDemand::new(3);
        assert_eq!(s.mode(), DemandMode::ReadAll);
        s.set_mode(DemandMode::AnyActive);
        assert_eq!(s.mode(), DemandMode::AnyActive);
        s.set_mode(DemandMode::Stop);
        assert_eq!(s.mode(), DemandMode::Stop);
    }

    #[test]
    fn demand_publication() {
        let s = SharedDemand::new(4);
        assert!(s.active_candidates().is_empty());
        s.publish_remaining(&[0, 5, 0, 2]);
        assert!(!s.is_active(0));
        assert!(s.is_active(1));
        assert_eq!(s.active_candidates(), vec![1, 3]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn cross_thread_visibility() {
        use std::sync::Arc;
        let s = Arc::new(SharedDemand::new(2));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.publish_remaining(&[7, 0]);
            s2.set_mode(DemandMode::AnyActive);
        });
        h.join().unwrap();
        assert_eq!(s.mode(), DemandMode::AnyActive);
        assert!(s.is_active(0));
    }
}
