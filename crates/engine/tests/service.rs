//! Integration tests for the multi-query `QueryService`: concurrent
//! execution over one shared backend must return exactly what serial
//! execution returns, with per-query I/O attributed, and the service's
//! control surface (progress, cancellation, deadlines, admission) must
//! behave under load.

use std::time::Duration;

use fastmatch_core::histsim::HistSimConfig;
use fastmatch_data::gen::{conditional_with_planted, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::uniform;
use fastmatch_engine::exec::{Executor, SyncMatchExec};
use fastmatch_engine::query::QueryJob;
use fastmatch_engine::service::{
    QueryOutcome, QueryRequest, QueryService, ServiceConfig, ServiceError,
};
use fastmatch_store::backend::StorageBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::file::FileBackend;
use fastmatch_store::table::Table;
use fastmatch_store::tempfile::TempBlockFile;

const GROUPS: usize = 8;

/// The planted fixture of the executor tests: five members far inside
/// the ε-boundary, so the correct matched set is unambiguous and every
/// run — serial or concurrent, any schedule — must return it.
fn test_table(rows: usize, seed: u64) -> Table {
    let dists = conditional_with_planted(
        60,
        &uniform(GROUPS),
        &[(0, 0.0), (2, 0.015), (5, 0.03), (9, 0.04), (15, 0.05)],
        0.20,
        seed ^ 0xab,
    );
    let specs = vec![
        ColumnSpec::new("z", 60, ColumnGen::PrimaryZipf { s: 1.2 }),
        ColumnSpec::new(
            "x",
            GROUPS as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    generate_table(&specs, rows, seed)
}

fn config() -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: 20_000,
        ..HistSimConfig::default()
    }
}

/// The acceptance scenario: 16 concurrent queries through one
/// `QueryService` over one shared, cache-bounded `FileBackend` must
/// return matched sets identical to their serial runs, each with its own
/// attributed `IoStats`.
#[test]
fn sixteen_concurrent_queries_match_their_serial_runs() {
    let rows = 150_000;
    let table = test_table(rows, 19);
    let scratch = TempBlockFile::new("service_16way");
    // Cache far below the ~2350×2 pages of the working set: queries
    // contend for real cache space and hit the disk path.
    let backend = FileBackend::create(scratch.path(), &table, 64)
        .unwrap()
        .with_cache_blocks(256);
    let bitmap = BitmapIndex::build(&table, 0, &backend.layout());

    // Serial reference: the same 16 (target, seed) mixes, one at a time,
    // through the synchronous single-query executor.
    let seeds: Vec<u64> = (0..16).map(|i| 1000 + 37 * i).collect();
    let serial: Vec<Vec<u32>> = seeds
        .iter()
        .map(|&seed| {
            let job = QueryJob::from_backend(&backend, &bitmap, 0, 1, uniform(GROUPS), config());
            let mut ids = SyncMatchExec.run(&job, seed).unwrap().candidate_ids();
            ids.sort_unstable();
            ids
        })
        .collect();

    // Concurrent: all 16 admitted at once, multiplexed over a small
    // worker pool (more queries than workers forces real interleaving).
    let service_cfg = ServiceConfig::default()
        .with_workers(4)
        .with_shards_per_query(4)
        .with_quantum_blocks(32);
    let outcomes = QueryService::serve(&backend, service_cfg, |svc| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                svc.submit(
                    QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(seed),
                )
                .expect("admission must succeed below the bound")
            })
            .collect();
        handles.iter().map(|h| h.wait()).collect::<Vec<_>>()
    });

    let mut total_hits = 0u64;
    let mut total_misses = 0u64;
    for (i, outcome) in outcomes.iter().enumerate() {
        let out = match outcome {
            QueryOutcome::Finished(out) => out,
            other => panic!("query {i} did not finish: {other:?}"),
        };
        let mut ids = out.candidate_ids();
        ids.sort_unstable();
        assert_eq!(
            ids, serial[i],
            "query {i}: concurrent matched set diverged from its serial run"
        );
        // Per-query I/O attribution: every query owns a non-trivial,
        // internally consistent accounting record.
        let io = out.stats.io;
        assert!(io.blocks_read > 0, "query {i}: no blocks attributed");
        assert!(io.tuples_read > 0, "query {i}: no tuples attributed");
        assert_eq!(
            io.pages_cache_hit + io.pages_cache_miss,
            2 * io.blocks_read,
            "query {i}: every block read is two attributed pages"
        );
        total_hits += io.pages_cache_hit;
        total_misses += io.pages_cache_miss;
    }
    // Attribution consistency with the shared cache: the global
    // counters include the serial reference runs too, so they must
    // dominate the concurrent session's attributed sums.
    assert!(
        total_misses > 0,
        "16 queries over a 256-page cache must miss"
    );
    let cs = backend.cache_stats();
    assert!(
        cs.hits >= total_hits && cs.misses >= total_misses,
        "global cache counters must dominate the attributed sums"
    );
    assert!(
        cs.pressure > 0,
        "an over-committed cache must show pressure"
    );
}

/// Concurrency must not change the answer relative to a *service* run of
/// concurrency 1 either (same machinery, no interleaving).
#[test]
fn concurrent_service_agrees_with_serial_service() {
    let rows = 120_000;
    let table = test_table(rows, 23);
    let scratch = TempBlockFile::new("service_serial_vs_conc");
    let backend = FileBackend::create(scratch.path(), &table, 64)
        .unwrap()
        .with_cache_blocks(512);
    let bitmap = BitmapIndex::build(&table, 0, &backend.layout());
    let seeds = [5u64, 17, 29, 43];

    let run = |workers: usize, concurrent: bool| -> Vec<Vec<u32>> {
        QueryService::serve(
            &backend,
            ServiceConfig::default().with_workers(workers),
            |svc| {
                if concurrent {
                    let handles: Vec<_> = seeds
                        .iter()
                        .map(|&s| {
                            svc.submit(
                                QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config())
                                    .with_seed(s),
                            )
                            .unwrap()
                        })
                        .collect();
                    handles
                        .iter()
                        .map(|h| {
                            let mut ids = h.wait().finished().expect("must finish").candidate_ids();
                            ids.sort_unstable();
                            ids
                        })
                        .collect()
                } else {
                    seeds
                        .iter()
                        .map(|&s| {
                            let h = svc
                                .submit(
                                    QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config())
                                        .with_seed(s),
                                )
                                .unwrap();
                            let mut ids = h.wait().finished().expect("must finish").candidate_ids();
                            ids.sort_unstable();
                            ids
                        })
                        .collect()
                }
            },
        )
    };
    let serial = run(1, false);
    let concurrent = run(4, true);
    assert_eq!(serial, concurrent);
}

/// Progressive results: a long query's snapshot must move through the
/// phases and finally equal the output; per-query attributed I/O must be
/// visible before completion.
#[test]
fn progress_reports_phases_and_io_before_completion() {
    let rows = 200_000;
    let table = test_table(rows, 31);
    let scratch = TempBlockFile::new("service_progress");
    let backend = FileBackend::create(scratch.path(), &table, 64)
        .unwrap()
        .with_cache_blocks(256);
    let bitmap = BitmapIndex::build(&table, 0, &backend.layout());
    QueryService::serve(
        &backend,
        ServiceConfig::default()
            .with_workers(2)
            .with_quantum_blocks(16),
        |svc| {
            let h = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(3))
                .unwrap();
            // Poll until some I/O is attributed mid-flight (or the query
            // finishes first — tiny quantum makes that unlikely).
            let mut saw_midflight_io = false;
            for _ in 0..10_000 {
                if h.is_done() {
                    break;
                }
                let p = h.progress();
                if p.io.blocks_read > 0 {
                    saw_midflight_io = true;
                    break;
                }
                std::thread::yield_now();
            }
            let out = h.wait();
            let finished = out.finished().expect("must finish");
            assert!(
                saw_midflight_io || finished.stats.io.blocks_read > 0,
                "attributed I/O must be observable"
            );
            let p = h.progress();
            assert_eq!(p.current_topk, finished.candidate_ids());
            assert_eq!(p.io, finished.stats.io, "final progress io == outcome io");
        },
    );
}

/// A deadline of zero must expire before any work lands; cancellation
/// must resolve even when the queue is saturated with other queries.
#[test]
fn deadlines_and_cancellation_under_load() {
    let rows = 80_000;
    let table = test_table(rows, 7);
    let scratch = TempBlockFile::new("service_deadline");
    let backend = FileBackend::create(scratch.path(), &table, 64)
        .unwrap()
        .with_cache_blocks(256);
    let bitmap = BitmapIndex::build(&table, 0, &backend.layout());
    QueryService::serve(&backend, ServiceConfig::default().with_workers(2), |svc| {
        let normal: Vec<_> = (0..4)
            .map(|i| {
                svc.submit(
                    QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(50 + i),
                )
                .unwrap()
            })
            .collect();
        let doomed = svc
            .submit(
                QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config())
                    .with_seed(99)
                    .with_deadline(Duration::ZERO),
            )
            .unwrap();
        let cancelled = svc
            .submit(QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(98))
            .unwrap();
        cancelled.cancel();
        assert!(matches!(doomed.wait(), QueryOutcome::DeadlineExpired));
        assert!(matches!(
            cancelled.wait(),
            QueryOutcome::Cancelled | QueryOutcome::Finished(_)
        ));
        for h in &normal {
            assert!(
                matches!(h.wait(), QueryOutcome::Finished(_)),
                "deadline/cancel of one query must not disturb the others"
            );
        }
    });
}

/// Admission control: the bound rejects the (n+1)-th in-flight query
/// with `Saturated`, and frees capacity as queries finish.
#[test]
fn admission_bound_is_enforced_and_recovers() {
    let rows = 60_000;
    let table = test_table(rows, 13);
    let scratch = TempBlockFile::new("service_admission");
    let backend = FileBackend::create(scratch.path(), &table, 64).unwrap();
    let bitmap = BitmapIndex::build(&table, 0, &backend.layout());
    QueryService::serve(
        &backend,
        ServiceConfig::default()
            .with_workers(1)
            .with_max_admitted(2),
        |svc| {
            let h1 = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(1))
                .unwrap();
            let h2 = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(2))
                .unwrap();
            // With both slots taken *right now* a third submit may be
            // rejected; after both finish it must succeed again.
            let third = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(3));
            if let Err(e) = &third {
                assert!(matches!(e, ServiceError::Saturated { limit: 2, .. }), "{e}");
            }
            h1.wait();
            h2.wait();
            if let Ok(h3) = third {
                h3.wait();
            }
            // Both slots free: admission must succeed.
            let h4 = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(4))
                .expect("capacity must recover after queries finish");
            assert!(matches!(h4.wait(), QueryOutcome::Finished(_)));
        },
    );
}

/// Tiny tables: one block, and one fewer block than the shard count —
/// shard clamping, instant-retiring shards and parked-sibling wakeups
/// must all terminate with the exact answer, at every pool size.
#[test]
fn tiny_tables_terminate_across_pool_sizes() {
    for &(rows, tpb) in &[(64usize, 64usize), (192, 64)] {
        let table = test_table(rows, 3);
        let scratch = TempBlockFile::new("service_tiny");
        let backend = FileBackend::create(scratch.path(), &table, tpb).unwrap();
        let bitmap = BitmapIndex::build(&table, 0, &backend.layout());
        let cfg = HistSimConfig {
            sigma: 0.0,
            ..config()
        };
        let job = QueryJob::from_backend(&backend, &bitmap, 0, 1, uniform(GROUPS), cfg.clone());
        let mut expect = SyncMatchExec.run(&job, 7).unwrap().candidate_ids();
        expect.sort_unstable();
        for workers in [1usize, 2, 4] {
            let outcome = QueryService::serve(
                &backend,
                ServiceConfig::default()
                    .with_workers(workers)
                    .with_shards_per_query(4),
                |svc| {
                    svc.submit(
                        QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), cfg.clone()).with_seed(7),
                    )
                    .unwrap()
                    .wait()
                },
            );
            let out = outcome
                .finished()
                .unwrap_or_else(|| panic!("{rows} rows / {workers} workers: {outcome:?}"))
                .clone();
            let mut ids = out.candidate_ids();
            ids.sort_unstable();
            assert_eq!(ids, expect, "{rows} rows / {workers} workers");
        }
    }
}

/// A corrupt page must fail exactly the queries that touch it, with
/// `Failed(Storage)`, never a panic or a hang.
#[test]
fn corrupt_page_fails_queries_cleanly() {
    let rows = 20_000;
    let table = test_table(rows, 5);
    let scratch = TempBlockFile::new("service_corrupt");
    fastmatch_store::file::write_table(scratch.path(), &table, 64).unwrap();
    let mut bytes = std::fs::read(scratch.path()).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(scratch.path(), &bytes).unwrap();
    let backend = FileBackend::open(scratch.path()).unwrap();
    let bitmap = BitmapIndex::build(&table, 0, &backend.layout());
    QueryService::serve(&backend, ServiceConfig::default(), |svc| {
        // Stage 1 wants every row of this small table, so the query must
        // reach the damaged block.
        let h = svc
            .submit(QueryRequest::new(&bitmap, 0, 1, uniform(GROUPS), config()).with_seed(1))
            .unwrap();
        match h.wait() {
            QueryOutcome::Failed(e) => {
                assert!(e.to_string().contains("corrupt"), "{e}");
            }
            other => panic!("corrupt file must fail the query, got {other:?}"),
        }
    });
}
