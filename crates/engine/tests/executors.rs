//! Cross-executor integration tests: all four executors must return
//! guarantee-satisfying answers on structured synthetic data, and the
//! approximate ones must agree with the exact scan up to the paper's
//! tolerance semantics.

use fastmatch_core::guarantees::GroundTruth;
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_core::Metric;
use fastmatch_data::gen::{
    conditional_with_planted, conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec,
};
use fastmatch_data::shapes::{far_pool, uniform};
use fastmatch_engine::exec::{
    Executor, FastMatchExec, ParallelMatchExec, ScanExec, ScanMatchExec, SyncMatchExec,
};
use fastmatch_engine::query::QueryJob;
use fastmatch_engine::service::{QueryRequest, QueryService, ServiceConfig};
use fastmatch_store::backend::{MemBackend, StorageBackend};
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::live::{LiveTable, LiveTableConfig};
use fastmatch_store::table::Table;
use fastmatch_store::tempfile::{TempBlockDir, TempBlockFile};

/// A 60-candidate dataset with 5 planted near-uniform candidates.
///
/// Sizes follow Zipf(1.2): the planted members (ids ≤ 15) all hold enough
/// tuples for stage-3 reconstruction to be cheaper than a full pass, the
/// tail is sparse enough for stage-1 pruning and block skipping to matter.
fn test_table(rows: usize, seed: u64) -> Table {
    // A tight cluster of five planted matches (τ ≈ 0 … 0.04) and a far
    // background pool (τ ≳ 0.3): the top-k boundary gap is wide, so
    // stage-2 demands stay small relative to candidate sizes once the
    // table is a million-plus rows.
    let dists = conditional_with_planted(
        60,
        &uniform(8),
        &[(0, 0.0), (2, 0.015), (5, 0.03), (9, 0.04), (15, 0.05)],
        0.20,
        seed ^ 0xab,
    );
    let specs = vec![
        ColumnSpec::new("z", 60, ColumnGen::PrimaryZipf { s: 1.2 }),
        ColumnSpec::new("x", 8, ColumnGen::Conditional { parent: 0, dists }),
    ];
    generate_table(&specs, rows, seed)
}

fn config() -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: 20_000,
        ..HistSimConfig::default()
    }
}

/// Rows for the I/O-reduction tests: large enough that HistSim's (scale-
/// free) sample complexity is well below a full pass.
const IO_TEST_ROWS: usize = 1_500_000;

fn run_all(rows: usize, seed: u64) -> Vec<(String, fastmatch_engine::result::MatchOutput)> {
    let table = test_table(rows, seed);
    let layout = BlockLayout::new(table.n_rows(), 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let target = uniform(8);
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, target, config());
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanExec),
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::with_lookahead(64)),
        Box::new(ParallelMatchExec::with_shards(4)),
    ];
    execs
        .into_iter()
        .map(|e| {
            let out = e
                .run(&job, seed.wrapping_add(1))
                .unwrap_or_else(|_| panic!("{}", e.name()));
            (e.name().to_string(), out)
        })
        .collect()
}

fn ground_truth(table: &Table) -> GroundTruth {
    GroundTruth::from_tuples(
        table
            .column(0)
            .iter()
            .zip(table.column(1))
            .map(|(&z, &x)| (z, x)),
        60,
        8,
        uniform(8),
        Metric::L1,
    )
}

#[test]
fn all_executors_satisfy_guarantees() {
    let rows = 300_000;
    let table = test_table(rows, 11);
    let gt = ground_truth(&table);
    let cfg = config();
    for (name, out) in run_all(rows, 11) {
        let ids = out.candidate_ids();
        assert_eq!(ids.len(), cfg.k, "{name}: wrong k");
        assert!(
            gt.check_separation(&ids, cfg.epsilon, cfg.sigma),
            "{name}: separation violated, ids {ids:?}, true {:?}",
            gt.true_topk(cfg.k, cfg.sigma)
        );
        assert!(
            gt.check_reconstruction(&out.output.matches, cfg.epsilon),
            "{name}: reconstruction violated"
        );
    }
}

#[test]
fn scan_returns_the_exact_topk() {
    let rows = 150_000;
    let table = test_table(rows, 7);
    let gt = ground_truth(&table);
    let layout = BlockLayout::new(table.n_rows(), 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), config());
    let out = ScanExec.run(&job, 0).unwrap();
    assert_eq!(out.candidate_ids(), gt.true_topk(5, config().sigma));
    assert!(out.stats.exact_finish);
    assert_eq!(out.stats.io.blocks_read as usize, layout.num_blocks());
}

#[test]
fn approximate_executors_read_less_than_scan() {
    let results = run_all(IO_TEST_ROWS, 23);
    let scan_blocks = results[0].1.stats.io.blocks_read;
    for (name, out) in &results[1..] {
        assert!(
            out.stats.io.blocks_read < scan_blocks,
            "{name} read {} blocks, scan read {scan_blocks}",
            out.stats.io.blocks_read
        );
    }
}

#[test]
fn fastmatch_skips_blocks_in_stage2() {
    let results = run_all(IO_TEST_ROWS, 31);
    let fast = &results[3].1;
    assert!(
        fast.stats.io.blocks_skipped > 0,
        "FastMatch never skipped a block"
    );
}

#[test]
fn executors_agree_across_seeds() {
    // The planted top-1 (candidate 0, exact uniform) must always be ranked
    // first by every executor.
    for seed in [1u64, 2, 3] {
        for (name, out) in run_all(200_000, seed) {
            assert_eq!(
                out.candidate_ids()[0],
                0,
                "{name} seed {seed}: wrong best candidate"
            );
        }
    }
}

#[test]
fn tiny_table_degenerates_to_exact() {
    // Table smaller than the stage-1 sample budget: every executor must
    // still terminate and return the true top-k.
    let rows = 5_000;
    let table = test_table(rows, 3);
    let gt = ground_truth(&table);
    let truth = gt.true_topk(5, 0.0);
    let layout = BlockLayout::new(table.n_rows(), 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let cfg = HistSimConfig {
        sigma: 0.0,
        ..config()
    };
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), cfg);
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::with_lookahead(16)),
        Box::new(ParallelMatchExec::with_shards(4)),
    ];
    for e in execs {
        let out = e.run(&job, 77).unwrap_or_else(|_| panic!("{}", e.name()));
        let mut ids = out.candidate_ids();
        ids.sort_unstable();
        let mut expect = truth.clone();
        expect.sort_unstable();
        assert_eq!(ids, expect, "{}", e.name());
    }
}

#[test]
fn sigma_zero_disables_pruning() {
    let rows = 100_000;
    let table = test_table(rows, 9);
    let layout = BlockLayout::new(table.n_rows(), 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let cfg = HistSimConfig {
        sigma: 0.0,
        ..config()
    };
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), cfg);
    let out = ScanMatchExec.run(&job, 5).unwrap();
    assert_eq!(out.stats.pruned, 0);
}

#[test]
fn parallel_match_agrees_with_sync_match() {
    // On the planted fixture the correct candidate set is unambiguous (the
    // five planted members sit far inside the ε-boundary), so the sharded
    // executor must return exactly the set the synchronous one does —
    // multi-core ingestion changes the schedule, not the answer.
    for seed in [11u64, 23] {
        let rows = 300_000;
        let table = test_table(rows, seed);
        let layout = BlockLayout::new(table.n_rows(), 64);
        let bitmap = BitmapIndex::build(&table, 0, &layout);
        let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), config());
        let sync = SyncMatchExec.run(&job, seed).unwrap();
        let par = ParallelMatchExec::with_shards(4).run(&job, seed).unwrap();
        let mut sync_ids = sync.candidate_ids();
        let mut par_ids = par.candidate_ids();
        sync_ids.sort_unstable();
        par_ids.sort_unstable();
        assert_eq!(par_ids, sync_ids, "seed {seed}");
    }
}

#[test]
fn shard_count_does_not_change_correctness() {
    let rows = 200_000;
    let table = test_table(rows, 17);
    let gt = ground_truth(&table);
    let layout = BlockLayout::new(table.n_rows(), 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    for shards in [1usize, 2, 4, 8] {
        let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), config());
        let out = ParallelMatchExec::with_shards(shards).run(&job, 5).unwrap();
        assert!(
            gt.check_separation(&out.candidate_ids(), config().epsilon, config().sigma),
            "{shards} shards: separation"
        );
        assert!(
            gt.check_reconstruction(&out.output.matches, config().epsilon),
            "{shards} shards: reconstruction"
        );
    }
}

/// The second matrix dataset: 48 candidates with four planted members
/// and a far background pool — different cardinality, plant structure
/// and Zipf skew than [`test_table`].
fn pool_table(rows: usize, seed: u64) -> Table {
    let dists = conditional_with_planted_pool(
        48,
        &uniform(8),
        &[(0, 0.0), (4, 0.03), (9, 0.05), (17, 0.07)],
        &far_pool(8),
        0.2,
        seed ^ 0x51,
    );
    let specs = vec![
        ColumnSpec::new("z", 48, ColumnGen::PrimaryZipf { s: 1.1 }),
        ColumnSpec::new("x", 8, ColumnGen::Conditional { parent: 0, dists }),
    ];
    generate_table(&specs, rows, seed)
}

/// The executor-equivalence matrix: all five executors × four storage
/// backends × two datasets × two block layouts. On the planted fixtures
/// the correct matched set is unambiguous, so every cell must return the
/// *identical* matched set and reach the same guarantee level — which
/// covers every future executor or backend addition by construction (new
/// rows/columns drop into the same loops).
#[test]
fn executor_backend_dataset_layout_matrix() {
    struct Dataset {
        name: &'static str,
        table: Table,
        candidates: usize,
        cfg: HistSimConfig,
    }
    let rows = 100_000;
    let datasets = [
        Dataset {
            name: "planted60",
            table: test_table(rows, 19),
            candidates: 60,
            cfg: config(),
        },
        Dataset {
            name: "pool48",
            table: pool_table(rows, 19),
            candidates: 48,
            cfg: HistSimConfig {
                k: 4,
                epsilon: 0.1,
                delta: 0.05,
                sigma: 0.001,
                stage1_samples: 15_000,
                ..HistSimConfig::default()
            },
        },
    ];
    let executors = || -> Vec<Box<dyn Executor>> {
        vec![
            Box::new(ScanExec),
            Box::new(ScanMatchExec),
            Box::new(SyncMatchExec),
            Box::new(FastMatchExec::with_lookahead(64)),
            Box::new(ParallelMatchExec::with_shards(4)),
        ]
    };
    for ds in &datasets {
        let gt = GroundTruth::from_tuples(
            ds.table
                .column(0)
                .iter()
                .zip(ds.table.column(1))
                .map(|(&z, &x)| (z, x)),
            ds.candidates,
            8,
            uniform(8),
            Metric::L1,
        );
        let mut truth = gt.true_topk(ds.cfg.k, ds.cfg.sigma);
        truth.sort_unstable();
        for tuples_per_block in [64usize, 150] {
            let layout = BlockLayout::new(ds.table.n_rows(), tuples_per_block);
            let bitmap = BitmapIndex::build(&ds.table, 0, &layout);
            // A cache far below the block count forces real disk reads
            // with eviction churn in the file column of the matrix. The
            // file backend appears twice — readahead pool on (default)
            // and off — because prefetching must change timing only,
            // never the matched set or the guarantee level.
            let scratch = TempBlockFile::new("exec_matrix");
            let file_backend = fastmatch_store::file::FileBackend::create(
                scratch.path(),
                &ds.table,
                tuples_per_block,
            )
            .unwrap()
            .with_cache_blocks(128);
            let file_noprefetch = fastmatch_store::file::FileBackend::open(scratch.path())
                .unwrap()
                .with_cache_blocks(128)
                .with_prefetch_workers(0);
            let mem_backend = MemBackend::new(&ds.table, layout);
            // The live-snapshot column: the same rows appended (in table
            // order, so the shared bitmap stays exact) into a LiveTable
            // with inline sealing, then snapshotted — every cell runs
            // over a mix of sealed segment files and the in-memory tail.
            let live_dir = TempBlockDir::new("exec_matrix_live");
            let live = LiveTable::new(
                ds.table.schema().clone(),
                LiveTableConfig::default()
                    .with_tuples_per_block(tuples_per_block)
                    .with_blocks_per_segment(16)
                    .with_segment_dir(live_dir.path())
                    .with_background_sealer(false),
            )
            .unwrap();
            let columns: Vec<Vec<u32>> = (0..ds.table.schema().len())
                .map(|a| ds.table.column(a).to_vec())
                .collect();
            live.append_batch(&columns).unwrap();
            let live_snapshot = live.snapshot();
            assert!(
                live.stats().persisted_segments > 0,
                "live column never sealed a segment"
            );
            assert!(
                live_snapshot.tail_rows() > 0,
                "live column has no in-memory tail"
            );
            let backends: [(&str, &dyn StorageBackend); 4] = [
                ("mem", &mem_backend),
                ("file+prefetch", &file_backend),
                ("file-noprefetch", &file_noprefetch),
                ("live-snapshot", &live_snapshot),
            ];
            for (backend_name, backend) in backends {
                for e in executors() {
                    let cell = format!(
                        "{} × {} × tpb{} × {}",
                        e.name(),
                        backend_name,
                        tuples_per_block,
                        ds.name
                    );
                    let job =
                        QueryJob::from_backend(backend, &bitmap, 0, 1, uniform(8), ds.cfg.clone());
                    let out = e
                        .run(&job, 19)
                        .unwrap_or_else(|err| panic!("{cell}: {err}"));
                    let mut ids = out.candidate_ids();
                    ids.sort_unstable();
                    assert_eq!(ids, truth, "{cell}: matched set diverged");
                    // Same guarantee level everywhere: both guarantees
                    // certified (trivially so for the exact cells).
                    assert!(
                        gt.check_separation(&out.candidate_ids(), ds.cfg.epsilon, ds.cfg.sigma),
                        "{cell}: separation violated"
                    );
                    assert!(
                        gt.check_reconstruction(&out.output.matches, ds.cfg.epsilon),
                        "{cell}: reconstruction violated"
                    );
                    if e.name() == "Scan" {
                        assert!(out.stats.exact_finish, "{cell}: Scan must be exact");
                    }
                    assert!(out.stats.io.blocks_read > 0, "{cell}: no blocks read");
                }
                // Two service rows per backend — fixed and adaptive
                // quantum sizing. Adaptive scheduling must change
                // latency only, never the matched set or guarantees.
                let policies = [
                    ("service-fixed", ServiceConfig::default()),
                    (
                        "service-adaptive",
                        ServiceConfig::default()
                            .with_adaptive_quantum(std::time::Duration::from_micros(200)),
                    ),
                ];
                for (policy_name, svc_cfg) in policies {
                    let cell = format!(
                        "{} × {} × tpb{} × {}",
                        policy_name, backend_name, tuples_per_block, ds.name
                    );
                    let svc_cfg = svc_cfg.with_workers(2).with_quantum_blocks(16);
                    let outcome = QueryService::serve(backend, svc_cfg, |svc| {
                        svc.submit(
                            QueryRequest::new(&bitmap, 0, 1, uniform(8), ds.cfg.clone())
                                .with_seed(19),
                        )
                        .unwrap()
                        .wait()
                    });
                    let out = outcome
                        .finished()
                        .unwrap_or_else(|| panic!("{cell}: {outcome:?}"));
                    let mut ids = out.candidate_ids();
                    ids.sort_unstable();
                    assert_eq!(ids, truth, "{cell}: matched set diverged");
                    assert!(
                        gt.check_separation(&out.candidate_ids(), ds.cfg.epsilon, ds.cfg.sigma),
                        "{cell}: separation violated"
                    );
                    assert!(
                        gt.check_reconstruction(&out.output.matches, ds.cfg.epsilon),
                        "{cell}: reconstruction violated"
                    );
                }
            }
            let cs = file_backend.cache_stats();
            assert!(cs.misses > 0, "file cells never touched the disk");
            assert!(cs.evictions > 0, "bounded cache never evicted");
        }
    }
}

/// Tiny tables: 0 blocks (empty) must error out cleanly, and 1 or
/// shards−1 blocks must terminate with the exact answer for every shard
/// count — no worker may park forever on an empty or starved shard.
#[test]
fn parallel_match_handles_tiny_tables_across_shard_counts() {
    // nb = 1 block and nb = 3 blocks (one fewer than the 4-shard
    // default), across shard counts from 1 to twice the block count.
    for &(rows, tpb) in &[(64usize, 64usize), (192, 64)] {
        let table = test_table(rows, 3);
        let layout = BlockLayout::new(table.n_rows(), tpb);
        let bitmap = BitmapIndex::build(&table, 0, &layout);
        let cfg = HistSimConfig {
            sigma: 0.0,
            ..config()
        };
        let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), cfg.clone());
        let reference = SyncMatchExec.run(&job, 7).unwrap();
        let mut ref_ids = reference.candidate_ids();
        ref_ids.sort_unstable();
        for shards in [1usize, 2, 4, 8] {
            let out = ParallelMatchExec::with_shards(shards)
                .run(&job, 7)
                .unwrap_or_else(|e| {
                    panic!("{} blocks / {shards} shards: {e}", layout.num_blocks())
                });
            let mut ids = out.candidate_ids();
            ids.sort_unstable();
            assert_eq!(
                ids,
                ref_ids,
                "{} blocks / {shards} shards",
                layout.num_blocks()
            );
        }
    }
}

#[test]
fn empty_table_errors_instead_of_hanging() {
    let table = test_table(0, 3);
    let layout = BlockLayout::new(0, 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), config());
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::with_lookahead(16)),
        Box::new(ParallelMatchExec::with_shards(4)),
    ];
    for e in execs {
        assert!(
            e.run(&job, 1).is_err(),
            "{}: empty table must be a clean error",
            e.name()
        );
    }
}

/// Sharding a reader more ways than there are blocks yields empty
/// shards (the worker-side exhaust-and-exit behavior for such shards is
/// unit-tested next to `shard_worker` itself).
#[test]
fn oversharded_reader_yields_empty_shards() {
    let table = test_table(128, 5); // 2 blocks of 64
    let layout = BlockLayout::new(table.n_rows(), 64);
    let reader = fastmatch_store::io::BlockReader::new(&table, layout);
    for i in 0..6 {
        let shard = reader.shard(i, 6);
        if i >= 2 {
            assert_eq!(shard.num_blocks(), 0, "shard {i} of 6 over 2 blocks");
        }
    }
}

/// A corrupt page must fail every executor — including the threaded
/// ones — with `CoreError::Storage`, not a panic or a silently wrong
/// answer.
#[test]
fn corrupt_page_fails_all_executors_with_storage_error() {
    let table = test_table(20_000, 5);
    let scratch = TempBlockFile::new("exec_corrupt");
    let path = scratch.path();
    fastmatch_store::file::write_table(path, &table, 64).unwrap();
    // Damage one byte in the middle of the page region.
    let mut bytes = std::fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(path, &bytes).unwrap();
    let backend = fastmatch_store::file::FileBackend::open(path).unwrap();
    let bitmap = BitmapIndex::build(&table, 0, &backend.layout());
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanExec),
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::with_lookahead(64)),
        Box::new(ParallelMatchExec::with_shards(4)),
    ];
    for e in execs {
        // Stage 1 wants every row of this small table, so each executor
        // must reach the damaged block before it can terminate.
        let job = QueryJob::from_backend(&backend, &bitmap, 0, 1, uniform(8), config());
        match e.run(&job, 1) {
            Err(fastmatch_core::error::CoreError::Storage(msg)) => {
                assert!(msg.contains("corrupt"), "{}: {msg}", e.name())
            }
            Err(other) => panic!("{}: wrong error kind: {other}", e.name()),
            Ok(_) => panic!("{}: run over a corrupt file succeeded", e.name()),
        }
    }
}

#[test]
fn lookahead_size_does_not_change_correctness() {
    let rows = 200_000;
    let table = test_table(rows, 13);
    let gt = ground_truth(&table);
    let layout = BlockLayout::new(table.n_rows(), 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    for lookahead in [8usize, 64, 1024, 8192] {
        let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), config());
        let out = FastMatchExec::with_lookahead(lookahead)
            .run(&job, 99)
            .unwrap();
        assert!(
            gt.check_separation(&out.candidate_ids(), config().epsilon, config().sigma),
            "lookahead {lookahead}"
        );
    }
}
