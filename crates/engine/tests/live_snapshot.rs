//! Snapshot consistency under live ingestion — the acceptance tests of
//! the live-table subsystem.
//!
//! The contract under test: with writers appending concurrently, every
//! executor over a [`Snapshot`] returns the exact matched set and
//! guarantee level of a serial run over a **frozen copy taken at the
//! same watermark** — the snapshot materialized to an in-memory table
//! and queried through the classic `MemBackend` path. The fixtures are
//! planted (wide top-k boundary gap), so the correct matched set at any
//! sufficiently deep prefix is unambiguous and set equality is a sound
//! assertion for the threaded executors too.

use std::sync::Arc;

use fastmatch_core::guarantees::GroundTruth;
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_core::Metric;
use fastmatch_data::gen::{conditional_with_planted, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::uniform;
use fastmatch_data::AppendBatches;
use fastmatch_engine::exec::{
    Executor, FastMatchExec, ParallelMatchExec, ScanExec, ScanMatchExec, SyncMatchExec,
};
use fastmatch_engine::query::QueryJob;
use fastmatch_engine::service::{
    QueryOutcome, QueryService, ServiceConfig, ServiceError, SnapshotRequest,
};
use fastmatch_store::backend::{MemBackend, StorageBackend};
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::live::{LiveTable, LiveTableConfig};
use fastmatch_store::table::Table;
use fastmatch_store::tempfile::TempBlockDir;

const CANDIDATES: usize = 60;
const GROUPS: usize = 8;

/// The same planted fixture the executor matrix uses: five tightly
/// planted near-uniform candidates against a far background pool, so
/// the correct top-5 is unambiguous at any ≥ 50k-row prefix.
fn fixture(rows: usize, seed: u64) -> Table {
    let dists = conditional_with_planted(
        CANDIDATES,
        &uniform(GROUPS),
        &[(0, 0.0), (2, 0.015), (5, 0.03), (9, 0.04), (15, 0.05)],
        0.20,
        seed ^ 0xab,
    );
    let specs = vec![
        ColumnSpec::new("z", CANDIDATES as u32, ColumnGen::PrimaryZipf { s: 1.2 }),
        ColumnSpec::new(
            "x",
            GROUPS as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    generate_table(&specs, rows, seed)
}

fn config() -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: 20_000,
        ..HistSimConfig::default()
    }
}

fn executors() -> Vec<Box<dyn Executor>> {
    vec![
        Box::new(ScanExec),
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::with_lookahead(64)),
        Box::new(ParallelMatchExec::with_shards(4)),
    ]
}

fn seed() -> u64 {
    std::env::var("FASTMATCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Spawns `n` appenders that interleave disjoint stripes of `table`
/// into `live` until every row is in, then runs `body` while they work.
fn with_concurrent_ingest<R>(
    live: &LiveTable,
    table: &Table,
    n: usize,
    body: impl FnOnce() -> R,
) -> R {
    std::thread::scope(|scope| {
        for w in 0..n {
            let live = &live;
            let table = &table;
            scope.spawn(move || {
                let rows = table.n_rows();
                let per = rows.div_ceil(n);
                let (lo, hi) = (w * per, ((w + 1) * per).min(rows));
                let mut pos = lo;
                while pos < hi {
                    let end = (pos + 120).min(hi);
                    let batch: Vec<Vec<u32>> = (0..table.schema().len())
                        .map(|a| table.column(a)[pos..end].to_vec())
                        .collect();
                    live.append_batch(&batch).unwrap();
                    pos = end;
                }
            });
        }
        body()
    })
}

/// The acceptance test: executors over a mid-ingest snapshot ==
/// serial runs over the frozen copy at the same watermark.
#[test]
fn executors_over_snapshot_equal_frozen_copy_at_same_watermark() {
    let seed = seed();
    let rows = 150_000;
    let table = fixture(rows, seed);
    let dir = TempBlockDir::new("live_exec_equiv");
    let live = LiveTable::new(
        table.schema().clone(),
        LiveTableConfig::default()
            .with_tuples_per_block(64)
            .with_blocks_per_segment(16)
            .with_segment_dir(dir.path()),
    )
    .unwrap();

    let snap = with_concurrent_ingest(&live, &table, 4, || {
        // Wait until the table is deep enough for the plants to be
        // unambiguous, then snapshot *while appenders are running*.
        while live.n_rows() < 100_000 {
            std::thread::yield_now();
        }
        live.snapshot()
    });
    assert!(
        snap.n_rows() >= 100_000,
        "snapshot watermark: {}",
        snap.n_rows()
    );

    // The frozen copy at the same watermark, queried the classic way.
    let frozen = snap.to_table().unwrap();
    assert_eq!(frozen.n_rows(), snap.n_rows());
    let layout = BlockLayout::new(frozen.n_rows(), 64);
    let mem = MemBackend::new(&frozen, layout);
    let bitmap = BitmapIndex::build(&frozen, 0, &layout);
    let gt = GroundTruth::from_tuples(
        frozen
            .column(0)
            .iter()
            .zip(frozen.column(1))
            .map(|(&z, &x)| (z, x)),
        CANDIDATES,
        GROUPS,
        uniform(GROUPS),
        Metric::L1,
    );
    let cfg = config();

    for e in executors() {
        let snap_job = QueryJob::from_snapshot(&snap, 0, 1, uniform(GROUPS), cfg.clone());
        let frozen_job = QueryJob::from_backend(&mem, &bitmap, 0, 1, uniform(GROUPS), cfg.clone());
        let live_out = e.run(&snap_job, seed).unwrap_or_else(|err| {
            panic!("{} over snapshot: {err}", e.name());
        });
        let frozen_out = e.run(&frozen_job, seed).unwrap_or_else(|err| {
            panic!("{} over frozen copy: {err}", e.name());
        });
        let mut live_ids = live_out.candidate_ids();
        let mut frozen_ids = frozen_out.candidate_ids();
        live_ids.sort_unstable();
        frozen_ids.sort_unstable();
        assert_eq!(live_ids, frozen_ids, "{}: matched set diverged", e.name());
        // Same guarantee level: both certify separation + reconstruction
        // against the watermark's ground truth…
        assert!(
            gt.check_separation(&live_out.candidate_ids(), cfg.epsilon, cfg.sigma),
            "{}: separation over snapshot",
            e.name()
        );
        assert!(
            gt.check_reconstruction(&live_out.output.matches, cfg.epsilon),
            "{}: reconstruction over snapshot",
            e.name()
        );
        // …and the deterministic executors finish in the identical mode.
        if matches!(e.name(), "Scan" | "ScanMatch" | "SyncMatch") {
            assert_eq!(
                live_out.stats.exact_finish,
                frozen_out.stats.exact_finish,
                "{}: finish mode diverged",
                e.name()
            );
        }
        if e.name() == "Scan" {
            assert!(live_out.stats.exact_finish, "Scan must be exact");
            assert_eq!(
                live_out.stats.io.blocks_read as usize,
                snap.layout().num_blocks(),
                "Scan must read the whole snapshot"
            );
        }
    }
}

/// Recovery is invisible to the engine: shut a live table down (sealed
/// segments + WAL tail on disk, compaction churning underneath), reopen
/// it, and every executor over the recovered snapshot computes the
/// same matched set as over the pre-shutdown snapshot — which the
/// blockwise comparison pins down as bit-identical state, not just
/// agreeing answers.
#[test]
fn executors_over_recovered_snapshot_equal_pre_shutdown_run() {
    let seed = seed();
    let table = fixture(120_000, seed ^ 0x31);
    let dir = TempBlockDir::new("live_exec_recover");
    let cfg_live = LiveTableConfig::default()
        .with_tuples_per_block(64)
        .with_blocks_per_segment(16)
        .with_coalesce_segments(2)
        .with_compaction(4)
        .with_segment_dir(dir.path());
    let live = LiveTable::new(table.schema().clone(), cfg_live.clone()).unwrap();
    for batch in AppendBatches::new(table.clone(), 4_096) {
        live.append_batch(&batch).unwrap();
    }
    let before_snap = live.snapshot();
    drop(live); // clean shutdown: the tail rows survive only in the WAL

    let reopened = LiveTable::open(table.schema().clone(), cfg_live).unwrap();
    assert_eq!(reopened.n_rows() as usize, table.n_rows());
    let stats = reopened.stats();
    assert!(
        stats.recovered_rows > 0,
        "the WAL tail must replay: {stats:?}"
    );
    let snap = reopened.snapshot();
    let (before, after) = (before_snap.to_table().unwrap(), snap.to_table().unwrap());
    assert_eq!(before.n_rows(), after.n_rows());
    for attr in 0..table.schema().len() {
        assert_eq!(before.column(attr), after.column(attr), "attr {attr}");
    }
    let cfg = config();
    for e in executors() {
        let before_job = QueryJob::from_snapshot(&before_snap, 0, 1, uniform(GROUPS), cfg.clone());
        let after_job = QueryJob::from_snapshot(&snap, 0, 1, uniform(GROUPS), cfg.clone());
        let mut want = e
            .run(&before_job, seed)
            .unwrap_or_else(|err| panic!("{} before shutdown: {err}", e.name()))
            .candidate_ids();
        let mut got = e
            .run(&after_job, seed)
            .unwrap_or_else(|err| panic!("{} after recovery: {err}", e.name()))
            .candidate_ids();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(
            got,
            want,
            "{}: matched set diverged after recovery",
            e.name()
        );
    }
}

/// A snapshot's results are frozen: appending afterwards must not
/// change what any executor computes over the old snapshot.
#[test]
fn snapshot_results_survive_later_appends() {
    let seed = seed();
    let table = fixture(60_000, seed ^ 0x77);
    let live = LiveTable::new(
        table.schema().clone(),
        LiveTableConfig::default()
            .with_tuples_per_block(64)
            .with_blocks_per_segment(8),
    )
    .unwrap();
    for batch in AppendBatches::new(table.clone(), 4_096) {
        live.append_batch(&batch).unwrap();
    }
    let snap = live.snapshot();
    let cfg = config();
    let before = {
        let job = QueryJob::from_snapshot(&snap, 0, 1, uniform(GROUPS), cfg.clone());
        SyncMatchExec.run(&job, seed).unwrap()
    };
    // Pile on more rows (the same distribution, so this is pure noise
    // from the snapshot's point of view).
    for batch in AppendBatches::new(fixture(30_000, seed ^ 0x99), 4_096) {
        live.append_batch(&batch).unwrap();
    }
    let after = {
        let job = QueryJob::from_snapshot(&snap, 0, 1, uniform(GROUPS), cfg.clone());
        SyncMatchExec.run(&job, seed).unwrap()
    };
    assert_eq!(snap.n_rows(), 60_000);
    assert_eq!(before.candidate_ids(), after.candidate_ids());
    assert_eq!(before.stats.samples, after.stats.samples);
    assert_eq!(before.stats.io.blocks_read, after.stats.io.blocks_read);
}

/// Service admission over a live table: queries run over fresh
/// per-admission snapshots while writers append, and each outcome
/// equals a serial run over that snapshot's frozen copy.
#[test]
fn service_admits_snapshot_queries_under_concurrent_ingest() {
    let seed = seed();
    let rows = 120_000;
    let table = fixture(rows, seed ^ 0x5);
    let live = LiveTable::new(
        table.schema().clone(),
        LiveTableConfig::default()
            .with_tuples_per_block(64)
            .with_blocks_per_segment(16),
    )
    .unwrap();
    // Preload enough rows that every admission's snapshot is deep, then
    // keep appending the rest during service operation.
    let preload: Vec<Vec<u32>> = (0..table.schema().len())
        .map(|a| table.column(a)[..90_000].to_vec())
        .collect();
    live.append_batch(&preload).unwrap();

    let cfg = config();
    std::thread::scope(|scope| {
        let appender = {
            let live = &live;
            let table = &table;
            scope.spawn(move || {
                let mut pos = 90_000usize;
                while pos < table.n_rows() {
                    let end = (pos + 256).min(table.n_rows());
                    let batch: Vec<Vec<u32>> = (0..table.schema().len())
                        .map(|a| table.column(a)[pos..end].to_vec())
                        .collect();
                    live.append_batch(&batch).unwrap();
                    pos = end;
                }
            })
        };
        // A base backend for the service scope (admissions use their own
        // fresh snapshots).
        let base = live.snapshot();
        QueryService::serve(&base, ServiceConfig::default(), |svc| {
            let mut watermarks = Vec::new();
            for q in 0..4u64 {
                let (snap, handle) = svc
                    .submit_live(
                        &live,
                        SnapshotRequest::new(0, 1, uniform(GROUPS), cfg.clone())
                            .with_seed(seed.wrapping_add(q)),
                    )
                    .expect("admission over live table");
                let outcome = handle.wait();
                let out = match outcome {
                    QueryOutcome::Finished(out) => out,
                    other => panic!("query {q} did not finish: {other:?}"),
                };
                // Serial reference over the same watermark.
                let frozen = snap.to_table().unwrap();
                let layout = BlockLayout::new(frozen.n_rows(), 64);
                let mem = MemBackend::new(&frozen, layout);
                let bitmap = BitmapIndex::build(&frozen, 0, &layout);
                let job = QueryJob::from_backend(&mem, &bitmap, 0, 1, uniform(GROUPS), cfg.clone());
                let reference = SyncMatchExec.run(&job, seed.wrapping_add(q)).unwrap();
                let mut got = out.candidate_ids();
                let mut want = reference.candidate_ids();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "query {q} at watermark {}", snap.n_rows());
                assert!(out.stats.io.blocks_read > 0, "query {q}: attributed I/O");
                watermarks.push(snap.n_rows());
            }
            // Watermarks are monotone: later admissions see no fewer rows.
            for pair in watermarks.windows(2) {
                assert!(pair[1] >= pair[0], "watermarks regressed: {watermarks:?}");
            }
        });
        appender.join().unwrap();
    });
    assert_eq!(live.n_rows() as usize, rows);
}

/// Malformed snapshot requests are rejected as `Invalid`, and an empty
/// live table cannot be queried (no rows ⇒ the driver refuses).
#[test]
fn service_rejects_bad_snapshot_requests() {
    let table = fixture(4_096, 3);
    let live = LiveTable::new(
        table.schema().clone(),
        LiveTableConfig::default().with_tuples_per_block(64),
    )
    .unwrap();
    let base = live.snapshot(); // empty
    QueryService::serve(&base, ServiceConfig::default(), |svc| {
        // Empty snapshot: admission must fail cleanly, not hang.
        let err = svc
            .submit_live(&live, SnapshotRequest::new(0, 1, uniform(GROUPS), config()))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Invalid(_)), "{err}");
        // Bad attribute index.
        let err = svc
            .submit_snapshot(
                Arc::new(live.snapshot()),
                SnapshotRequest::new(9, 1, uniform(GROUPS), config()),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Invalid(_)), "{err}");
        // Bad target arity.
        let err = svc
            .submit_snapshot(
                Arc::new(live.snapshot()),
                SnapshotRequest::new(0, 1, vec![1.0; GROUPS + 1], config()),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Invalid(_)), "{err}");
        // After appending data, the same request shape is admissible.
        for batch in AppendBatches::new(table.clone(), 1_024) {
            live.append_batch(&batch).unwrap();
        }
        let (snap, handle) = svc
            .submit_live(&live, SnapshotRequest::new(0, 1, uniform(GROUPS), config()))
            .expect("live admission after appends");
        assert_eq!(snap.n_rows(), 4_096);
        assert!(matches!(handle.wait(), QueryOutcome::Finished(_)));
    });
}
