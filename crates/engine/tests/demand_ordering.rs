//! Regression stress tests for the `SharedDemand` publication protocol.
//!
//! The contract under test: each publication stores the per-candidate
//! demand first, the mode second, and bumps the epoch **last**, exactly
//! once — so a reader woken by a new epoch always observes the complete
//! publication that bumped it.
//!
//! The original protocol bumped the epoch twice per publication (once in
//! `publish_remaining`, once in `set_mode`, each immediately after its
//! own store). Both tests below fail against that ordering:
//!
//! * `epoch_counts_publications_exactly` fails deterministically — the
//!   epoch advances twice per snapshot, so epoch values and publication
//!   generations drift apart;
//! * `woken_reader_always_sees_the_complete_publication` fails
//!   probabilistically — a reader released by the first (demand) bump can
//!   observe the *old* mode, i.e. a half-published snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fastmatch_engine::shared::{DemandMode, SharedDemand};

/// The mode a given publication generation carries (alternating, so a
/// stale mode is always distinguishable from the fresh one).
fn mode_for(generation: u64) -> DemandMode {
    if generation % 2 == 1 {
        DemandMode::AnyActive
    } else {
        DemandMode::ReadAll
    }
}

#[test]
fn epoch_counts_publications_exactly() {
    let s = SharedDemand::new(3);
    let base = s.epoch();
    for generation in 1..=100u64 {
        s.publish(mode_for(generation), Some(&[generation, 0, generation]));
        assert_eq!(
            s.epoch(),
            base + generation,
            "one publication must bump the epoch exactly once"
        );
    }
}

#[test]
fn woken_reader_always_sees_the_complete_publication() {
    const ROUNDS: u64 = 2_000;
    let shared = Arc::new(SharedDemand::new(4));
    // Handshake: the writer publishes generation g and waits for the
    // reader's acknowledgement before publishing g + 1, so when the
    // reader observes epoch ≥ g there are no in-flight stores — whatever
    // it reads must be publication g, in full.
    let ack = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let writer = {
            let shared = Arc::clone(&shared);
            let ack = Arc::clone(&ack);
            scope.spawn(move || {
                for generation in 1..=ROUNDS {
                    let rem = [generation; 4];
                    shared.publish(mode_for(generation), Some(&rem));
                    while ack.load(Ordering::Acquire) < generation {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let reader = {
            let shared = Arc::clone(&shared);
            let ack = Arc::clone(&ack);
            scope.spawn(move || {
                // Violations are collected (not asserted in-thread) so a
                // failure cannot strand the writer on a never-arriving
                // ack: the handshake always completes and the test fails
                // cleanly after the join.
                let mut violations = Vec::new();
                for generation in 1..=ROUNDS {
                    // Park like a shard worker: wait for a new epoch.
                    while shared.epoch() < generation {
                        std::thread::yield_now();
                    }
                    // Woken by the bump of publication `generation`, the
                    // reader must see that publication's mode AND demand —
                    // never the fresh epoch with a stale half.
                    let mode = shared.mode();
                    let rem = shared.remaining(0);
                    if rem != generation || mode != mode_for(generation) {
                        violations.push((generation, rem, mode));
                    }
                    ack.store(generation, Ordering::Release);
                }
                violations
            })
        };
        writer.join().unwrap();
        let violations = reader.join().unwrap();
        assert!(
            violations.is_empty(),
            "woken readers saw {} stale/torn snapshots, first: \
             epoch {:?} gave demand generation {:?} with mode {:?}",
            violations.len(),
            violations.first().map(|v| v.0),
            violations.first().map(|v| v.1),
            violations.first().map(|v| v.2),
        );
    });
}
