//! Scheduler-level integration tests for the query service: adaptive
//! quantum sizing must be invisible to results (only latency may
//! change), work-stealing must actually redistribute queued tasks, and
//! no admitted query may starve while others run.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use fastmatch_core::histsim::HistSimConfig;
use fastmatch_data::gen::{conditional_with_planted, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::uniform;
use fastmatch_engine::exec::{Executor, SyncMatchExec};
use fastmatch_engine::query::QueryJob;
use fastmatch_engine::service::{
    QuantumPolicy, QueryOutcome, QueryRequest, QueryService, ServiceConfig,
};
use fastmatch_store::backend::MemBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::table::Table;

/// The planted fixture the executor tests use: the matched set is
/// unambiguous, so every correct scheduler returns the same ids.
fn test_table(rows: usize, seed: u64) -> Table {
    let dists = conditional_with_planted(
        60,
        &uniform(8),
        &[(0, 0.0), (2, 0.015), (5, 0.03), (9, 0.04), (15, 0.05)],
        0.20,
        seed ^ 0xab,
    );
    let specs = vec![
        ColumnSpec::new("z", 60, ColumnGen::PrimaryZipf { s: 1.2 }),
        ColumnSpec::new("x", 8, ColumnGen::Conditional { parent: 0, dists }),
    ];
    generate_table(&specs, rows, seed)
}

fn config() -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: 20_000,
        ..HistSimConfig::default()
    }
}

/// Runs one query through the service under `svc_cfg` and returns its
/// sorted matched set plus the final guarantee state.
fn serve_one(
    backend: &MemBackend<'_>,
    bitmap: &BitmapIndex,
    cfg: HistSimConfig,
    svc_cfg: ServiceConfig,
    seed: u64,
) -> (Vec<u32>, fastmatch_engine::service::GuaranteeState) {
    let (outcome, guarantee) = QueryService::serve(backend, svc_cfg, |svc| {
        let h = svc
            .submit(QueryRequest::new(bitmap, 0, 1, uniform(8), cfg).with_seed(seed))
            .unwrap();
        let outcome = h.wait();
        (outcome, h.progress().guarantee)
    });
    let out = outcome
        .finished()
        .unwrap_or_else(|| panic!("query must finish: {outcome:?}"))
        .clone();
    let mut ids = out.candidate_ids();
    ids.sort_unstable();
    (ids, guarantee)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Adaptive quantum sizing preserves the executor-equivalence
    /// property across randomized workloads and scheduler parameters:
    /// the matched set and final guarantee level equal those of the
    /// fixed-quantum service and of the single-threaded reference
    /// executor. (The deterministic 5-executors × 4-backends matrix in
    /// `executors.rs` carries service-fixed and service-adaptive rows
    /// over every backend; this property randomizes the knobs.)
    #[test]
    fn adaptive_quanta_preserve_matched_sets(
        rows in 30_000usize..80_000,
        seed in 0u64..1_000,
        quantum_blocks in 4usize..96,
        target_us in 20u64..2_000,
        workers in 1usize..5,
        shards in 1usize..6,
    ) {
        let table = test_table(rows, seed);
        let layout = BlockLayout::new(table.n_rows(), 64);
        let bitmap = BitmapIndex::build(&table, 0, &layout);
        let backend = MemBackend::new(&table, layout);

        let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), config());
        let reference = SyncMatchExec.run(&job, seed).unwrap();
        let mut ref_ids = reference.candidate_ids();
        ref_ids.sort_unstable();

        let base = ServiceConfig::default()
            .with_workers(workers)
            .with_shards_per_query(shards)
            .with_quantum_blocks(quantum_blocks);
        let (fixed_ids, fixed_g) =
            serve_one(&backend, &bitmap, config(), base, seed);
        let (adaptive_ids, adaptive_g) = serve_one(
            &backend,
            &bitmap,
            config(),
            base.with_adaptive_quantum(Duration::from_micros(target_us)),
            seed,
        );

        prop_assert_eq!(&fixed_ids, &ref_ids, "fixed-quantum service diverged");
        prop_assert_eq!(&adaptive_ids, &ref_ids, "adaptive-quantum service diverged");
        prop_assert_eq!(fixed_g, adaptive_g, "guarantee level diverged");
    }
}

/// Work-stealing soak: many queries on few workers with tiny quanta;
/// every admitted query must make progress (samples advance, or finish)
/// within `K` *global* quanta of its last observed progress — i.e. no
/// query starves while the scheduler serves the others.
#[test]
fn no_admitted_query_starves() {
    let table = test_table(200_000, 42);
    let layout = BlockLayout::new(table.n_rows(), 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let backend = MemBackend::new(&table, layout);
    const QUERIES: usize = 6;
    const K: u64 = 4_000;
    let svc_cfg = ServiceConfig::default()
        .with_workers(2)
        .with_shards_per_query(2)
        .with_quantum_blocks(4)
        .with_quantum_policy(QuantumPolicy::Adaptive {
            target: Duration::from_micros(100),
            min_blocks: 2,
            max_blocks: 64,
        });
    QueryService::serve(&backend, svc_cfg, |svc| {
        let handles: Vec<_> = (0..QUERIES)
            .map(|i| {
                svc.submit(
                    QueryRequest::new(&bitmap, 0, 1, uniform(8), config()).with_seed(42 + i as u64),
                )
                .unwrap()
            })
            .collect();
        // (samples at last progress, global quanta at last progress)
        let mut last: Vec<(u64, u64)> = vec![(0, 0); QUERIES];
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let quanta = svc.sched_stats().quanta;
            let mut all_done = true;
            for (i, h) in handles.iter().enumerate() {
                if h.is_done() {
                    continue;
                }
                all_done = false;
                let samples = h.progress().samples;
                if samples > last[i].0 {
                    last[i] = (samples, quanta);
                } else {
                    assert!(
                        quanta.saturating_sub(last[i].1) < K,
                        "query {i} starved: stuck at {samples} samples for \
                         {} global quanta ({:?})",
                        quanta - last[i].1,
                        svc.sched_stats(),
                    );
                }
            }
            if all_done {
                break;
            }
            assert!(Instant::now() < deadline, "soak did not converge");
            std::thread::sleep(Duration::from_millis(1));
        }
        for (i, h) in handles.iter().enumerate() {
            let outcome = h.wait();
            assert!(
                matches!(outcome, QueryOutcome::Finished(_)),
                "query {i}: {outcome:?}"
            );
        }
    });
}

/// With one single-shard query homed on worker 0 and a second worker
/// whose own queue stays empty, the only way worker 1 ever runs a
/// quantum is by stealing — over thousands of requeues it practically
/// always does. (The deterministic converse — stealing disabled means
/// zero steals — is a service unit test.)
#[test]
fn idle_workers_steal_queued_tasks() {
    let table = test_table(250_000, 7);
    let layout = BlockLayout::new(table.n_rows(), 64);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let backend = MemBackend::new(&table, layout);
    let svc_cfg = ServiceConfig::default()
        .with_workers(4)
        .with_shards_per_query(8)
        .with_quantum_blocks(2);
    let stats = QueryService::serve(&backend, svc_cfg, |svc| {
        for round in 0..3 {
            let h = svc
                .submit(QueryRequest::new(&bitmap, 0, 1, uniform(8), config()).with_seed(7 + round))
                .unwrap();
            let outcome = h.wait();
            assert!(matches!(outcome, QueryOutcome::Finished(_)), "{outcome:?}");
        }
        svc.sched_stats()
    });
    assert!(
        stats.steals > 0,
        "idle workers never stole despite imbalanced queues: {stats:?}"
    );
}
