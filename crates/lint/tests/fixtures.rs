//! The known-bad corpus, in the same "CI must re-find the seeded bug"
//! style as the model checker's mutation tests: every `bad_*` fixture
//! must trip **exactly** its own check (at least one finding, and no
//! finding from any other check — cross-talk would mean a fixture is
//! accidentally testing two things), and every `good_*` fixture must
//! come out clean under all six checks with an empty allowlist.

use std::collections::BTreeSet;
use std::path::PathBuf;

use fastmatch_lint::{run_checks, CheckId};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn cases() -> Vec<(CheckId, String, PathBuf)> {
    let mut out = Vec::new();
    for check_dir in std::fs::read_dir(fixture_root()).unwrap() {
        let check_dir = check_dir.unwrap().path();
        let check = CheckId::parse(check_dir.file_name().unwrap().to_str().unwrap())
            .expect("fixture dir named after a check id");
        for case in std::fs::read_dir(&check_dir).unwrap() {
            let case = case.unwrap().path();
            let name = case.file_name().unwrap().to_str().unwrap().to_string();
            out.push((check, name, case));
        }
    }
    assert!(!out.is_empty(), "fixture corpus is missing");
    out
}

#[test]
fn corpus_has_two_bad_and_one_good_per_check() {
    let mut bad = std::collections::BTreeMap::new();
    let mut good = std::collections::BTreeMap::new();
    for (check, name, _) in cases() {
        if name.starts_with("bad_") {
            *bad.entry(check.id()).or_insert(0u32) += 1;
        } else if name.starts_with("good_") {
            *good.entry(check.id()).or_insert(0u32) += 1;
        } else {
            panic!("fixture `{name}` is neither bad_* nor good_*");
        }
    }
    for c in CheckId::ALL {
        assert!(
            bad.get(c.id()).copied().unwrap_or(0) >= 2,
            "check {} needs >= 2 bad fixtures",
            c.id()
        );
        assert!(
            good.get(c.id()).copied().unwrap_or(0) >= 1,
            "check {} needs >= 1 good fixture",
            c.id()
        );
    }
}

#[test]
fn every_bad_fixture_trips_exactly_its_check() {
    for (check, name, root) in cases() {
        if !name.starts_with("bad_") {
            continue;
        }
        let analysis = run_checks(&root, &CheckId::ALL).unwrap();
        let tripped: BTreeSet<&str> = analysis.diags.iter().map(|d| d.check.id()).collect();
        assert!(
            tripped.contains(check.id()),
            "{}/{name}: expected a {} finding, got {:?}",
            check.id(),
            check.id(),
            analysis.diags
        );
        assert_eq!(
            tripped.len(),
            1,
            "{}/{name}: tripped other checks too: {:?}",
            check.id(),
            analysis.diags
        );
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for (check, name, root) in cases() {
        if !name.starts_with("good_") {
            continue;
        }
        let analysis = run_checks(&root, &CheckId::ALL).unwrap();
        assert!(
            analysis.diags.is_empty(),
            "{}/{name}: expected clean, got {:?}",
            check.id(),
            analysis.diags
        );
    }
}

#[test]
fn cycle_fixture_describes_the_cycle_in_the_message() {
    let root = fixture_root().join("lock_order/bad_cycle_two_locks");
    let analysis = run_checks(&root, &[CheckId::LockOrder]).unwrap();
    assert_eq!(analysis.diags.len(), 1, "{:?}", analysis.diags);
    let msg = &analysis.diags[0].message;
    assert!(
        msg.contains("app::lib::a") && msg.contains("app::lib::b"),
        "{msg}"
    );
}
