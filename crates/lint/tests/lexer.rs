//! Lexer edge cases: the analyzer must not "see" pattern text that
//! lives inside strings or comments, and must keep brace depth and
//! line numbers exact across the gnarly literal forms.

use fastmatch_lint::lexer::{lex, Tok};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

fn strings(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn pattern_text_inside_string_is_a_string_token() {
    let src = r#"let msg = "call .lock() then notify_one()"; done();"#;
    let ids = idents(src);
    assert!(!ids.contains(&"lock".to_string()), "{ids:?}");
    assert!(!ids.contains(&"notify_one".to_string()), "{ids:?}");
    assert!(ids.contains(&"done".to_string()));
    assert_eq!(strings(src), vec!["call .lock() then notify_one()"]);
}

#[test]
fn line_comments_and_nested_block_comments_are_skipped() {
    let src = "a(); // b.lock()\n/* outer /* inner .unwrap() */ still comment */ c();";
    assert_eq!(idents(src), vec!["a", "c"]);
}

#[test]
fn raw_strings_with_hashes_and_embedded_quotes() {
    let src = r###"let s = r#"quote " and .lock() inside"#; after();"###;
    assert_eq!(idents(src), vec!["let", "s", "after"]);
    assert_eq!(strings(src), vec![r#"quote " and .lock() inside"#]);
}

#[test]
fn byte_and_raw_byte_strings() {
    let src = r###"let a = b"sleep()"; let c = br#"join()"#; tail();"###;
    let ids = idents(src);
    assert!(!ids.contains(&"sleep".to_string()), "{ids:?}");
    assert!(!ids.contains(&"join".to_string()), "{ids:?}");
    assert!(ids.contains(&"tail".to_string()));
}

#[test]
fn char_literal_vs_lifetime() {
    // 'a in `&'a str` is a lifetime, not an unterminated char literal:
    // the lexer must not swallow the rest of the line.
    let src = "fn f<'a>(x: &'a str) -> char { let c = '}'; let n = '\\n'; c }";
    let toks = lex(src);
    let depth_balanced = toks
        .iter()
        .filter(|t| matches!(t.tok, Tok::Punct('{')))
        .count()
        == toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::Punct('}')))
            .count();
    assert!(depth_balanced, "char literal '}}' leaked a brace");
    assert!(idents(src).contains(&"str".to_string()));
}

#[test]
fn escaped_quote_in_string_does_not_end_it() {
    let src = r#"let s = "a \" b .unwrap() c"; ok();"#;
    assert!(!idents(src).contains(&"unwrap".to_string()));
    assert!(idents(src).contains(&"ok".to_string()));
}

#[test]
fn line_numbers_survive_multiline_literals() {
    let src = "let a = \"line\none\";\nmarker();";
    let toks = lex(src);
    let marker = toks
        .iter()
        .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "marker"))
        .unwrap();
    assert_eq!(marker.line, 3);
}

#[test]
fn punct_and_brace_stream() {
    let toks = lex("impl T { fn g(&self) -> u8 { 0 } }");
    let puncts: String = toks
        .iter()
        .filter_map(|t| match t.tok {
            Tok::Punct(c) => Some(c),
            _ => None,
        })
        .collect();
    assert_eq!(puncts, "{(&)->{}}");
}
