//! Good: unwrap in test code (below `#[cfg(test)]`) and in doc prose
//! (".unwrap() like this") is exempt, matching the old shell gate.
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_of_some() {
        assert_eq!(first(&[5]).unwrap(), 5);
    }
}
