//! Bad: a fresh `.unwrap()` in non-test engine code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
