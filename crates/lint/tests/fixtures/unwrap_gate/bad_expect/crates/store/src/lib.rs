//! Bad: `.expect(` is the same gate — an invariant message does not
//! make the abort path acceptable in the hot path.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().expect("caller checked non-empty")
}
