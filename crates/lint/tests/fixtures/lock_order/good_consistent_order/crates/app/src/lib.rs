//! Good: every path orders a before b — a DAG, no finding.
use std::sync::Mutex;

pub struct T {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl T {
    pub fn sum(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn diff(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga - *gb
    }
}
