//! Bad: `forward` orders a before b, `backward` orders b before a —
//! the acquisition graph has a cycle.
use std::sync::Mutex;

pub struct T {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl T {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga - *gb
    }
}
