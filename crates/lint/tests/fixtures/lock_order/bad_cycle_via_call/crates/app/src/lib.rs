//! Bad: the cycle spans a call — `forward` holds a and calls
//! `bump_b_slot` (which locks b); `backward` holds b and locks a
//! directly. The cross-function lockset propagation must see it.
use std::sync::Mutex;

pub struct T {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

fn bump_b_slot(t: &T) {
    let mut gb = t.b.lock().unwrap();
    *gb += 1;
}

impl T {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        bump_b_slot(self);
        *ga
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga - *gb
    }
}
