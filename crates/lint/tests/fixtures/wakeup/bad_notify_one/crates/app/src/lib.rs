//! Bad: `notify_one` on a condvar with (potentially) many waiters —
//! the lost-wakeup shape PR 7's model checker proved real.
use std::sync::{Condvar, Mutex};

pub struct T {
    state: Mutex<bool>,
    cv: Condvar,
}

impl T {
    pub fn poke(&self) {
        let mut g = self.state.lock().unwrap();
        *g = true;
        drop(g);
        self.cv.notify_one();
    }
}
