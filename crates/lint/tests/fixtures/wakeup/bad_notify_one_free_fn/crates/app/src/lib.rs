//! Bad: same defect through a free function taking the condvar.
use std::sync::Condvar;

pub fn wake_exactly_one(cv: &Condvar) {
    cv.notify_one();
}
