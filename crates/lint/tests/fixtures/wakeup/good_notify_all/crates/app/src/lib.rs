//! Good: broadcast wakeup; a "notify_one" in a string or comment is
//! not a finding.
use std::sync::{Condvar, Mutex};

pub struct T {
    state: Mutex<bool>,
    cv: Condvar,
}

impl T {
    pub fn poke(&self) -> &'static str {
        let mut g = self.state.lock().unwrap();
        *g = true;
        drop(g);
        self.cv.notify_all();
        "never notify_one() here"
    }
}
