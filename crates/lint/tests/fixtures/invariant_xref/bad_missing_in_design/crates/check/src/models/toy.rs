//! Bad: the model registers an invariant DESIGN.md never documents.
pub fn explore() -> Result<(), Violation> {
    Err(Violation::new("phantom-invariant", "state 3"))
}
