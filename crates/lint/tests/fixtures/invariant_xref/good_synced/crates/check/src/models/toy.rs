//! Good: invariant documented, mutation test wired in CI.
pub fn explore() -> Result<(), Violation> {
    Err(Violation::new("toy-invariant", "state 3"))
}

fn finds_seeded_toy_bug() {
    explore().unwrap_err();
}
