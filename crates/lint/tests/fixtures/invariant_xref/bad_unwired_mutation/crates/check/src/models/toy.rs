//! Bad: the invariant is documented, but the `finds_*` mutation test
//! is not wired as a CI step — a detector CI never runs proves
//! nothing.
pub fn explore() -> Result<(), Violation> {
    Err(Violation::new("toy-invariant", "state 3"))
}

fn finds_seeded_toy_bug() {
    explore().unwrap_err();
}
