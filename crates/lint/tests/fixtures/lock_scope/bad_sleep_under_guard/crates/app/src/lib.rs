//! Bad: sleeps while a mutex guard is live — the p99 collapse the
//! lock_scope check exists to catch.
use std::sync::Mutex;
use std::time::Duration;

pub struct T {
    state: Mutex<u64>,
}

impl T {
    pub fn tick(&self) {
        let mut g = self.state.lock().unwrap();
        *g += 1;
        std::thread::sleep(Duration::from_millis(1));
    }
}
