//! Good: both release idioms — explicit `drop(guard)` and a scoped
//! block — put the blocking call off the lock. A mention of ".lock()"
//! in this comment or the string below must not confuse the lexer.
use std::sync::Mutex;
use std::time::Duration;

pub struct T {
    state: Mutex<u64>,
}

impl T {
    pub fn tick_dropped(&self) {
        let mut g = self.state.lock().unwrap();
        *g += 1;
        drop(g);
        std::thread::sleep(Duration::from_millis(1));
    }

    pub fn tick_scoped(&self) -> &'static str {
        {
            let mut g = self.state.lock().unwrap();
            *g += 1;
        }
        std::thread::sleep(Duration::from_millis(1));
        "holding .lock() only in prose"
    }
}
