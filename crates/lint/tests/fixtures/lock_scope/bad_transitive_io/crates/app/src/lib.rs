//! Bad: the blocking call hides one level down — `persist_now` fsyncs,
//! and `commit` calls it with the state guard live. The analyzer must
//! follow the chain.
use std::fs::File;
use std::sync::Mutex;

pub struct T {
    state: Mutex<u64>,
    file: File,
}

fn persist_now(f: &File) -> std::io::Result<()> {
    f.sync_all()
}

impl T {
    pub fn commit(&self) -> std::io::Result<()> {
        let mut g = self.state.lock().unwrap();
        *g += 1;
        persist_now(&self.file)
    }
}
