//! Bad: the counter is produced in production code but no test ever
//! looks at it — it can silently stop counting.
pub struct LiveStats {
    pub orphaned_gauge: u64,
}

pub fn snapshot() -> LiveStats {
    LiveStats { orphaned_gauge: 7 }
}
