//! Bad: the counter is declared and asserted on in a test, but no
//! production code ever writes it — dead telemetry.
#[derive(Default)]
pub struct CacheStats {
    pub ghost_counter: u64,
}

pub fn snapshot() -> CacheStats {
    CacheStats::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_counter_defaults_to_zero() {
        assert_eq!(snapshot().ghost_counter, 0);
    }
}
