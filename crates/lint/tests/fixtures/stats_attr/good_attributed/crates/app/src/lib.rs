//! Good: written in production, asserted in a test.
pub struct IoStats {
    pub blocks_scanned_zz: u64,
}

pub fn snapshot(n: u64) -> IoStats {
    IoStats {
        blocks_scanned_zz: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_what_it_saw() {
        assert_eq!(snapshot(3).blocks_scanned_zz, 3);
    }
}
