pub mod invariants;
pub mod stats;
pub mod unwrap;
pub mod wakeup;
