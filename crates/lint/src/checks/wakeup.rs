//! Check 3: wakeup audit. PR 7's model checker proved `notify_all` is
//! load-bearing for the scheduler with stealing off (`no-lost-wakeup`
//! fails under `notify_one` when the woken worker cannot serve the
//! queue it was woken for). The repo rule is therefore: `notify_one`
//! is allowed only where a single consumer is structurally guaranteed,
//! and every such site must be allowlisted with a justification.

use crate::source::Workspace;
use crate::{CheckId, Diagnostic};

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (_, f) in ws.src_files() {
        for (i, t) in f.tokens.iter().enumerate() {
            if t.is_ident("notify_one")
                && f.tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !f.in_test(t.line)
            {
                diags.push(Diagnostic {
                    check: CheckId::Wakeup,
                    file: f.rel.clone(),
                    line: t.line,
                    excerpt: f.excerpt(t.line).to_string(),
                    message: "`notify_one` risks lost wakeups unless exactly one \
                              consumer is structurally guaranteed; use `notify_all` \
                              or allowlist with a justification"
                        .to_string(),
                });
            }
        }
    }
    diags
}
