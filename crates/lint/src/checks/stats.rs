//! Check 5: stats attribution. Every public counter on the four
//! observability structs must be (a) written somewhere in production
//! code and (b) mentioned in at least one test. A counter failing (a)
//! is dead telemetry; one failing (b) can silently stop counting — the
//! exact drift the ROADMAP recorded for `pinned_snapshot_bytes`.

use std::collections::BTreeMap;

use crate::lexer::Tok;
use crate::source::Workspace;
use crate::{CheckId, Diagnostic};

const STATS_STRUCTS: &[&str] = &["LiveStats", "CacheStats", "IoStats", "SchedStats"];

struct Field {
    strukt: String,
    name: String,
    file: String,
    line: u32,
    excerpt: String,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    // Collect pub fields of the four structs, remembering each struct's
    // declaration span so its own field list is not counted as a write.
    let mut fields: Vec<Field> = Vec::new();
    let mut decl_spans: Vec<(usize, u32, u32)> = Vec::new(); // (file idx, from, to)
    for (fi, f) in ws.src_files() {
        let toks = &f.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_ident("struct")
                && toks
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .is_some_and(|n| STATS_STRUCTS.contains(&n))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
            {
                let strukt = toks[i + 1].ident().unwrap().to_string();
                let close = crate::source::matching_brace(toks, i + 2);
                decl_spans.push((
                    fi,
                    toks[i].line,
                    toks.get(close).map_or(u32::MAX, |t| t.line),
                ));
                let mut j = i + 3;
                while j < close {
                    if toks[j].is_ident("pub") && toks.get(j + 2).is_some_and(|t| t.is_punct(':')) {
                        if let Some(name) = toks.get(j + 1).and_then(|t| t.ident()) {
                            let line = toks[j + 1].line;
                            fields.push(Field {
                                strukt: strukt.clone(),
                                name: name.to_string(),
                                file: f.rel.clone(),
                                line,
                                excerpt: f.excerpt(line).to_string(),
                            });
                        }
                    }
                    j += 1;
                }
                i = close;
            }
            i += 1;
        }
    }

    // Tally write sites (non-test src) and test mentions per field name.
    let mut writes: BTreeMap<&str, u32> = BTreeMap::new();
    let mut mentions: BTreeMap<&str, u32> = BTreeMap::new();
    let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
    for (fi, f) in ws.files.iter().enumerate() {
        let toks = &f.tokens;
        for (i, t) in toks.iter().enumerate() {
            let id = match t.ident() {
                Some(s) => s,
                None => continue,
            };
            let Some(&name) = names.iter().find(|n| **n == id) else {
                continue;
            };
            if f.in_test(t.line) {
                *mentions.entry(name).or_default() += 1;
                continue;
            }
            let in_decl = decl_spans
                .iter()
                .any(|&(di, from, to)| di == fi && t.line >= from && t.line <= to);
            if in_decl {
                continue;
            }
            // Struct-literal init `name: value` (not a `::` path) …
            let literal_init = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'));
            // … or field assignment `.name =` / `.name +=` (but not `==`).
            let preceded_by_dot = i > 0 && toks[i - 1].is_punct('.');
            let assigned = preceded_by_dot
                && match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Punct('=')) => !toks.get(i + 2).is_some_and(|n| n.is_punct('=')),
                    Some(Tok::Punct('+')) | Some(Tok::Punct('-')) => {
                        toks.get(i + 2).is_some_and(|n| n.is_punct('='))
                    }
                    _ => false,
                };
            if literal_init || assigned {
                *writes.entry(name).or_default() += 1;
            }
        }
    }

    let mut diags = Vec::new();
    for fld in &fields {
        let w = writes.get(fld.name.as_str()).copied().unwrap_or(0);
        let m = mentions.get(fld.name.as_str()).copied().unwrap_or(0);
        if w == 0 {
            diags.push(Diagnostic {
                check: CheckId::Stats,
                file: fld.file.clone(),
                line: fld.line,
                excerpt: fld.excerpt.clone(),
                message: format!(
                    "`{}::{}` has no non-test write site \u{2014} dead telemetry",
                    fld.strukt, fld.name
                ),
            });
        }
        if m == 0 {
            diags.push(Diagnostic {
                check: CheckId::Stats,
                file: fld.file.clone(),
                line: fld.line,
                excerpt: fld.excerpt.clone(),
                message: format!(
                    "`{}::{}` is never mentioned in a test \u{2014} it can silently \
                     stop counting",
                    fld.strukt, fld.name
                ),
            });
        }
    }
    diags
}
