//! Check 4: invariant cross-reference. The dynamic model checker in
//! `crates/check` registers invariants by name (`Violation::new("…")`);
//! DESIGN.md § "Concurrency protocols" documents the same names. The
//! two drift independently unless a machine compares them, and a
//! `finds_*` mutation test that exists but is not wired as a CI step
//! proves nothing — so all three surfaces are cross-checked here.

use std::collections::BTreeSet;

use crate::lexer::Tok;
use crate::source::Workspace;
use crate::{CheckId, Diagnostic};

const DESIGN_SECTION: &str = "## Concurrency protocols";

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Invariant names registered by the models, with one def site each.
    let mut model_names: Vec<(String, String, u32)> = Vec::new(); // (name, file, line)
    let mut finds_fns: Vec<(String, String, u32)> = Vec::new();
    for f in ws.files.iter().filter(|f| f.crate_name == "check") {
        let in_models = f.rel.contains("/models/");
        for (i, t) in f.tokens.iter().enumerate() {
            if in_models && t.is_ident("Violation") {
                // Violation :: new ( "name"
                let new_at = f.tokens.get(i + 3);
                let open = f.tokens.get(i + 4);
                let arg = f.tokens.get(i + 5);
                if new_at.is_some_and(|t| t.is_ident("new"))
                    && open.is_some_and(|t| t.is_punct('('))
                {
                    if let Some(Tok::Str(name)) = arg.map(|t| &t.tok) {
                        model_names.push((name.clone(), f.rel.clone(), t.line));
                    }
                }
            }
            if t.is_ident("fn") {
                if let Some(name) = f.tokens.get(i + 1).and_then(|t| t.ident()) {
                    if name.starts_with("finds_") {
                        finds_fns.push((name.to_string(), f.rel.clone(), t.line));
                    }
                }
            }
        }
    }

    // Names documented in DESIGN.md's protocol section: any
    // `**kebab-case**` bold span (at least one hyphen, so ordinary
    // bold prose is not swept in).
    let design_names: BTreeSet<String> = match &ws.design_md {
        Some(md) => section_bold_kebab(md),
        None => BTreeSet::new(),
    };
    let model_set: BTreeSet<&str> = model_names.iter().map(|(n, _, _)| n.as_str()).collect();

    for (name, file, line) in &model_names {
        if !design_names.contains(name) {
            diags.push(Diagnostic {
                check: CheckId::Invariants,
                file: file.clone(),
                line: *line,
                excerpt: format!("invariant \"{name}\""),
                message: format!(
                    "model invariant `{name}` is not documented under DESIGN.md \
                     \u{201c}{}\u{201d}",
                    &DESIGN_SECTION[3..]
                ),
            });
        }
    }
    for name in &design_names {
        if !model_set.contains(name.as_str()) {
            diags.push(Diagnostic {
                check: CheckId::Invariants,
                file: "DESIGN.md".to_string(),
                line: 0,
                excerpt: format!("documented invariant \"{name}\""),
                message: format!(
                    "DESIGN.md documents invariant `{name}` but no model registers \
                     it via Violation::new"
                ),
            });
        }
    }

    // Every finds_* mutation test must appear in the CI workflow.
    let ci = ws.ci_yml.as_deref().unwrap_or("");
    for (name, file, line) in &finds_fns {
        if !ci.contains(name.as_str()) {
            diags.push(Diagnostic {
                check: CheckId::Invariants,
                file: file.clone(),
                line: *line,
                excerpt: format!("fn {name}"),
                message: format!(
                    "mutation test `{name}` is not wired as a CI step \u{2014} a \
                     detector that CI never runs proves nothing"
                ),
            });
        }
    }
    diags
}

/// Bold kebab-case names in the DESIGN section (between the section
/// heading and the next `## ` heading).
fn section_bold_kebab(md: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_section = false;
    for line in md.lines() {
        if line.starts_with(DESIGN_SECTION) {
            in_section = true;
            continue;
        }
        if in_section && line.starts_with("## ") {
            break;
        }
        if !in_section {
            continue;
        }
        let mut rest = line;
        while let Some(a) = rest.find("**") {
            let tail = &rest[a + 2..];
            match tail.find("**") {
                Some(b) => {
                    let name = &tail[..b];
                    if name.contains('-')
                        && name
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                    {
                        out.insert(name.to_string());
                    }
                    rest = &tail[b + 2..];
                }
                None => break,
            }
        }
    }
    out
}
