//! Check 6: the unwrap gate, absorbed from `ci/lint_unwrap.sh`. Same
//! policy, same scope (`crates/engine/src`, `crates/store/src`), same
//! one-finding-per-line granularity as the old awk scan, so the 48
//! frozen sites migrate 1:1 into the fingerprint allowlist. New
//! `.unwrap()` / `.expect(` in non-test hot-path code must either be
//! converted to poison-tolerant handling (`lock_unpoisoned`,
//! `unwrap_or_else(PoisonError::into_inner)`) or deliberately frozen
//! via `--refresh`.

use std::collections::BTreeSet;

use crate::source::Workspace;
use crate::{CheckId, Diagnostic};

const SCOPE: &[&str] = &["engine", "store"];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (_, f) in ws.src_files() {
        if !SCOPE.contains(&f.crate_name.as_str()) {
            continue;
        }
        let mut hit_lines: BTreeSet<u32> = BTreeSet::new();
        for (i, t) in f.tokens.iter().enumerate() {
            if f.in_test(t.line) {
                continue;
            }
            let dotted = i > 0 && f.tokens[i - 1].is_punct('.');
            if !dotted {
                continue;
            }
            let hit = (t.is_ident("unwrap")
                && f.tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                && f.tokens.get(i + 2).is_some_and(|n| n.is_punct(')')))
                || (t.is_ident("expect") && f.tokens.get(i + 1).is_some_and(|n| n.is_punct('(')));
            if hit {
                hit_lines.insert(t.line);
            }
        }
        for line in hit_lines {
            diags.push(Diagnostic {
                check: CheckId::UnwrapGate,
                file: f.rel.clone(),
                line,
                excerpt: f.excerpt(line).to_string(),
                message: "`.unwrap()`/`.expect(` in hot-path code: a poisoned lock \
                          or I/O error here aborts the worker \u{2014} handle it or \
                          freeze the site via --refresh"
                    .to_string(),
            });
        }
    }
    diags
}
