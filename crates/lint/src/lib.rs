//! `fastmatch-lint`: a repo-specific static analyzer.
//!
//! The dynamic model checker (`crates/check`) proves the concurrency
//! protocols correct *as modelled*; this crate closes the static half:
//! it checks that the **source code still follows the conventions the
//! models assume**. Std-only, no `syn` — a hand-rolled lexer
//! ([`lexer`]) plus a guard-liveness pass ([`locks`]) are enough for
//! the six checks, and keep the tool buildable in the offline CI image
//! and fast enough (< 5 s) to run on every push.
//!
//! | id | check |
//! |----|-------|
//! | `lock_scope`     | no blocking call (fsync, sleep, file write, recv, join — direct or via call chain) while a mutex/rwlock guard is live |
//! | `lock_order`     | cross-file lock acquisition graph must be a DAG; emitted as DOT |
//! | `wakeup`         | `notify_one` only at allowlisted single-consumer sites |
//! | `invariant_xref` | model invariants ⇔ DESIGN.md § Concurrency protocols; every `finds_*` mutation test wired in CI |
//! | `stats_attr`     | every pub counter on the Stats structs has a production write site and a test mention |
//! | `unwrap_gate`    | no new `.unwrap()`/`.expect(` in engine/store hot paths (absorbs `ci/lint_unwrap.sh`) |
//!
//! Intentional exceptions live in `ci/lint_allowlist.txt`
//! ([`allowlist`]), fingerprinted by (check, path, source text) so
//! line-number churn is irrelevant.

pub mod allowlist;
pub mod checks;
pub mod lexer;
pub mod locks;
pub mod source;

use std::path::Path;

/// The six checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckId {
    LockScope,
    LockOrder,
    Wakeup,
    Invariants,
    Stats,
    UnwrapGate,
}

impl CheckId {
    pub const ALL: [CheckId; 6] = [
        CheckId::LockScope,
        CheckId::LockOrder,
        CheckId::Wakeup,
        CheckId::Invariants,
        CheckId::Stats,
        CheckId::UnwrapGate,
    ];

    pub fn id(&self) -> &'static str {
        match self {
            CheckId::LockScope => "lock_scope",
            CheckId::LockOrder => "lock_order",
            CheckId::Wakeup => "wakeup",
            CheckId::Invariants => "invariant_xref",
            CheckId::Stats => "stats_attr",
            CheckId::UnwrapGate => "unwrap_gate",
        }
    }

    pub fn parse(s: &str) -> Option<CheckId> {
        CheckId::ALL.iter().copied().find(|c| c.id() == s)
    }
}

/// One finding. `excerpt` is the trimmed source line (it feeds the
/// fingerprint, so it must be stable under reformatting-free moves).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub check: CheckId,
    pub file: String,
    pub line: u32,
    pub excerpt: String,
    pub message: String,
}

impl Diagnostic {
    /// Clippy-style rendering.
    pub fn render(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}\n   |  {}\n",
            self.check.id(),
            self.message,
            self.file,
            self.line,
            self.excerpt
        )
    }
}

/// Full analyzer output: findings plus the lock-order edge list (for
/// the DOT artifact even when acyclic).
pub struct Analysis {
    pub diags: Vec<Diagnostic>,
    pub edges: Vec<locks::Edge>,
}

/// Runs the selected checks against the workspace rooted at `root`.
pub fn run_checks(root: &Path, selected: &[CheckId]) -> std::io::Result<Analysis> {
    let ws = source::Workspace::load(root)?;
    let mut diags = Vec::new();
    let mut edges = Vec::new();
    let wants = |c: CheckId| selected.contains(&c);

    if wants(CheckId::LockScope) || wants(CheckId::LockOrder) {
        let la = locks::analyze(&ws);
        if wants(CheckId::LockScope) {
            diags.extend(la.diags);
        }
        if wants(CheckId::LockOrder) {
            diags.extend(locks::find_cycles(&la.edges));
        }
        edges = la.edges;
    }
    if wants(CheckId::Wakeup) {
        diags.extend(checks::wakeup::run(&ws));
    }
    if wants(CheckId::Invariants) {
        diags.extend(checks::invariants::run(&ws));
    }
    if wants(CheckId::Stats) {
        diags.extend(checks::stats::run(&ws));
    }
    if wants(CheckId::UnwrapGate) {
        diags.extend(checks::unwrap::run(&ws));
    }
    diags.sort_by(|a, b| {
        (a.check, &a.file, a.line, &a.message).cmp(&(b.check, &b.file, b.line, &b.message))
    });
    Ok(Analysis { diags, edges })
}
