//! Workspace loading and the per-file source model.
//!
//! The analyzer scans `crates/*/src/**/*.rs` (production code — the
//! one-level glob naturally excludes the vendored `crates/compat/*`
//! shims, which live one directory deeper) and additionally loads
//! `crates/*/tests/**/*.rs`, DESIGN.md and the CI workflow, which the
//! stats-attribution and invariant cross-reference checks read but
//! never lint.
//!
//! Test exemption follows the same convention `ci/lint_unwrap.sh`
//! enforced: everything at or below the first `#[cfg(test)]` line of a
//! source file is test code (the repo keeps a single trailing
//! `mod tests`), and files under a crate's `tests/` directory are test
//! code in full.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token};

/// One loaded Rust source file with its token stream.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Name of the owning crate directory (`store`, `engine`, …).
    pub crate_name: String,
    /// Short module label used in lock-graph node names: the file stem,
    /// or the parent directory for `mod.rs`.
    pub module: String,
    pub lines: Vec<String>,
    pub tokens: Vec<Token>,
    /// 1-based line of the first `#[cfg(test)]`; `u32::MAX` if none.
    pub test_cutoff: u32,
    /// True for files under `crates/*/tests/`.
    pub is_test_file: bool,
}

impl SourceFile {
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file || line >= self.test_cutoff
    }

    /// Trimmed source text of a 1-based line (empty if out of range).
    pub fn excerpt(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
    }
}

/// Everything the checks need, loaded once.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    pub design_md: Option<String>,
    pub ci_yml: Option<String>,
}

impl Workspace {
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect(),
            Err(e) => return Err(e),
        };
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name = dir
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or("")
                .to_string();
            for (sub, is_test) in [("src", false), ("tests", true)] {
                let base = dir.join(sub);
                if !base.is_dir() {
                    continue;
                }
                let mut rs_files = Vec::new();
                collect_rs(&base, &mut rs_files)?;
                rs_files.sort();
                for path in rs_files {
                    files.push(load_file(root, &path, &crate_name, is_test)?);
                }
            }
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            design_md: fs::read_to_string(root.join("DESIGN.md")).ok(),
            ci_yml: fs::read_to_string(root.join(".github/workflows/ci.yml")).ok(),
        })
    }

    /// Indexes of production (non-`tests/`) files.
    pub fn src_files(&self) -> impl Iterator<Item = (usize, &SourceFile)> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test_file)
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load_file(root: &Path, path: &Path, crate_name: &str, is_test: bool) -> io::Result<SourceFile> {
    let text = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    let test_cutoff = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .map(|i| i as u32 + 1)
        .unwrap_or(u32::MAX);
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("")
        .to_string();
    let module = if stem == "mod" {
        path.parent()
            .and_then(|p| p.file_name())
            .and_then(|s| s.to_str())
            .unwrap_or("mod")
            .to_string()
    } else {
        stem
    };
    Ok(SourceFile {
        rel,
        crate_name: crate_name.to_string(),
        module,
        tokens: lex(&text),
        lines,
        test_cutoff,
        is_test_file: is_test,
    })
}

/// A function definition located in a file's token stream.
pub struct FnDef {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, excluding the outer braces.
    pub body: (usize, usize),
}

/// Extracts all `fn name(...) { ... }` definitions (free functions,
/// methods, trait default methods — anything introduced by the `fn`
/// keyword followed by a name). Bodyless trait signatures are skipped,
/// as are `fn(...)` pointer types (no name follows the keyword).
pub fn extract_fns(tokens: &[Token]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) {
                let line = tokens[i].line;
                // Scan the header for the body `{` at bracket depth 0;
                // `;` at depth 0 means a bodyless signature.
                let mut j = i + 2;
                let mut depth = 0i32;
                let mut body = None;
                while j < tokens.len() {
                    match tokens[j].tok {
                        crate::lexer::Tok::Punct('(') | crate::lexer::Tok::Punct('[') => depth += 1,
                        crate::lexer::Tok::Punct(')') | crate::lexer::Tok::Punct(']') => depth -= 1,
                        crate::lexer::Tok::Punct('{') if depth == 0 => {
                            body = Some(j);
                            break;
                        }
                        crate::lexer::Tok::Punct(';') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let close = matching_brace(tokens, open);
                    out.push(FnDef {
                        name: name.to_string(),
                        line,
                        body: (open + 1, close),
                    });
                }
                // Continue just past the name: nested fns are found by
                // the same scan.
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or end of stream).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            crate::lexer::Tok::Punct('{') => depth += 1,
            crate::lexer::Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}
