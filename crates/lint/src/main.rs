//! CLI for the analyzer. CI runs `cargo run -p fastmatch-lint -- --deny`
//! from the workspace root; `--refresh` regenerates the allowlist in
//! place (freezing every current finding), and `--check <id>` narrows
//! the run — which is how the `ci/lint_unwrap.sh` shim keeps its old
//! interface.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use fastmatch_lint::{allowlist::Allowlist, locks, run_checks, CheckId};

const USAGE: &str = "\
fastmatch-lint: repo-specific static analysis for the FastMatch workspace

USAGE: fastmatch-lint [--deny] [--refresh] [--check <id>[,<id>…]]
                      [--root <dir>] [--allowlist <file>] [--dot <file>] [--list]

  --deny        exit nonzero on any unallowlisted finding (CI mode;
                default is advisory: print findings, exit 0)
  --refresh     rewrite the allowlist from current findings, preserving
                justifications, then exit
  --check       run only the named checks (default: all six)
  --root        workspace root (default: current directory)
  --allowlist   allowlist path (default: <root>/ci/lint_allowlist.txt)
  --dot         where to write the lock-order DOT graph
                (default: <root>/crates/lint/LOCK_ORDER.dot when the
                lock_order check runs; pass 'none' to skip)
  --list        print check ids and exit";

fn main() -> ExitCode {
    let mut deny = false;
    let mut refresh = false;
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut dot_path: Option<String> = None;
    let mut selected: Vec<CheckId> = CheckId::ALL.to_vec();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--refresh" => refresh = true,
            "--list" => {
                for c in CheckId::ALL {
                    println!("{}", c.id());
                }
                return ExitCode::SUCCESS;
            }
            "--check" => {
                let Some(v) = args.next() else {
                    eprintln!("--check needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                selected.clear();
                for part in v.split(',') {
                    match CheckId::parse(part.trim()) {
                        Some(c) => selected.push(c),
                        None => {
                            eprintln!("unknown check `{part}` (see --list)");
                            return ExitCode::from(2);
                        }
                    }
                }
            }
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--allowlist needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--dot" => match args.next() {
                Some(v) => dot_path = Some(v),
                None => {
                    eprintln!("--dot needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let t0 = Instant::now();
    let analysis = match run_checks(&root, &selected) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "fastmatch-lint: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let alpath = allowlist_path.unwrap_or_else(|| root.join("ci/lint_allowlist.txt"));
    let allow = Allowlist::load(&alpath);

    if refresh {
        if let Err(e) = allow.refresh(&alpath, &analysis.diags) {
            eprintln!("fastmatch-lint: cannot write {}: {e}", alpath.display());
            return ExitCode::from(2);
        }
        println!(
            "fastmatch-lint: froze {} finding(s) into {}",
            analysis.diags.len(),
            alpath.display()
        );
        return ExitCode::SUCCESS;
    }

    // DOT artifact whenever the lock-order check ran.
    if selected.contains(&CheckId::LockOrder) {
        let dot = match dot_path.as_deref() {
            Some("none") => None,
            Some(p) => Some(PathBuf::from(p)),
            None => Some(root.join("crates/lint/LOCK_ORDER.dot")),
        };
        if let Some(p) = dot {
            if let Err(e) = std::fs::write(&p, locks::to_dot(&analysis.edges)) {
                eprintln!("fastmatch-lint: cannot write {}: {e}", p.display());
            }
        }
    }

    let total = analysis.diags.len();
    let (suppressed, reported, stale) = allow.apply(analysis.diags, &selected);
    for d in &reported {
        println!("{}", d.render());
    }
    println!(
        "fastmatch-lint: {} finding(s), {} allowlisted, {} reported, {} stale allowlist entr{} ({} checks, {:?})",
        total,
        suppressed.len(),
        reported.len(),
        stale,
        if stale == 1 { "y" } else { "ies" },
        selected.len(),
        t0.elapsed()
    );
    if !reported.is_empty() {
        println!(
            "note: intentional sites can be frozen with `cargo run -p fastmatch-lint -- --refresh` \
             (fill in the justification column)"
        );
        if deny {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
