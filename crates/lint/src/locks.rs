//! Guard-liveness and lock-order analysis (checks 1 and 2 share one
//! pass over every function body).
//!
//! The model is deliberately simple and matches how this repo actually
//! writes locking code:
//!
//! - a guard is born by a `let` whose initializer is an acquisition —
//!   `.lock()` / `.read()` / `.write()` (empty parens, which is what
//!   separates `RwLock` from `io::Read`/`Write`), the repo's
//!   `lock_unpoisoned(&…)` helper, or a `match x.lock() { … }`
//!   poison-recovery block — followed only by the usual adapters
//!   (`unwrap`, `expect`, `unwrap_or_else`, `?`);
//! - it dies at the closing brace of its block or at `drop(guard)`;
//! - condvar re-binding (`g = cv.wait(g).unwrap()`) keeps it alive,
//!   which is exactly right: the guard is re-acquired on wakeup.
//!
//! Statement-scope temporaries (`m.lock().unwrap().grant(n)`) are not
//! tracked as live guards — they die within the statement — but still
//! count as acquisition events for the lock-order graph.
//!
//! Blocking calls are found both directly (`sync_all`, `thread::sleep`,
//! `write_all`, `recv`, `join`, …) and transitively: a name-keyed call
//! graph over every workspace `fn` is saturated to a fixed point, so
//! `seal_run → rotate_wal_after_seal → rotate_to → write_all` is
//! reported at the outermost call site with the chain in the message.
//! The call graph is name-keyed (no type information), so propagation
//! is restricted to *uniquely named* workspace functions: a call to a
//! name with several definitions (`new`, `push`, `insert`, …) is a
//! barrier, not a merge — merging was tried first and drowned the
//! signal in `Vec::push`-reaches-`Drop`-impl chains. Distinctively
//! named helpers (`fsync_dir`, `rotate_wal_after_seal`,
//! `write_table_atomic`) are exactly the ones worth following.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, Token};
use crate::source::{extract_fns, matching_brace, SourceFile, Workspace};
use crate::{CheckId, Diagnostic};

/// Blocking methods that must see empty parens (disambiguates
/// `thread::join()` from `Vec::join(sep)`, `mpsc::recv()` from nothing
/// in particular, `Write::flush()` from user methods with args).
const BLOCKING_EMPTY: &[&str] = &["sync_all", "sync_data", "flush", "join", "recv"];
/// Blocking calls matched regardless of arguments.
const BLOCKING_ANY: &[&str] = &["write_all", "write_fmt", "recv_timeout", "sleep"];
/// Adapters allowed between an acquisition and the end of a guard
/// binding's initializer.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];
/// The repo's poison-stripping lock helper; its call sites are
/// acquisitions and its definition is excluded from the call graph.
const LOCK_HELPER: &str = "lock_unpoisoned";
/// Std container/sync method names that are propagation barriers even
/// when a workspace fn happens to share the name (`PrefetchQueue::push`
/// is the only workspace `push`, but `.push(` almost always means
/// `Vec::push` — following it would hang the queue's lockset on every
/// vector in the tree).
const STD_METHODS: &[&str] = &[
    "push", "pop", "insert", "remove", "get", "get_mut", "set", "len", "clear", "extend", "take",
    "swap", "load", "store", "next", "clone", "entry", "last", "first", "contains", "send",
];

/// One directed lock-order edge: `from` was held while `to` was
/// acquired (possibly through a call chain described by `via`).
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
    pub via: String,
}

/// An acquisition occurrence in a token stream.
struct Acq {
    /// Lock node label, `crate::module::field`.
    label: String,
    line: u32,
    /// Token index just past the acquisition's closing paren.
    end: usize,
}

/// Facts about one function, merged by name across the workspace.
#[derive(Default, Clone)]
struct FnFacts {
    /// `Some(chain)` if the function (transitively) blocks; the chain
    /// explains why, e.g. `"rotate_to → write_all"`.
    blocking: Option<String>,
    /// Locks (transitively) acquired by the function.
    locks: BTreeSet<String>,
    /// Names of functions it calls.
    calls: BTreeSet<String>,
}

/// Output of the shared pass: lock-scope diagnostics plus the
/// acquisition-order edge list for the cycle check and DOT artifact.
pub struct LockAnalysis {
    pub diags: Vec<Diagnostic>,
    pub edges: Vec<Edge>,
}

pub fn analyze(ws: &Workspace) -> LockAnalysis {
    // Pass 1: per-function facts. Test code is fully excluded — it
    // neither produces findings nor feeds propagation.
    let mut per_def: Vec<(String, FnFacts)> = Vec::new();
    let mut def_count: BTreeMap<String, u32> = BTreeMap::new();
    let mut bodies = Vec::new(); // (file idx, FnDef) for pass 2
    for (fi, f) in ws.src_files() {
        for def in extract_fns(&f.tokens) {
            if f.in_test(def.line) || def.name == LOCK_HELPER {
                continue;
            }
            let mut facts = FnFacts::default();
            collect_facts(f, &f.tokens[def.body.0..def.body.1], &mut facts);
            *def_count.entry(def.name.clone()).or_default() += 1;
            per_def.push((def.name.clone(), facts));
            bodies.push((fi, def));
        }
    }
    // Only uniquely named functions take part in propagation; a name
    // with several definitions is a barrier (see module docs).
    let mut facts: BTreeMap<String, FnFacts> = per_def
        .into_iter()
        .filter(|(name, _)| def_count[name] == 1)
        .collect();

    // Saturate blocking/lockset over the call graph.
    loop {
        let mut changed = false;
        let names: Vec<String> = facts.keys().cloned().collect();
        for name in &names {
            let calls = facts[name].calls.clone();
            for callee in calls {
                if let Some(cf) = facts.get(&callee).cloned() {
                    let me = facts.get_mut(name).unwrap();
                    if me.blocking.is_none() {
                        if let Some(chain) = &cf.blocking {
                            me.blocking = Some(format!("{callee} \u{2192} {chain}"));
                            changed = true;
                        }
                    }
                    for l in cf.locks {
                        changed |= me.locks.insert(l);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 2: guard machine over every production function.
    let mut diags = Vec::new();
    let mut edges = Vec::new();
    for (fi, def) in &bodies {
        let f = &ws.files[*fi];
        scan_body(f, def.body, &facts, &mut diags, &mut edges);
    }
    LockAnalysis { diags, edges }
}

/// Pass 1 fact collection for one function body.
fn collect_facts(f: &SourceFile, body: &[Token], out: &mut FnFacts) {
    let mut i = 0usize;
    while i < body.len() {
        if let Some(acq) = detect_acquisition(f, body, i) {
            out.locks.insert(acq.label);
            i = acq.end;
            continue;
        }
        if let Some((what, _)) = detect_blocking(body, i) {
            if out.blocking.is_none() {
                out.blocking = Some(what);
            }
        }
        if let Some(callee) = detect_call(body, i) {
            out.calls.insert(callee.to_string());
        }
        i += 1;
    }
}

struct Guard {
    name: String,
    label: String,
    depth: i32,
    line: u32,
}

/// Pass 2: walk one body tracking live guards; emit lock-scope
/// diagnostics and lock-order edges.
fn scan_body(
    f: &SourceFile,
    body: (usize, usize),
    facts: &BTreeMap<String, FnFacts>,
    diags: &mut Vec<Diagnostic>,
    edges: &mut Vec<Edge>,
) {
    let toks = &f.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // A `let` binding resolved by lookahead: the guard goes live only
    // when the main scan reaches the terminating `;`, so acquisitions
    // inside the initializer order against the *previous* guard set.
    let mut pending: Option<(usize, Guard)> = None;

    let mut i = body.0;
    while i < body.1 {
        if let Some((at, _)) = &pending {
            if i > *at {
                let (_, g) = pending.take().unwrap();
                guards.push(g);
            }
        }
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(w) if w == "fn" && toks.get(i + 1).and_then(|t| t.ident()).is_some() => {
                // Nested fn: its body is scanned separately and cannot
                // capture our guards — skip past it.
                let mut j = i + 2;
                while j < body.1 && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < body.1 && toks[j].is_punct('{') {
                    i = matching_brace(toks, j) + 1;
                } else {
                    i = j + 1;
                }
                continue;
            }
            Tok::Ident(w)
                if w == "drop"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                    guards.retain(|g| g.name != name);
                }
            }
            Tok::Ident(w) if w == "let" => {
                if let Some((semi, guard)) = parse_guard_let(f, toks, i, body.1, depth) {
                    pending = Some((semi, guard));
                }
            }
            _ => {}
        }

        // Event checks (acquisitions / blocking) run on every token,
        // including inside `let` initializers.
        if let Some(acq) = detect_acquisition(f, &toks[body.0..body.1], i - body.0) {
            let line = acq.line;
            for g in &guards {
                push_edge(edges, g, &acq.label, f, line, "");
            }
            i = body.0 + acq.end;
            continue;
        }
        if !guards.is_empty() && !f.in_test(t.line) {
            if let Some((what, line)) = detect_blocking(&toks[body.0..body.1], i - body.0) {
                let g = guards.last().unwrap();
                diags.push(Diagnostic {
                    check: CheckId::LockScope,
                    file: f.rel.clone(),
                    line,
                    excerpt: f.excerpt(line).to_string(),
                    message: format!(
                        "blocking call `{what}` while guard `{}` holds `{}` (bound line {})",
                        g.name, g.label, g.line
                    ),
                });
                i += 1;
                continue;
            }
        }
        if let Some(callee) = detect_call(toks.get(body.0..body.1).unwrap_or(&[]), i - body.0) {
            if let Some(cf) = facts.get(callee) {
                if !guards.is_empty() {
                    if let Some(chain) = &cf.blocking {
                        if !f.in_test(t.line) {
                            let g = guards.last().unwrap();
                            diags.push(Diagnostic {
                                check: CheckId::LockScope,
                                file: f.rel.clone(),
                                line: t.line,
                                excerpt: f.excerpt(t.line).to_string(),
                                message: format!(
                                    "call blocks via `{callee} \u{2192} {chain}` while guard `{}` holds `{}` (bound line {})",
                                    g.name, g.label, g.line
                                ),
                            });
                        }
                    }
                    for lock in &cf.locks {
                        for g in &guards {
                            push_edge(edges, g, lock, f, t.line, callee);
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

fn push_edge(edges: &mut Vec<Edge>, g: &Guard, to: &str, f: &SourceFile, line: u32, via: &str) {
    if g.label == to {
        // Re-acquisition of the same lock name (condvar loops, retry
        // paths) is not an ordering fact.
        return;
    }
    edges.push(Edge {
        from: g.label.clone(),
        to: to.to_string(),
        file: f.rel.clone(),
        line,
        via: via.to_string(),
    });
}

/// Lookahead from a `let` token: if the statement binds a guard,
/// returns (index of the terminating `;`, the guard). Never consumes —
/// the main scan still walks the initializer for events.
fn parse_guard_let(
    f: &SourceFile,
    toks: &[Token],
    let_idx: usize,
    end: usize,
    depth: i32,
) -> Option<(usize, Guard)> {
    let mut j = let_idx + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks.get(j).and_then(|t| t.ident())?.to_string();
    if name == "_" {
        // `let _guard = …` still binds for the scope; `let _ = …` drops
        // immediately, but `_` does not lex as an ident path here
        // anyway. Names are fine as-is.
    }
    j += 1;
    // Skip an optional `: Type` annotation up to the `=` at bracket
    // depth 0; bail on pattern bindings (`let (a, b) = …`).
    let mut bdepth = 0i32;
    loop {
        let t = toks.get(j)?;
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => bdepth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => bdepth -= 1,
            Tok::Punct('=') if bdepth <= 0 => {
                // `==` cannot appear before the initializer's `=`.
                j += 1;
                break;
            }
            Tok::Punct(';') => return None,
            _ => {}
        }
        j += 1;
        if j >= end {
            return None;
        }
    }
    let init_start = j;
    // Find the terminating `;` at bracket depth 0.
    let mut d = 0i32;
    let mut semi = None;
    while j < end {
        match toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => d -= 1,
            Tok::Punct(';') if d == 0 => {
                semi = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let semi = semi?;
    let init = &toks[init_start..semi];
    let is_match = init.first().is_some_and(|t| t.is_ident("match"));

    // Locate acquisitions within the initializer.
    let mut acqs = Vec::new();
    let mut k = 0usize;
    while k < init.len() {
        if let Some(a) = detect_acquisition(f, init, k) {
            k = a.end;
            acqs.push(a);
            continue;
        }
        k += 1;
    }
    let first = acqs.first()?;
    let guard = Guard {
        name,
        label: first.label.clone(),
        depth,
        line: toks[let_idx].line,
    };
    if is_match {
        // `let g = match x.lock() { Ok(g) => g, Err(p) => p.into_inner() };`
        if acqs.len() == 1 {
            return Some((semi, guard));
        }
        return None;
    }
    // Direct binding: everything after the acquisition must be a plain
    // adapter chain, otherwise the lock is a statement temporary
    // (`m.lock().unwrap().grant(n)` binds the *result*, not the guard).
    let mut k = first.end;
    while k < init.len() {
        let t = &init[k];
        if t.is_punct('?') {
            k += 1;
            continue;
        }
        if t.is_punct('.') {
            let id = init.get(k + 1).and_then(|t| t.ident())?;
            if !GUARD_ADAPTERS.contains(&id) {
                return None;
            }
            if !init.get(k + 2).is_some_and(|t| t.is_punct('(')) {
                return None;
            }
            // Skip the balanced argument list.
            let mut pd = 0i32;
            let mut m = k + 2;
            while m < init.len() {
                match init[m].tok {
                    Tok::Punct('(') => pd += 1,
                    Tok::Punct(')') => {
                        pd -= 1;
                        if pd == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
            continue;
        }
        return None;
    }
    Some((semi, guard))
}

/// Detects an acquisition starting at `i`: `.lock()`, `.read()`,
/// `.write()` (empty parens), or `lock_unpoisoned(&…)`.
fn detect_acquisition(f: &SourceFile, toks: &[Token], i: usize) -> Option<Acq> {
    let t = toks.get(i)?;
    if t.is_punct('.') {
        let id = toks.get(i + 1).and_then(|t| t.ident())?;
        let is_acq = matches!(id, "lock" | "read" | "write")
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
        if !is_acq {
            return None;
        }
        let field = receiver_field(toks, i);
        return Some(Acq {
            label: node_label(f, &field),
            line: toks[i + 1].line,
            end: i + 4,
        });
    }
    if t.is_ident(LOCK_HELPER) && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        // Skip definitions (`fn lock_unpoisoned…`).
        if i > 0 && toks[i - 1].is_ident("fn") {
            return None;
        }
        // Last identifier of the argument expression names the field.
        let mut pd = 0i32;
        let mut j = i + 1;
        let mut field = String::from("anon");
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('(') => pd += 1,
                Tok::Punct(')') => {
                    pd -= 1;
                    if pd == 0 {
                        break;
                    }
                }
                Tok::Ident(w) if w != "self" => field = w.clone(),
                _ => {}
            }
            j += 1;
        }
        return Some(Acq {
            label: node_label(f, &field),
            line: t.line,
            end: j + 1,
        });
    }
    None
}

/// Walks back over a `recv.field.field` chain from the `.` at `i` and
/// returns the last field name (`anon` for computed receivers).
fn receiver_field(toks: &[Token], dot: usize) -> String {
    let mut j = dot;
    let mut last = None;
    while j >= 1 {
        let id = match toks[j - 1].ident() {
            Some(s) => s,
            None => break,
        };
        if last.is_none() || id != "self" {
            last = Some(id.to_string());
        }
        if j >= 2 && toks[j - 2].is_punct('.') {
            j -= 2;
        } else {
            break;
        }
    }
    // Prefer the field nearest the `.lock()`; the loop above walked
    // leftwards, so recompute: the nearest ident is toks[dot-1].
    match toks.get(dot.wrapping_sub(1)).and_then(|t| t.ident()) {
        Some(s) if s != "self" => s.to_string(),
        _ => last.unwrap_or_else(|| "anon".to_string()),
    }
}

fn node_label(f: &SourceFile, field: &str) -> String {
    format!("{}::{}::{}", f.crate_name, f.module, field)
}

/// Detects a direct blocking call at `i`; returns (name, line).
fn detect_blocking(toks: &[Token], i: usize) -> Option<(String, u32)> {
    let t = toks.get(i)?;
    let id = t.ident()?;
    let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    if !called {
        return None;
    }
    let empty = toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
    if BLOCKING_EMPTY.contains(&id) && empty {
        return Some((id.to_string(), t.line));
    }
    if BLOCKING_ANY.contains(&id) {
        return Some((id.to_string(), t.line));
    }
    None
}

/// Detects a plain call `name(` at `i` (methods included; macro
/// invocations `name!(…)` are excluded by the interposed `!`).
fn detect_call(toks: &[Token], i: usize) -> Option<&str> {
    let id = toks.get(i)?.ident()?;
    // `drop(x)` does run Drop impls, but treating it as a call to every
    // `fn drop` in the workspace is hopeless noise — guard drops are
    // handled explicitly by the scan instead.
    if matches!(
        id,
        "if" | "while" | "for" | "match" | "return" | "loop" | "fn" | "let" | "drop"
    ) || STD_METHODS.contains(&id)
    {
        return None;
    }
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    // Skip definitions: `fn name(`.
    if i > 0 && toks[i - 1].is_ident("fn") {
        return None;
    }
    Some(id)
}

/// Cycle detection over the edge list; returns one diagnostic per
/// distinct cycle (keyed by its sorted node set).
pub fn find_cycles(edges: &[Edge]) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(e);
    }
    let nodes: BTreeSet<&str> = edges
        .iter()
        .flat_map(|e| [e.from.as_str(), e.to.as_str()])
        .collect();
    let mut diags = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from every node; colour: 0 white, 1 grey, 2 black.
    let mut colour: BTreeMap<&str, u8> = nodes.iter().map(|n| (*n, 0u8)).collect();
    for &start in &nodes {
        if colour[start] != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&Edge> = Vec::new();
        *colour.get_mut(start).unwrap() = 1;
        while let Some((node, next)) = stack.last().cloned() {
            let outs = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if next >= outs.len() {
                *colour.get_mut(node).unwrap() = 2;
                stack.pop();
                path.pop();
                continue;
            }
            stack.last_mut().unwrap().1 += 1;
            let e = outs[next];
            match colour.get(e.to.as_str()).copied().unwrap_or(0) {
                0 => {
                    *colour.get_mut(e.to.as_str()).unwrap() = 1;
                    stack.push((&e.to, 0));
                    path.push(e);
                }
                1 => {
                    // Found a cycle: slice of `path` from where `e.to`
                    // was entered, plus this closing edge.
                    let mut cyc: Vec<&Edge> = Vec::new();
                    let mut seen_entry = false;
                    for pe in path.iter().chain([&e]) {
                        if pe.from == e.to {
                            seen_entry = true;
                        }
                        if seen_entry {
                            cyc.push(pe);
                        }
                    }
                    if cyc.is_empty() {
                        cyc.push(e);
                    }
                    let mut key: Vec<String> = cyc.iter().map(|c| c.from.clone()).collect();
                    key.sort();
                    if reported.insert(key) {
                        let desc = cyc
                            .iter()
                            .map(|c| format!("{} \u{2192} {}", c.from, c.to))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let site = cyc[0];
                        diags.push(Diagnostic {
                            check: CheckId::LockOrder,
                            file: site.file.clone(),
                            line: site.line,
                            excerpt: format!("cycle: {desc}"),
                            message: format!(
                                "lock-order cycle: {desc} \u{2014} acquisition order must form a DAG"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    diags
}

/// Renders the acquisition graph as deterministic DOT.
pub fn to_dot(edges: &[Edge]) -> String {
    let mut uniq: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    for e in edges {
        uniq.entry((e.from.clone(), e.to.clone()))
            .or_insert_with(|| (e.file.clone(), e.line, e.via.clone()));
    }
    let mut out = String::from(
        "digraph lock_order {\n    rankdir=LR;\n    node [shape=box, fontname=\"monospace\"];\n",
    );
    for ((from, to), (file, line, via)) in &uniq {
        let label = if via.is_empty() {
            format!("{file}:{line}")
        } else {
            format!("{file}:{line} via {via}")
        };
        out.push_str(&format!(
            "    \"{from}\" -> \"{to}\" [label=\"{label}\", fontsize=9];\n"
        ));
    }
    out.push_str("}\n");
    out
}
