//! A minimal hand-rolled lexer for the subset of Rust that the checks
//! need: identifiers, punctuation, and literals, each tagged with its
//! source line. The point is not to parse Rust — it is to make the
//! *token* patterns the checks look for (`.lock()`, `notify_one`,
//! `Violation::new("…")`) immune to the classic text-scan traps:
//! comments, string literals that mention the pattern, nested block
//! comments, raw strings, and `'a` lifetimes that look like the start
//! of a char literal.
//!
//! Everything else (numbers, operators) is collapsed into single-char
//! punctuation or an opaque literal token; the checks only ever match
//! short token sequences, so that is enough.

/// One lexed token. Literals carry their decoded-enough payload:
/// string literals keep their raw contents (the invariant
/// cross-reference check reads `Violation::new("name")` arguments),
/// everything else is opaque.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`.`, `(`, `{`, `=`, …). Multi-char
    /// operators arrive as consecutive tokens (`::` is `:` `:`).
    Punct(char),
    /// String or byte-string literal; payload is the raw contents
    /// between the quotes (escapes left as written — the checks only
    /// compare simple names, which never contain escapes).
    Str(String),
    /// Char literal, numeric literal, or lifetime — opaque.
    Opaque,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

/// Lexes `src` into a token stream. Comments (line, doc, and nested
/// block) and whitespace produce no tokens; they only advance the line
/// counter. The lexer never fails: malformed input (e.g. an unclosed
/// string at EOF) just ends the stream, which is the right behaviour
/// for a linter that must not crash on the code it is judging.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    macro_rules! bump {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                // Line comment (incl. doc comments) to end of line.
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Block comment, nesting allowed.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        bump!(b[i]);
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (s, ni, nl) = scan_string(&b, i + 1, line);
                out.push(Token {
                    tok: Tok::Str(s),
                    line: start_line,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Char literal vs lifetime. A char literal is 'x' or an
                // escape '\n'; a lifetime is 'ident with no closing
                // quote ('_' the char vs '_ the lifetime is settled by
                // looking for the closing quote).
                let start_line = line;
                if i + 1 < n && b[i + 1] == '\\' {
                    // Escaped char literal: scan to the closing quote.
                    i += 2;
                    while i < n && b[i] != '\'' {
                        bump!(b[i]);
                        i += 1;
                    }
                    i += 1; // closing quote (or EOF)
                } else if i + 2 < n && b[i + 2] == '\'' {
                    // Plain char literal 'x' (covers '_' and digits).
                    i += 3;
                } else {
                    // Lifetime: consume the identifier.
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                }
                out.push(Token {
                    tok: Tok::Opaque,
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                i += 1;
                // Integer part, optional fraction, exponent, suffix —
                // greedy over [0-9a-zA-Z_.] with the one subtlety that
                // `.` is consumed only when followed by a digit, so
                // `2.max(3)` leaves the `.` for the method call.
                while i < n {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else if (d == '.'
                        || ((d == '+' || d == '-') && matches!(b[i - 1], 'e' | 'E')))
                        && i + 1 < n
                        && b[i + 1].is_ascii_digit()
                    {
                        // Fraction digit or signed exponent: take the
                        // separator and the digit together.
                        i += 2;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Opaque,
                    line: start_line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                // Identifier — unless it is a raw/byte string prefix
                // (r", r#", b", br", br#").
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let word: String = b[start..i].iter().collect();
                let is_str_prefix = matches!(word.as_str(), "r" | "b" | "br" | "rb")
                    && i < n
                    && (b[i] == '"' || b[i] == '#');
                if is_str_prefix && word.starts_with('b') && b[i] == '"' && word != "br" {
                    // b"..." byte string: escapes like a normal string.
                    let start_line = line;
                    let (s, ni, nl) = scan_string(&b, i + 1, line);
                    out.push(Token {
                        tok: Tok::Str(s),
                        line: start_line,
                    });
                    i = ni;
                    line = nl;
                } else if is_str_prefix {
                    // Raw string r"…", r#"…"#, br#"…"#: no escapes;
                    // closed by `"` followed by the same number of #s.
                    let start_line = line;
                    let mut hashes = 0usize;
                    while i < n && b[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && b[i] == '"' {
                        i += 1;
                        let body_start = i;
                        'raw: while i < n {
                            if b[i] == '"' {
                                let mut k = 0usize;
                                while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    let s: String = b[body_start..i].iter().collect();
                                    out.push(Token {
                                        tok: Tok::Str(s),
                                        line: start_line,
                                    });
                                    i += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            bump!(b[i]);
                            i += 1;
                        }
                    } else {
                        // `r#ident` raw identifier: treat as ident.
                        let rs = i;
                        while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                            i += 1;
                        }
                        out.push(Token {
                            tok: Tok::Ident(b[rs..i].iter().collect()),
                            line: start_line,
                        });
                    }
                } else {
                    out.push(Token {
                        tok: Tok::Ident(word),
                        line,
                    });
                }
            }
            _ => {
                out.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a (byte-)string body starting just after the opening quote;
/// returns (contents, index after closing quote, new line count).
fn scan_string(b: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let n = b.len();
    let start = i;
    while i < n {
        match b[i] {
            '\\' => {
                i += 2; // skip the escaped char (covers \" and \\)
            }
            '"' => {
                let s: String = b[start..i].iter().collect();
                return (s, i + 1, line);
            }
            c => {
                if c == '\n' {
                    line += 1;
                }
                i += 1;
            }
        }
    }
    (b[start..].iter().collect(), n, line)
}
