//! The fingerprinted allowlist (`ci/lint_allowlist.txt`).
//!
//! A fingerprint is FNV-1a-64 over `check id | path | trimmed source
//! line` — deliberately line-number-free, so moving code within a file
//! does not churn the list (the property the old `path|text` unwrap
//! allowlist already had). Entries are a multiset: two identical
//! findings on different lines of one file need two entries, which is
//! what keeps "the same line was added again" from slipping through —
//! the per-file count guard of the old shell gate, carried over.
//!
//! File format, one entry per line, tab-separated:
//!
//! ```text
//! <check>\t<fp16>\t<path>\t<excerpt>\t<justification>
//! ```
//!
//! `#` lines and blank lines are comments. `--refresh` rewrites the
//! entry lines from the current findings, preserving justifications by
//! fingerprint; shrinking is always allowed, growth requires a refresh
//! (i.e. a reviewed commit that touches the allowlist).

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::Diagnostic;

pub fn fingerprint(d: &Diagnostic) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [d.check.id(), &d.file, &d.excerpt] {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x7c; // field separator
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Default)]
pub struct Allowlist {
    /// fingerprint → (allowed count, justification, check id).
    entries: BTreeMap<u64, (u32, String, String)>,
}

impl Allowlist {
    pub fn load(path: &Path) -> Allowlist {
        let mut entries: BTreeMap<u64, (u32, String, String)> = BTreeMap::new();
        let Ok(text) = fs::read_to_string(path) else {
            return Allowlist::default();
        };
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let cols: Vec<&str> = line.split('\t').collect();
            if cols.len() < 4 {
                continue;
            }
            if let Ok(fp) = u64::from_str_radix(cols[1], 16) {
                let just = cols.get(4).copied().unwrap_or("").to_string();
                let e = entries.entry(fp).or_insert((0, just, cols[0].to_string()));
                e.0 += 1;
            }
        }
        Allowlist { entries }
    }

    /// Splits findings into (suppressed, reported) by consuming allowed
    /// counts per fingerprint, and returns the number of stale entries
    /// (allowed but no longer found — informational only; shrinking the
    /// codebase under the gate is always fine). Only entries belonging
    /// to `selected` checks count as stale, so a narrowed `--check` run
    /// does not flag the rest of the allowlist.
    pub fn apply(
        &self,
        diags: Vec<Diagnostic>,
        selected: &[crate::CheckId],
    ) -> (Vec<Diagnostic>, Vec<Diagnostic>, u32) {
        let mut budget: BTreeMap<u64, u32> =
            self.entries.iter().map(|(k, (n, _, _))| (*k, *n)).collect();
        let mut suppressed = Vec::new();
        let mut reported = Vec::new();
        for d in diags {
            let fp = fingerprint(&d);
            match budget.get_mut(&fp) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed.push(d);
                }
                _ => reported.push(d),
            }
        }
        let stale: u32 = budget
            .iter()
            .filter(|(fp, _)| {
                self.entries
                    .get(fp)
                    .is_some_and(|(_, _, check)| selected.iter().any(|c| c.id() == check))
            })
            .map(|(_, n)| n)
            .sum();
        (suppressed, reported, stale)
    }

    pub fn justification(&self, fp: u64) -> &str {
        self.entries
            .get(&fp)
            .map(|(_, j, _)| j.as_str())
            .unwrap_or("")
    }

    /// Rewrites the allowlist from the current findings, keeping
    /// existing justifications keyed by fingerprint.
    pub fn refresh(&self, path: &Path, diags: &[Diagnostic]) -> std::io::Result<()> {
        let mut rows: Vec<String> = diags
            .iter()
            .map(|d| {
                let fp = fingerprint(d);
                format!(
                    "{}\t{:016x}\t{}\t{}\t{}",
                    d.check.id(),
                    fp,
                    d.file,
                    d.excerpt,
                    self.justification(fp)
                )
            })
            .collect();
        rows.sort();
        let mut out = String::from(
            "# fastmatch-lint allowlist. One intentional finding per line:\n\
             # <check>\\t<fingerprint>\\t<path>\\t<excerpt>\\t<justification>\n\
             # Fingerprints are line-number-free (check|path|source text), so code\n\
             # motion does not churn this file. Regenerate with:\n\
             #   cargo run -p fastmatch-lint -- --refresh\n\
             # Shrinking is always allowed; growth must come through --refresh in a\n\
             # reviewed commit, with the justification column filled in.\n",
        );
        for r in rows {
            out.push_str(&r);
            out.push('\n');
        }
        fs::write(path, out)
    }
}
