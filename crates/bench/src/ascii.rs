//! ASCII rendering of histograms, used by the Figure 2/3 illustration
//! harness and the examples.

/// Renders a histogram as horizontal bars, one line per bin, scaled to
/// `width` characters at the maximum bin.
pub fn render_histogram(title: &str, counts: &[u64], width: usize) -> String {
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = format!("{title}\n");
    for (i, &c) in counts.iter().enumerate() {
        let bar = (c as f64 / max as f64 * width as f64).round() as usize;
        out.push_str(&format!("{i:>4} | {:<width$} {c}\n", "#".repeat(bar)));
    }
    out
}

/// Renders a normalized histogram (probability vector) the same way.
pub fn render_distribution(title: &str, probs: &[f64], width: usize) -> String {
    let max = probs.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
    let mut out = format!("{title}\n");
    for (i, &p) in probs.iter().enumerate() {
        let bar = (p / max * width as f64).round() as usize;
        out.push_str(&format!("{i:>4} | {:<width$} {p:.4}\n", "#".repeat(bar)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let s = render_histogram("t", &[1, 2, 4], 8);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[3].contains("########"));
        assert!(lines[1].contains("##"));
        assert!(!lines[1].contains("###"));
    }

    #[test]
    fn empty_histogram_renders() {
        let s = render_histogram("t", &[0, 0], 8);
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn distribution_renders() {
        let s = render_distribution("d", &[0.25, 0.75], 4);
        assert!(s.contains("0.7500"));
    }
}
