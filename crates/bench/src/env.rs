//! Environment-driven experiment scale knobs.

/// Scale parameters for experiment harnesses, read from the environment
/// with CI-friendly defaults.
#[derive(Debug, Clone, Copy)]
pub struct BenchEnv {
    /// Rows per synthetic dataset.
    pub rows: usize,
    /// Repetitions averaged per headline measurement.
    pub runs: u64,
    /// Repetitions inside parameter sweeps (cheaper).
    pub sweep_runs: u64,
    /// Base seed for data generation and run start positions.
    pub seed: u64,
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Default for BenchEnv {
    fn default() -> Self {
        BenchEnv {
            rows: 6_000_000,
            runs: 3,
            sweep_runs: 2,
            seed: 42,
        }
    }
}

impl BenchEnv {
    /// Reads `FASTMATCH_ROWS`, `FASTMATCH_RUNS`, `FASTMATCH_SWEEP_RUNS`
    /// and `FASTMATCH_SEED`, falling back to defaults.
    pub fn from_env() -> Self {
        let d = BenchEnv::default();
        BenchEnv {
            rows: env_parse("FASTMATCH_ROWS", d.rows).max(10_000),
            runs: env_parse("FASTMATCH_RUNS", d.runs).max(1),
            sweep_runs: env_parse("FASTMATCH_SWEEP_RUNS", d.sweep_runs).max(1),
            seed: env_parse("FASTMATCH_SEED", d.seed),
        }
    }

    /// Stage-1 sample count scaled to the dataset: the paper's 5·10⁵ on
    /// hundreds of millions of rows; here 1% of the data (bounded to
    /// [10⁴, 5·10⁵]) so it stays "a small fraction" (footnote 1) at every
    /// scale while retaining enough power to *robustly* prune deep-tail
    /// candidates (expected σ-count ≈ 48 at the 6M-row default, so a
    /// sub-0.2σ candidate's underrepresentation P-value is astronomically
    /// small even under upward count fluctuations).
    pub fn stage1_samples(&self) -> u64 {
        ((self.rows as u64) / 100)
            .clamp(10_000, 500_000)
            .min(self.rows as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let e = BenchEnv::default();
        assert!(e.rows >= 100_000);
        assert!(e.runs >= 1);
    }

    #[test]
    fn stage1_scales_with_rows() {
        let mut e = BenchEnv {
            rows: 100_000,
            ..BenchEnv::default()
        };
        assert_eq!(e.stage1_samples(), 10_000);
        e.rows = 6_000_000;
        assert_eq!(e.stage1_samples(), 60_000);
        e.rows = 1_000_000_000;
        assert_eq!(e.stage1_samples(), 500_000);
        e.rows = 5_000;
        assert_eq!(e.stage1_samples(), 5_000);
    }
}
