//! Developer diagnostic: traces HistSim phase transitions and per-round
//! demands for one query at full scale.
//!
//! ```text
//! cargo run --release -p fastmatch-bench --bin trace_query -- police-q1
//! ```

use fastmatch_bench::{BenchEnv, Workload};
use fastmatch_core::histsim::HistSim;

fn main() {
    let query_id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "police-q1".into());
    let env = BenchEnv::from_env();
    let queries: Vec<_> = fastmatch_data::all_queries()
        .into_iter()
        .filter(|q| q.id == query_id)
        .collect();
    assert!(!queries.is_empty(), "unknown query {query_id}");
    let w = Workload::prepare(env, &queries);
    let p = w.prepare_query(&queries[0]);
    let cfg = w.default_config(&p);
    eprintln!(
        "query {query_id}: |VZ|={} |VX|={} k={} m={}",
        w.table(p.spec.dataset).cardinality(p.z),
        w.table(p.spec.dataset).cardinality(p.x),
        cfg.k,
        cfg.stage1_samples
    );

    // Manual sequential drive with instrumentation.
    let table = w.table(p.spec.dataset);
    let n = table.n_rows();
    let mut hs = HistSim::new(
        cfg.clone(),
        table.cardinality(p.z) as usize,
        table.cardinality(p.x) as usize,
        n as u64,
        &p.target,
    )
    .unwrap();
    let zs = table.column(p.z);
    let xs = table.column(p.x);
    let counts = table.value_counts(p.z);
    let mut pos = 0usize;
    while !hs.is_done() && pos < n {
        while !hs.io_satisfied() && pos < n {
            let end = (pos + 4096).min(n);
            hs.ingest_block(&zs[pos..end], &xs[pos..end]);
            pos += end - pos;
        }
        if !hs.io_satisfied() {
            eprintln!("EXHAUSTED at pos {pos}");
            hs.complete_io_phase(true).unwrap();
            break;
        }
        let before = hs.phase();
        hs.complete_io_phase(false).unwrap();
        let demands: Vec<(usize, u64, u64)> = hs
            .remaining_slice()
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0)
            .map(|(c, &r)| (c, r, counts[c]))
            .collect();
        let heaviest: Vec<_> = {
            let mut d = demands.clone();
            d.sort_by_key(|&(_, need, have)| {
                std::cmp::Reverse(((need as f64 / have.max(1) as f64) * 1e6) as u64)
            });
            d.truncate(6);
            d
        };
        eprintln!(
            "{before:?} -> {:?} @pos {pos} ({:.1}% of data) rounds={} pruned={} active={} heaviest(need/have)={heaviest:?}",
            hs.phase(),
            100.0 * pos as f64 / n as f64,
            hs.diagnostics().stage2_rounds,
            hs.diagnostics().pruned_candidates,
            demands.len(),
        );
    }
    eprintln!("final: {:?}", hs.diagnostics());
}
