//! # fastmatch-bench
//!
//! Shared machinery for the experiment harnesses that regenerate every
//! table and figure of the FastMatch evaluation (§5). Each harness is a
//! `harness = false` bench target (see `benches/`), so `cargo bench`
//! reproduces the full evaluation; scale knobs come from the environment:
//!
//! * `FASTMATCH_ROWS` — rows per synthetic dataset (default 1,500,000);
//! * `FASTMATCH_RUNS` — repetitions averaged per measurement (default 3);
//! * `FASTMATCH_SWEEP_RUNS` — repetitions inside parameter sweeps
//!   (default 2);
//! * `FASTMATCH_SEED` — base RNG seed (default 42).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ascii;
pub mod env;
pub mod report;
pub mod runner;
pub mod workload;

pub use env::BenchEnv;
pub use runner::{measure, Measured};
pub use workload::{Prepared, Workload};
