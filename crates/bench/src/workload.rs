//! Workload preparation: datasets, indexes and prepared queries, built
//! once per harness process.

use std::collections::HashMap;
use std::time::Instant;

use fastmatch_core::guarantees::GroundTruth;
use fastmatch_core::histogram::Histogram;
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_core::Metric;
use fastmatch_data::datasets::DatasetId;
use fastmatch_data::queries::QuerySpec;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::table::Table;

use crate::env::BenchEnv;

/// A query prepared against generated data: resolved attributes, bitmap
/// index, target and ground truth.
pub struct Prepared {
    /// The query definition.
    pub spec: QuerySpec,
    /// Candidate attribute index.
    pub z: usize,
    /// Grouping attribute index.
    pub x: usize,
    /// Normalized visual target.
    pub target: Vec<f64>,
    /// The candidate the target was derived from, if any.
    pub target_candidate: Option<u32>,
    /// Exact ground truth for guarantee checking and Δd.
    pub truth: GroundTruth,
}

/// Generated datasets plus prepared queries.
pub struct Workload {
    env: BenchEnv,
    tables: HashMap<DatasetId, Table>,
    layouts: HashMap<DatasetId, BlockLayout>,
    bitmaps: HashMap<(DatasetId, usize), BitmapIndex>,
}

impl Workload {
    /// Generates every dataset needed by `queries` (at `env` scale) and
    /// builds bitmap indexes for their candidate attributes. Progress is
    /// printed since generation takes a few seconds at full scale.
    pub fn prepare(env: BenchEnv, queries: &[QuerySpec]) -> Self {
        let mut w = Workload {
            env,
            tables: HashMap::new(),
            layouts: HashMap::new(),
            bitmaps: HashMap::new(),
        };
        for q in queries {
            if !w.tables.contains_key(&q.dataset) {
                let t0 = Instant::now();
                let table = q.dataset.generate(env.rows, env.seed);
                let layout = BlockLayout::with_default_block(table.n_rows());
                eprintln!(
                    "# generated {} ({} rows, {:.1} MiB) in {:.2?}",
                    q.dataset.name(),
                    table.n_rows(),
                    table.size_bytes() as f64 / (1024.0 * 1024.0),
                    t0.elapsed()
                );
                w.layouts.insert(q.dataset, layout);
                w.tables.insert(q.dataset, table);
            }
        }
        for q in queries {
            let table = &w.tables[&q.dataset];
            let z = q.z_attr(table);
            if !w.bitmaps.contains_key(&(q.dataset, z)) {
                let t0 = Instant::now();
                let bm = BitmapIndex::build(table, z, &w.layouts[&q.dataset]);
                eprintln!(
                    "# built bitmap for {}.{} ({:.1} KiB) in {:.2?}",
                    q.dataset.name(),
                    q.z,
                    bm.size_bytes() as f64 / 1024.0,
                    t0.elapsed()
                );
                w.bitmaps.insert((q.dataset, z), bm);
            }
        }
        w
    }

    /// The scale parameters in use.
    pub fn env(&self) -> BenchEnv {
        self.env
    }

    /// The generated table for a dataset.
    pub fn table(&self, id: DatasetId) -> &Table {
        &self.tables[&id]
    }

    /// The block layout for a dataset.
    pub fn layout(&self, id: DatasetId) -> BlockLayout {
        self.layouts[&id]
    }

    /// The bitmap index for `(dataset, candidate attribute)`.
    pub fn bitmap(&self, id: DatasetId, z: usize) -> &BitmapIndex {
        &self.bitmaps[&(id, z)]
    }

    /// Resolves one query: target, attributes and exact ground truth.
    pub fn prepare_query(&self, spec: &QuerySpec) -> Prepared {
        let table = self.table(spec.dataset);
        let z = spec.z_attr(table);
        let x = spec.x_attr(table);
        let (target, target_candidate) = spec.resolve_target(table);
        let vx = table.cardinality(x) as usize;
        let ct = table.crosstab(z, x);
        let hists: Vec<Histogram> = (0..table.cardinality(z) as usize)
            .map(|c| Histogram::from_counts(ct[c * vx..(c + 1) * vx].to_vec()))
            .collect();
        let truth = GroundTruth::new(hists, target.clone(), Metric::L1);
        Prepared {
            spec: spec.clone(),
            z,
            x,
            target,
            target_candidate,
            truth,
        }
    }

    /// The default experiment configuration of §5.2 for a query, at this
    /// workload's scale.
    pub fn default_config(&self, p: &Prepared) -> HistSimConfig {
        HistSimConfig {
            k: p.spec.k,
            stage1_samples: self.env.stage1_samples(),
            ..HistSimConfig::default()
        }
    }

    /// Builds a `QueryJob` for an executor run. The simulated per-block
    /// latency (storage cost model) comes from `FASTMATCH_BLOCK_LATENCY_NS`
    /// (default 0 = pure in-memory).
    pub fn job<'a>(
        &'a self,
        p: &'a Prepared,
        cfg: HistSimConfig,
    ) -> fastmatch_engine::query::QueryJob<'a> {
        let latency: u64 = std::env::var("FASTMATCH_BLOCK_LATENCY_NS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let table = self.table(p.spec.dataset);
        fastmatch_engine::query::QueryJob::new(
            table,
            self.layout(p.spec.dataset),
            self.bitmap(p.spec.dataset, p.z),
            p.z,
            p.x,
            p.target.clone(),
            cfg,
        )
        .with_block_latency_ns(latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_data::queries::all_queries;

    #[test]
    fn prepare_small_workload() {
        let env = BenchEnv {
            rows: 20_000,
            runs: 1,
            sweep_runs: 1,
            seed: 1,
        };
        let queries: Vec<QuerySpec> = all_queries()
            .into_iter()
            .filter(|q| q.dataset == DatasetId::Police)
            .collect();
        let w = Workload::prepare(env, &queries);
        for q in &queries {
            let p = w.prepare_query(q);
            assert_eq!(p.target.len(), w.table(q.dataset).cardinality(p.x) as usize);
            let cfg = w.default_config(&p);
            let job = w.job(&p, cfg);
            assert!(job.num_candidates() > 0);
        }
    }
}
