//! Plain-text table/series rendering for experiment output.

/// Renders an aligned text table: a header row plus data rows. Column
/// widths adapt to content; the first column is left-aligned, the rest
/// right-aligned (matching the paper's table style).
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a figure as one labelled series per line:
/// `label: (x1, y1) (x2, y2) …` — the textual equivalent of the paper's
/// line plots.
pub fn render_series(title: &str, x_label: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = format!("{title}\n  x = {x_label}\n");
    for (label, points) in series {
        out.push_str(&format!("  {label:<28}"));
        for (x, y) in points {
            out.push_str(&format!(" ({x:.4}, {y:.4})"));
        }
        out.push('\n');
    }
    out
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["query", "speedup"],
            &[
                vec!["flights-q1".into(), "37.52x".into()],
                vec!["t-q2".into(), "17.38x".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("query"));
        assert!(lines[2].contains("flights-q1"));
        // right alignment of numeric column
        assert!(lines[2].ends_with("37.52x"));
    }

    #[test]
    fn series_renders_points() {
        let s = render_series(
            "Figure 8",
            "epsilon",
            &[("fastmatch".into(), vec![(0.02, 1.5), (0.04, 0.8)])],
        );
        assert!(s.contains("(0.0200, 1.5000)"));
        assert!(s.contains("fastmatch"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
