//! Repeated-run measurement of executors, with guarantee validation and
//! the §5.3 Δd accuracy metric.

use std::time::Duration;

use fastmatch_core::histsim::HistSimConfig;
use fastmatch_engine::exec::Executor;
use fastmatch_engine::result::MatchOutput;

use crate::workload::{Prepared, Workload};

/// Aggregate over repeated runs of one executor on one query.
#[derive(Debug)]
pub struct Measured {
    /// Mean wall-clock time.
    pub avg_wall: Duration,
    /// Mean blocks read.
    pub avg_blocks_read: f64,
    /// Mean blocks skipped.
    pub avg_blocks_skipped: f64,
    /// Mean Δd (total relative error in visual distance).
    pub avg_delta_d: f64,
    /// Runs violating Guarantee 1 or 2.
    pub violations: u64,
    /// Number of runs.
    pub runs: u64,
    /// Mean stage-2 rounds.
    pub avg_rounds: f64,
    /// The last run's output (for inspection).
    pub last: MatchOutput,
}

/// Runs `exec` `runs` times with distinct seeds and aggregates.
pub fn measure(
    w: &Workload,
    p: &Prepared,
    cfg: &HistSimConfig,
    exec: &dyn Executor,
    runs: u64,
    seed_base: u64,
) -> Measured {
    assert!(runs >= 1);
    let mut total_wall = Duration::ZERO;
    let mut blocks_read = 0u64;
    let mut blocks_skipped = 0u64;
    let mut delta_d = 0.0;
    let mut violations = 0u64;
    let mut rounds = 0u64;
    let mut last = None;
    for r in 0..runs {
        let job = w.job(p, cfg.clone());
        let out = exec
            .run(&job, seed_base.wrapping_add(r).wrapping_mul(0x9e3779b9))
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", exec.name(), p.spec.id));
        total_wall += out.stats.wall;
        blocks_read += out.stats.io.blocks_read;
        blocks_skipped += out.stats.io.blocks_skipped;
        rounds += out.stats.stage2_rounds as u64;
        delta_d += p.truth.delta_d(&out.output.matches, cfg.sigma);
        let sep = p
            .truth
            .check_separation(&out.candidate_ids(), cfg.epsilon, cfg.sigma);
        let rec = p
            .truth
            .check_reconstruction(&out.output.matches, cfg.eps_reconstruction());
        if !(sep && rec) {
            violations += 1;
        }
        last = Some(out);
    }
    Measured {
        avg_wall: total_wall / runs as u32,
        avg_blocks_read: blocks_read as f64 / runs as f64,
        avg_blocks_skipped: blocks_skipped as f64 / runs as f64,
        avg_delta_d: delta_d / runs as f64,
        violations,
        runs,
        avg_rounds: rounds as f64 / runs as f64,
        last: last.expect("at least one run"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::BenchEnv;
    use crate::workload::Workload;
    use fastmatch_data::datasets::DatasetId;
    use fastmatch_data::queries::all_queries;
    use fastmatch_engine::exec::ScanExec;

    #[test]
    fn measure_scan_has_no_violations() {
        let env = BenchEnv {
            rows: 30_000,
            runs: 2,
            sweep_runs: 1,
            seed: 5,
        };
        let queries: Vec<_> = all_queries()
            .into_iter()
            .filter(|q| q.dataset == DatasetId::Flights)
            .take(1)
            .collect();
        let w = Workload::prepare(env, &queries);
        let p = w.prepare_query(&queries[0]);
        let cfg = w.default_config(&p);
        let m = measure(&w, &p, &cfg, &ScanExec, 2, 1);
        assert_eq!(m.violations, 0);
        assert_eq!(m.runs, 2);
        assert!(m.avg_delta_d.abs() < 1e-9);
    }
}
