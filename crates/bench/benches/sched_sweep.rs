//! `sched_sweep` — worker-count sweep over the `QueryService`
//! scheduler: the same closed-loop query mix at 1..=N workers, run once
//! with the fixed block quantum and once with adaptive quantum sizing,
//! so the two policies' qps / p50 / p99 trajectories can be compared
//! per thread count. A second section replays the live-table serving
//! regime — queries over per-admission snapshots while a budgeted
//! appender streams rows in — under both policies, which is where
//! quantum sizing earns its keep: on saturated cores, oversized quanta
//! turn into head-of-line blocking for every other admitted query.
//!
//! Scheduler-level counters (`quanta`, `steals`) come from
//! `QueryService::sched_stats`, so the report shows not just the
//! latencies but how much work-stealing actually happened per cell.
//!
//! Emits `BENCH_sched.json` (current working directory) for CI's perf
//! trajectory, alongside `BENCH_service.json` / `BENCH_live.json`.
//!
//! Scale knobs: `FASTMATCH_SWEEP_WORKERS` (default 4; CI smoke uses 2),
//! `FASTMATCH_BENCH_ROWS` (default 150,000),
//! `FASTMATCH_SWEEP_QUERIES` (queries per cell, default 12),
//! `FASTMATCH_LIVE_BUDGET` (appender rows/s, default 5,000,000),
//! `FASTMATCH_SEED` (default 42).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastmatch_bench::report::render_table;
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_data::gen::{conditional_with_planted, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::uniform;
use fastmatch_data::AppendBatches;
use fastmatch_engine::service::{
    QueryOutcome, QueryRequest, QueryService, SchedStats, ServiceConfig, SnapshotRequest,
};
use fastmatch_store::backend::MemBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::live::{LiveTable, LiveTableConfig};
use fastmatch_store::table::Table;

const ADAPTIVE_TARGET: Duration = Duration::from_micros(500);

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fixture(rows: usize, seed: u64) -> Table {
    let dists = conditional_with_planted(
        60,
        &uniform(8),
        &[(0, 0.0), (2, 0.015), (5, 0.03), (9, 0.04), (15, 0.05)],
        0.20,
        seed ^ 0xab,
    );
    let specs = vec![
        ColumnSpec::new("z", 60, ColumnGen::PrimaryZipf { s: 1.2 }),
        ColumnSpec::new("x", 8, ColumnGen::Conditional { parent: 0, dists }),
    ];
    generate_table(&specs, rows, seed)
}

fn config(rows: usize) -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: ((rows as u64) / 10).clamp(10_000, 100_000),
        ..HistSimConfig::default()
    }
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[derive(Clone, Copy)]
struct Cell {
    qps: f64,
    p50: Duration,
    p99: Duration,
    sched: SchedStats,
}

impl Cell {
    fn from_run(latencies: &mut [Duration], makespan: Duration, sched: SchedStats) -> Cell {
        latencies.sort_unstable();
        Cell {
            qps: latencies.len() as f64 / makespan.as_secs_f64(),
            p50: percentile(latencies, 0.50),
            p99: percentile(latencies, 0.99),
            sched,
        }
    }

    fn json(&self) -> String {
        format!(
            "\"qps\": {:.4}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"quanta\": {}, \"steals\": {}",
            self.qps,
            self.p50.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.sched.quanta,
            self.sched.steals,
        )
    }
}

fn policy_config(workers: usize, adaptive: bool) -> ServiceConfig {
    let cfg = ServiceConfig::default().with_workers(workers);
    if adaptive {
        cfg.with_adaptive_quantum(ADAPTIVE_TARGET)
    } else {
        cfg
    }
}

/// Closed-loop mix over a static in-memory backend: waves of
/// `concurrency` queries until `queries` have finished.
fn run_static_cell(
    backend: &MemBackend<'_>,
    bitmap: &BitmapIndex,
    cfg: &HistSimConfig,
    svc_cfg: ServiceConfig,
    queries: usize,
    concurrency: usize,
    seed: u64,
) -> Cell {
    let mut latencies: Vec<Duration> = Vec::with_capacity(queries);
    let started = Instant::now();
    let sched = QueryService::serve(backend, svc_cfg, |svc| {
        let mut submitted = 0usize;
        while submitted < queries {
            let wave = concurrency.min(queries - submitted);
            let handles: Vec<_> = (0..wave)
                .map(|i| {
                    svc.submit(
                        QueryRequest::new(bitmap, 0, 1, uniform(8), cfg.clone())
                            .with_seed(seed.wrapping_add(1000 + (submitted + i) as u64)),
                    )
                    .expect("admission failed")
                })
                .collect();
            for h in &handles {
                match h.wait() {
                    QueryOutcome::Finished(out) => latencies.push(out.stats.wall),
                    other => panic!("query did not finish: {other:?}"),
                }
            }
            submitted += wave;
        }
        svc.sched_stats()
    });
    Cell::from_run(&mut latencies, started.elapsed(), sched)
}

/// Live serving regime: per-admission snapshots of a budget-throttled
/// live table while an appender streams rows in, closed loop at 2.
/// Returns the cell plus the appender's achieved rows/sec.
fn run_live_cell(
    query_table: &Table,
    extra: &Table,
    cfg: &HistSimConfig,
    svc_cfg: ServiceConfig,
    budget: u64,
    queries: usize,
    seed: u64,
) -> (Cell, f64) {
    let concurrency = 2usize;
    let live = LiveTable::new(
        query_table.schema().clone(),
        LiveTableConfig::default().with_append_budget(budget),
    )
    .unwrap();
    for cols in AppendBatches::new(query_table.clone(), 8_192) {
        live.append_batch(&cols).unwrap();
    }
    let stop = AtomicBool::new(false);
    let mut latencies: Vec<Duration> = Vec::with_capacity(queries);
    let started = Instant::now();
    let (sched, append_rate) = std::thread::scope(|scope| {
        let writer = {
            let live = &live;
            let stop = &stop;
            scope.spawn(move || {
                let t0 = Instant::now();
                let mut appended = 0u64;
                'outer: loop {
                    for cols in AppendBatches::new(extra.clone(), 1_024) {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        appended += cols[0].len() as u64;
                        live.append_batch(&cols).unwrap();
                    }
                }
                appended as f64 / t0.elapsed().as_secs_f64().max(1e-9)
            })
        };
        // The service needs *a* shared backend; every query here rides
        // its own per-admission snapshot, so the preload snapshot only
        // anchors the serve scope.
        let base = live.snapshot();
        let sched = QueryService::serve(&base, svc_cfg, |svc| {
            let mut submitted = 0usize;
            while submitted < queries {
                let wave = concurrency.min(queries - submitted);
                let handles: Vec<_> = (0..wave)
                    .map(|i| {
                        let snap = Arc::new(live.snapshot());
                        svc.submit_snapshot(
                            snap,
                            SnapshotRequest::new(0, 1, uniform(8), cfg.clone())
                                .with_seed(seed.wrapping_add(5000 + (submitted + i) as u64)),
                        )
                        .expect("admission failed")
                    })
                    .collect();
                for h in &handles {
                    match h.wait() {
                        QueryOutcome::Finished(out) => latencies.push(out.stats.wall),
                        other => panic!("query did not finish: {other:?}"),
                    }
                }
                submitted += wave;
            }
            svc.sched_stats()
        });
        stop.store(true, Ordering::Relaxed);
        (sched, writer.join().unwrap())
    });
    (
        Cell::from_run(&mut latencies, started.elapsed(), sched),
        append_rate,
    )
}

fn main() {
    let max_workers = env_usize("FASTMATCH_SWEEP_WORKERS", 4).max(1);
    let rows = env_usize("FASTMATCH_BENCH_ROWS", 150_000).max(50_000);
    let queries = env_usize("FASTMATCH_SWEEP_QUERIES", 12).max(1);
    let budget = env_usize("FASTMATCH_LIVE_BUDGET", 5_000_000).max(1) as u64;
    let seed = env_usize("FASTMATCH_SEED", 42) as u64;
    let concurrency = 4usize;

    println!("== sched_sweep: fixed vs adaptive quanta across 1..={max_workers} workers ==\n");
    println!(
        "# host parallelism: {} core(s); {queries} queries per cell, closed loop at {concurrency}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let table = fixture(rows, seed);
    let tpb = 150usize;
    let layout = BlockLayout::new(table.n_rows(), tpb);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let backend = MemBackend::new(&table, layout);
    let cfg = config(rows);

    // ---- static sweep -----------------------------------------------
    let mut table_rows = Vec::new();
    let mut sweep_json = Vec::new();
    for workers in 1..=max_workers {
        let fixed = run_static_cell(
            &backend,
            &bitmap,
            &cfg,
            policy_config(workers, false),
            queries,
            concurrency,
            seed,
        );
        let adaptive = run_static_cell(
            &backend,
            &bitmap,
            &cfg,
            policy_config(workers, true),
            queries,
            concurrency,
            seed,
        );
        for (policy, cell) in [("fixed", &fixed), ("adaptive", &adaptive)] {
            table_rows.push(vec![
                workers.to_string(),
                policy.to_string(),
                format!("{:.2}", cell.qps),
                format!("{:.1}", cell.p50.as_secs_f64() * 1e3),
                format!("{:.1}", cell.p99.as_secs_f64() * 1e3),
                cell.sched.quanta.to_string(),
                cell.sched.steals.to_string(),
            ]);
            sweep_json.push(format!(
                "    {{ \"workers\": {}, \"policy\": \"{}\", {} }}",
                workers,
                policy,
                cell.json()
            ));
        }
    }
    println!(
        "{}",
        render_table(
            &["workers", "policy", "qps", "p50 ms", "p99 ms", "quanta", "steals"],
            &table_rows
        )
    );

    // ---- live interference ------------------------------------------
    let extra = fixture(rows, seed ^ 0x77);
    let (live_fixed, rate_fixed) = run_live_cell(
        &table,
        &extra,
        &cfg,
        policy_config(max_workers, false),
        budget,
        queries,
        seed,
    );
    let (live_adaptive, rate_adaptive) = run_live_cell(
        &table,
        &extra,
        &cfg,
        policy_config(max_workers, true),
        budget,
        queries,
        seed,
    );
    println!(
        "{}",
        render_table(
            &[
                "live serving",
                "qps",
                "p50 ms",
                "p99 ms",
                "steals",
                "append rows/s"
            ],
            &[
                ("fixed", &live_fixed, rate_fixed),
                ("adaptive", &live_adaptive, rate_adaptive)
            ]
            .iter()
            .map(|(policy, cell, rate)| vec![
                policy.to_string(),
                format!("{:.2}", cell.qps),
                format!("{:.1}", cell.p50.as_secs_f64() * 1e3),
                format!("{:.1}", cell.p99.as_secs_f64() * 1e3),
                cell.sched.steals.to_string(),
                format!("{rate:.0}"),
            ])
            .collect::<Vec<_>>()
        )
    );
    println!("# live section: {max_workers} workers, budgeted appender at {budget} rows/s\n");

    // Machine-readable summary for CI's perf trajectory.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sched_sweep\",\n",
            "  \"rows\": {},\n",
            "  \"queries_per_cell\": {},\n",
            "  \"concurrency\": {},\n",
            "  \"adaptive_target_us\": {},\n",
            "  \"sweep\": [\n{}\n  ],\n",
            "  \"live\": {{\n",
            "    \"workers\": {},\n",
            "    \"append_budget_rows_per_sec\": {},\n",
            "    \"fixed\": {{ {}, \"append_rows_per_sec\": {:.0} }},\n",
            "    \"adaptive\": {{ {}, \"append_rows_per_sec\": {:.0} }}\n",
            "  }}\n",
            "}}\n"
        ),
        rows,
        queries,
        concurrency,
        ADAPTIVE_TARGET.as_micros(),
        sweep_json.join(",\n"),
        max_workers,
        budget,
        live_fixed.json(),
        rate_fixed,
        live_adaptive.json(),
        rate_adaptive,
    );
    std::fs::write("BENCH_sched.json", &json).expect("writing BENCH_sched.json failed");
    println!("# wrote BENCH_sched.json");
}
