//! `ingest_hot_path` — the two hottest loops in the system, measured:
//!
//! 1. **Ingestion kernel** (mem regime): tuples/sec through the
//!    validated-once batched `HistAccumulator::accumulate` kernel versus
//!    the per-tuple `accumulate_one` path, over realistic block-sized
//!    batches with clear-and-reuse cycles (the shard-worker access
//!    pattern).
//! 2. **Storage scan** (file regime): `FastMatch` over one persisted
//!    table through a bounded cache, with the demand-aware readahead
//!    pool on versus off — the I/O-compute overlap the prefetch
//!    pipeline exists for, with `pages_prefetched` / `prefetched_hits`
//!    attribution showing the overlap is real.
//!
//! Emits a machine-readable summary to `BENCH_ingest.json` (current
//! working directory) so CI can archive the perf trajectory.
//!
//! Scale knobs: `FASTMATCH_KERNEL_TUPLES` (default 2,000,000),
//! `FASTMATCH_BENCH_ROWS` (default 300,000 scan rows),
//! `FASTMATCH_CACHE_BLOCKS` (default 256 pages — far below the scan
//! working set), `FASTMATCH_SEED` (default 42).

use std::time::{Duration, Instant};

use fastmatch_bench::report::render_table;
use fastmatch_core::histsim::{HistAccumulator, HistSimConfig};
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::{far_pool, uniform};
use fastmatch_engine::exec::{Executor, FastMatchExec};
use fastmatch_engine::query::QueryJob;
use fastmatch_store::backend::StorageBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::file::{write_table, FileBackend};
use fastmatch_store::tempfile::TempBlockFile;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best-of-N wall clock for one closure.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn tuples_per_sec(tuples: u64, wall: Duration) -> f64 {
    tuples as f64 / wall.as_secs_f64()
}

// ------------------------------------------------------------- kernel part

struct KernelResult {
    tuples: u64,
    per_tuple: f64,
    batch: f64,
}

/// The shard-worker pattern: accumulate block-sized batches, clear every
/// `batch_blocks` blocks (one channel message's worth).
fn bench_kernel(total_tuples: usize, seed: u64) -> KernelResult {
    const NC: usize = 64;
    const NG: usize = 8;
    const TPB: usize = 150; // the paper's block size
    const BATCH_BLOCKS: usize = 32; // ParallelMatch's default batch

    // Synthetic Zipf-ish codes, deterministic in the seed.
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let zs: Vec<u32> = (0..total_tuples)
        .map(|_| (next() % NC as u64) as u32)
        .collect();
    let xs: Vec<u32> = (0..total_tuples)
        .map(|_| (next() % NG as u64) as u32)
        .collect();

    let mut acc = HistAccumulator::new(NC, NG);
    let mut sink = 0u64;

    let wall_per_tuple = best_of(3, || {
        for (bi, (zb, xb)) in zs.chunks(TPB).zip(xs.chunks(TPB)).enumerate() {
            for (&c, &g) in zb.iter().zip(xb) {
                acc.accumulate_one(c, g);
            }
            if (bi + 1) % BATCH_BLOCKS == 0 {
                sink = sink.wrapping_add(acc.tuples());
                acc.clear();
            }
        }
        sink = sink.wrapping_add(acc.tuples());
        acc.clear();
    });

    let wall_batch = best_of(3, || {
        for (bi, (zb, xb)) in zs.chunks(TPB).zip(xs.chunks(TPB)).enumerate() {
            acc.accumulate(zb, xb);
            if (bi + 1) % BATCH_BLOCKS == 0 {
                sink = sink.wrapping_add(acc.tuples());
                acc.clear();
            }
        }
        sink = sink.wrapping_add(acc.tuples());
        acc.clear();
    });
    assert!(sink > 0, "kernel work must not be optimized away");

    KernelResult {
        tuples: total_tuples as u64,
        per_tuple: tuples_per_sec(total_tuples as u64, wall_per_tuple),
        batch: tuples_per_sec(total_tuples as u64, wall_batch),
    }
}

// --------------------------------------------------------------- scan part

struct ScanResult {
    label: &'static str,
    wall: Duration,
    blocks_read: u64,
    hit_pct: f64,
    prefetch_hit: u64,
    pages_prefetched: u64,
    prefetched_hits: u64,
    matched: Vec<u32>,
}

fn bench_scan(
    rows: usize,
    cache_blocks: usize,
    latency_ns: u64,
    seed: u64,
) -> (ScanResult, ScanResult) {
    let groups = 8usize;
    let dists = conditional_with_planted_pool(
        64,
        &uniform(groups),
        &[(0, 0.0), (3, 0.02), (7, 0.04), (11, 0.05), (19, 0.06)],
        &far_pool(groups),
        0.2,
        seed ^ 0xf00d,
    );
    let specs = vec![
        ColumnSpec::new("z", 64, ColumnGen::PrimaryZipf { s: 1.1 }),
        ColumnSpec::new(
            "x",
            groups as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    let table = generate_table(&specs, rows, seed ^ 0xbeef);
    let tpb = 150usize;
    let scratch = TempBlockFile::new("ingest_hot_path");
    write_table(scratch.path(), &table, tpb).expect("persist failed");

    let cfg = HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: (rows as u64 / 10).clamp(10_000, 200_000),
        ..HistSimConfig::default()
    };

    // A hint run can span a whole lookahead window, so the lookahead must
    // stay well inside the cache bound — otherwise readahead evicts its
    // own pages before the reader arrives (prefetch distance vs cache
    // size, the classic readahead sizing constraint).
    let lookahead = (cache_blocks / 4).clamp(8, 256);
    let run = |label: &'static str, workers: usize| -> ScanResult {
        let backend = FileBackend::open(scratch.path())
            .expect("open failed")
            .with_cache_blocks(cache_blocks)
            .with_prefetch_workers(workers)
            // Slow-medium regime: every page *fetch* pays this, cache
            // hits pay nothing — so readahead that genuinely leads the
            // reader turns medium latency into background time.
            .with_simulated_medium_latency_ns(latency_ns);
        let bitmap = BitmapIndex::build(&table, 0, &backend.layout());
        let job = QueryJob::from_backend(&backend, &bitmap, 0, 1, uniform(groups), cfg.clone());
        let t0 = Instant::now();
        let out = FastMatchExec::with_lookahead(lookahead)
            .run(&job, seed)
            .expect("scan run failed");
        let wall = t0.elapsed();
        let cs = backend.cache_stats();
        let mut matched = out.candidate_ids();
        matched.sort_unstable();
        ScanResult {
            label,
            wall,
            blocks_read: out.stats.io.blocks_read,
            hit_pct: out.stats.io.cache_hit_rate() * 100.0,
            prefetch_hit: out.stats.io.pages_prefetch_hit,
            pages_prefetched: cs.pages_prefetched,
            prefetched_hits: cs.prefetched_hits,
            matched,
        }
    };

    let off = run("prefetch-off", 0);
    let on = run("prefetch-on", 2);
    assert_eq!(
        on.matched, off.matched,
        "prefetching must change timing, never the matched set"
    );
    (off, on)
}

// --------------------------------------------------------------------- main

fn main() {
    let kernel_tuples = env_usize("FASTMATCH_KERNEL_TUPLES", 2_000_000).max(10_000);
    let rows = env_usize("FASTMATCH_BENCH_ROWS", 300_000).max(50_000);
    let cache_blocks = env_usize("FASTMATCH_CACHE_BLOCKS", 256).max(1);
    // Simulated per-page medium latency for the scan regime (paper-era
    // storage is far slower than this container's OS page cache); paid
    // by fetches, not cache hits, and — being a blocking sleep — it
    // releases the core, so readahead overlaps it with ingestion even
    // on a single-core host.
    let latency_ns = env_usize("FASTMATCH_MEDIUM_LATENCY_NS", 50_000) as u64;
    let seed = env_usize("FASTMATCH_SEED", 42) as u64;

    println!("== ingest_hot_path: batched kernel + demand-aware prefetch ==\n");
    println!(
        "# host parallelism: {} core(s); kernel {} tuples, scan {} rows, cache {} pages\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        kernel_tuples,
        rows,
        cache_blocks
    );

    let k = bench_kernel(kernel_tuples, seed);
    println!(
        "{}",
        render_table(
            &["ingestion kernel (mem)", "tuples/sec", "speedup"],
            &[
                vec![
                    "per-tuple accumulate_one".into(),
                    format!("{:.0}", k.per_tuple),
                    "1.00x".into(),
                ],
                vec![
                    "batched accumulate".into(),
                    format!("{:.0}", k.batch),
                    format!("{:.2}x", k.batch / k.per_tuple),
                ],
            ],
        )
    );

    let (off, on) = bench_scan(rows, cache_blocks, latency_ns, seed);
    let scan_rows: Vec<Vec<String>> = [&off, &on]
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                r.blocks_read.to_string(),
                format!("{:.1}", r.hit_pct),
                r.prefetch_hit.to_string(),
                r.pages_prefetched.to_string(),
                r.prefetched_hits.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "FastMatch over FileBackend",
                "wall ms",
                "blocks",
                "hit %",
                "rdr prefetch-hits",
                "pages prefetched",
                "prefetched hits",
            ],
            &scan_rows,
        )
    );
    println!(
        "# identical matched sets with prefetch on/off: {:?}\n",
        on.matched
    );

    // Machine-readable summary for CI's perf trajectory.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ingest_hot_path\",\n",
            "  \"kernel\": {{\n",
            "    \"tuples\": {},\n",
            "    \"per_tuple_tuples_per_sec\": {:.0},\n",
            "    \"batch_tuples_per_sec\": {:.0},\n",
            "    \"batch_speedup\": {:.4}\n",
            "  }},\n",
            "  \"scan\": {{\n",
            "    \"rows\": {},\n",
            "    \"cache_blocks\": {},\n",
            "    \"prefetch_off_wall_ms\": {:.3},\n",
            "    \"prefetch_on_wall_ms\": {:.3},\n",
            "    \"pages_prefetched\": {},\n",
            "    \"prefetched_hits\": {},\n",
            "    \"matched_sets_identical\": true\n",
            "  }}\n",
            "}}\n"
        ),
        k.tuples,
        k.per_tuple,
        k.batch,
        k.batch / k.per_tuple,
        rows,
        cache_blocks,
        off.wall.as_secs_f64() * 1e3,
        on.wall.as_secs_f64() * 1e3,
        on.pages_prefetched,
        on.prefetched_hits,
    );
    std::fs::write("BENCH_ingest.json", &json).expect("writing BENCH_ingest.json failed");
    println!("# wrote BENCH_ingest.json");
}
