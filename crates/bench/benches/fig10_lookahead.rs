//! **Figure 10** — effect of the lookahead amount on FastMatch latency.
//!
//! Sweeps lookahead ∈ {2³ … 2¹²} per query at the default ε/δ. Expected
//! shape: low-|V_Z| queries are insensitive; high-cardinality queries
//! (TAXI, POLICE-q3) benefit from larger lookahead (better bitmap cache
//! utilization) with diminishing returns past ~2¹⁰.

use fastmatch_bench::report::render_series;
use fastmatch_bench::{measure, BenchEnv, Workload};
use fastmatch_engine::exec::FastMatchExec;

const LOOKAHEADS: [usize; 8] = [8, 16, 64, 128, 256, 1024, 2048, 4096];

fn main() {
    let env = BenchEnv::from_env();
    let queries = fastmatch_data::all_queries();
    let w = Workload::prepare(env, &queries);
    println!(
        "== Figure 10: lookahead vs FastMatch wall time (s); eps = 0.04, delta = 0.01, runs = {} ==\n",
        env.sweep_runs
    );
    for q in &queries {
        let p = w.prepare_query(q);
        let cfg = w.default_config(&p);
        let mut points = Vec::new();
        for &la in &LOOKAHEADS {
            let exec = FastMatchExec::with_lookahead(la);
            let m = measure(&w, &p, &cfg, &exec, env.sweep_runs, env.seed ^ 0xf10);
            points.push((la as f64, m.avg_wall.as_secs_f64()));
        }
        println!(
            "{}",
            render_series(q.id, "lookahead (blocks)", &[("FastMatch".into(), points)])
        );
    }
}
