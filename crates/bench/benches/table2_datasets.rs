//! **Table 2** — dataset descriptions.
//!
//! Prints the synthetic datasets' size / tuple count / attribute count
//! next to the paper's original values so the scale substitution is
//! explicit.

use fastmatch_bench::report::render_table;
use fastmatch_bench::BenchEnv;
use fastmatch_data::datasets::DatasetId;

fn main() {
    let env = BenchEnv::from_env();
    println!("== Table 2: dataset descriptions (synthetic analogues) ==\n");
    let paper = [
        ("FLIGHTS", "32 GiB", "606 million", 7, "5x"),
        ("TAXI", "36 GiB", "679 million", 7, "4x"),
        ("POLICE", "34 GiB", "448 million", 10, "72x"),
    ];
    let mut rows = Vec::new();
    for id in DatasetId::all() {
        let t = id.generate(env.rows, env.seed);
        let p = paper.iter().find(|r| r.0 == id.name()).unwrap();
        rows.push(vec![
            id.name().to_string(),
            format!("{:.1} MiB", t.size_bytes() as f64 / (1024.0 * 1024.0)),
            format!("{}", t.n_rows()),
            format!("{}", t.schema().len()),
            format!("{} / {} / {}", p.1, p.2, p.3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "Size",
                "#Tuples",
                "#Attributes",
                "Paper (size / tuples / attrs)"
            ],
            &rows
        )
    );
    println!("(paper replication factors: FLIGHTS 5x, TAXI 4x, POLICE 72x; here scale is FASTMATCH_ROWS)");
}
