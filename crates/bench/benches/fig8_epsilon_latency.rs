//! **Figure 8** — effect of ε on query latency.
//!
//! Sweeps ε over the paper's range (0.02 … 0.11) for every query and each
//! approximate executor at δ = 0.01, printing one (ε, seconds) series per
//! query × executor. Expected shape: latency decreases as ε grows (looser
//! tolerance ⇒ fewer samples), with FastMatch dominating.

use fastmatch_bench::report::render_series;
use fastmatch_bench::{measure, BenchEnv, Workload};
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_engine::exec::{Executor, FastMatchExec, ScanMatchExec, SyncMatchExec};

const EPSILONS: [f64; 10] = [0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.11];

fn main() {
    let env = BenchEnv::from_env();
    let queries = fastmatch_data::all_queries();
    let w = Workload::prepare(env, &queries);
    println!(
        "== Figure 8: epsilon vs wall time (s); delta = 0.01, runs = {} ==\n",
        env.sweep_runs
    );
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::default()),
    ];
    for q in &queries {
        let p = w.prepare_query(q);
        let mut series = Vec::new();
        for e in &execs {
            let mut points = Vec::new();
            for &eps in &EPSILONS {
                let cfg = HistSimConfig {
                    epsilon: eps,
                    ..w.default_config(&p)
                };
                let m = measure(&w, &p, &cfg, e.as_ref(), env.sweep_runs, env.seed ^ 0xf18);
                points.push((eps, m.avg_wall.as_secs_f64()));
            }
            series.push((e.name().to_string(), points));
        }
        println!("{}", render_series(q.id, "epsilon", &series));
    }
}
