//! **Figure 9** — effect of ε on Δd (total relative error in visual
//! distance, §5.3).
//!
//! Same sweep as Figure 8, reporting accuracy instead of latency.
//! Expected shape: Δd grows (mildly) with ε but stays within a few
//! percent of optimal — the paper reports ≤5% everywhere; Δd can be
//! negative because low-selectivity candidates carry no recall
//! requirement.

use fastmatch_bench::report::render_series;
use fastmatch_bench::{measure, BenchEnv, Workload};
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_engine::exec::{Executor, FastMatchExec, ScanMatchExec, SyncMatchExec};

const EPSILONS: [f64; 10] = [0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.11];

fn main() {
    let env = BenchEnv::from_env();
    let queries = fastmatch_data::all_queries();
    let w = Workload::prepare(env, &queries);
    println!(
        "== Figure 9: epsilon vs delta_d; delta = 0.01, runs = {} ==\n",
        env.sweep_runs
    );
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::default()),
    ];
    let mut worst: f64 = 0.0;
    for q in &queries {
        let p = w.prepare_query(q);
        let mut series = Vec::new();
        for e in &execs {
            let mut points = Vec::new();
            for &eps in &EPSILONS {
                let cfg = HistSimConfig {
                    epsilon: eps,
                    ..w.default_config(&p)
                };
                let m = measure(&w, &p, &cfg, e.as_ref(), env.sweep_runs, env.seed ^ 0xf19);
                points.push((eps, m.avg_delta_d));
                worst = worst.max(m.avg_delta_d);
            }
            series.push((e.name().to_string(), points));
        }
        println!("{}", render_series(q.id, "epsilon", &series));
    }
    println!("worst average delta_d observed: {worst:.4} (paper: never more than 0.05)");
}
