//! **Table 3** — query workload summary.
//!
//! Prints each query's candidate/grouping attributes (with cardinalities),
//! `k` and the resolved target, mirroring the paper's Table 3.

use fastmatch_bench::report::render_table;
use fastmatch_bench::{BenchEnv, Workload};
use fastmatch_data::queries::{all_queries, TargetSpec};

fn main() {
    let env = BenchEnv::from_env();
    let queries = all_queries();
    let w = Workload::prepare(env, &queries);
    println!("== Table 3: query workload ==\n");
    let mut rows = Vec::new();
    for q in &queries {
        let table = w.table(q.dataset);
        let p = w.prepare_query(q);
        let target_desc = match (&q.target, p.target_candidate) {
            (TargetSpec::Explicit(v), _) => format!("{v:?}"),
            (TargetSpec::Candidate(c), _) => format!("candidate {c} (planted)"),
            (TargetSpec::ClosestToUniform { .. }, Some(c)) => {
                format!("closest to uniform = candidate {c}")
            }
            (TargetSpec::ClosestToUniform { .. }, None) => "closest to uniform".to_string(),
        };
        rows.push(vec![
            q.id.to_string(),
            format!("{} ({})", q.z, table.cardinality(p.z)),
            format!("{} ({})", q.x, table.cardinality(p.x)),
            q.k.to_string(),
            target_desc,
        ]);
    }
    println!(
        "{}",
        render_table(&["Query", "Z (|VZ|)", "X (|VX|)", "k", "target"], &rows)
    );
}
