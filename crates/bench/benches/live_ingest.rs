//! `live_ingest` — the live-table serving regime, measured:
//!
//! 1. **Append throughput**: rows/sec streaming a synthetic dataset
//!    into a `LiveTable` in batches — memory-only, inline sealing
//!    (appender pays the disk write), and background sealing (the
//!    sealer thread absorbs it) — so the cost of durability and the
//!    benefit of taking it off the append path are both visible.
//!
//!    Methodology: every regime gets a **cold table per run**, one
//!    unmeasured warmup run, and the reported figure is the
//!    **median of 3 measured runs**. Earlier revisions measured each
//!    regime once in a fixed order, so first-touch page faults and
//!    allocator warm-up were all charged to whichever regime ran
//!    first — which is how "background sealer" once clocked *faster*
//!    than memory-only appends (106M vs 75M rows/s) on a single core,
//!    where the sealer thread can only steal cycles from the appender.
//! 2. **Query latency under ingest**: FastMatch latency over fresh
//!    snapshots while appenders run, versus the same queries over a
//!    quiescent table — the HTAP headline: how much does write traffic
//!    tax read latency, and does isolation hold (matched sets are
//!    asserted identical to the plants at each watermark). Two ingest
//!    regimes are measured from cold preloaded tables: an
//!    **unthrottled** writer (the latency-collapse baseline) and a
//!    **budgeted** writer capped by the live table's append token
//!    bucket (`FASTMATCH_LIVE_BUDGET` rows/s) — the isolation story:
//!    bounding the appender's budget returns the CPU to readers.
//!
//! 3. **Storage lifecycle**: crash-recovery time and segment-file
//!    count as the table grows — each curve point seals a durable
//!    table (one file per delta, the worst case), reopens it cold
//!    (`LiveTable::open`: directory scan, checksum verification, WAL
//!    replay) and records the recovery wall; then compacts to the
//!    configured fan-in and reopens again. The matched set of a
//!    FastMatch query is asserted identical before and after the
//!    recovery + compaction round trip, and the post-compaction file
//!    count is asserted `≤ fan_in`.
//!
//! Emits a machine-readable summary to `BENCH_live.json` (current
//! working directory) so CI can archive the perf trajectory. The
//! headline `under_ingest_p50_ms` is the budgeted-writer regime;
//! the unthrottled collapse is kept alongside for the delta. The
//! lifecycle curve lands under `"lifecycle"`.
//!
//! Scale knobs: `FASTMATCH_LIVE_ROWS` (default 400,000 append rows),
//! `FASTMATCH_BENCH_ROWS` (default 150,000 query-phase rows),
//! `FASTMATCH_LIVE_BATCH` (default 1,024 rows/append batch),
//! `FASTMATCH_LIVE_BUDGET` (default 5,000,000 rows/s appender budget),
//! `FASTMATCH_LIVE_FANIN` (default 4 compaction fan-in),
//! `FASTMATCH_SEED` (default 42).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use fastmatch_bench::report::render_table;
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_data::gen::{conditional_with_planted, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::uniform;
use fastmatch_data::AppendBatches;
use fastmatch_engine::exec::{Executor, FastMatchExec};
use fastmatch_engine::query::QueryJob;
use fastmatch_store::live::{LiveStats, LiveTable, LiveTableConfig};
use fastmatch_store::table::Table;
use fastmatch_store::tempfile::TempBlockDir;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fixture(rows: usize, seed: u64) -> Table {
    let dists = conditional_with_planted(
        60,
        &uniform(8),
        &[(0, 0.0), (2, 0.015), (5, 0.03), (9, 0.04), (15, 0.05)],
        0.20,
        seed ^ 0xab,
    );
    let specs = vec![
        ColumnSpec::new("z", 60, ColumnGen::PrimaryZipf { s: 1.2 }),
        ColumnSpec::new("x", 8, ColumnGen::Conditional { parent: 0, dists }),
    ];
    generate_table(&specs, rows, seed)
}

fn config(rows: usize) -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: ((rows as u64) / 10).clamp(10_000, 100_000),
        ..HistSimConfig::default()
    }
}

// --------------------------------------------------------------- appends

struct AppendResult {
    label: &'static str,
    rows: u64,
    wall: Duration,
    persisted: u64,
}

impl AppendResult {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.wall.as_secs_f64()
    }
}

/// One cold-table append run: fresh `LiveTable` (and fresh segment dir
/// when sealing) so no run inherits another's page cache or file state.
fn append_once(
    label: &'static str,
    table: &Table,
    batch: usize,
    sealing: bool,
    background: bool,
) -> AppendResult {
    let _dir;
    let mut cfg = LiveTableConfig::default().with_background_sealer(background);
    if sealing {
        let dir = TempBlockDir::new("live_ingest");
        cfg = cfg.with_segment_dir(dir.path());
        _dir = dir; // keep the directory alive until the table drops
    }
    let live = LiveTable::new(table.schema().clone(), cfg).unwrap();
    let t0 = Instant::now();
    for cols in AppendBatches::new(table.clone(), batch) {
        live.append_batch(&cols).unwrap();
    }
    let wall = t0.elapsed();
    // Sealing is part of the story, not the append wall: report what got
    // persisted by the time appends finished (background) or always
    // (inline).
    let persisted = live.stats().persisted_segments;
    AppendResult {
        label,
        rows: table.n_rows() as u64,
        wall,
        persisted,
    }
}

/// Cold table per run, one unmeasured warmup, median of 3 by wall time.
fn bench_append(
    label: &'static str,
    table: &Table,
    batch: usize,
    sealing: bool,
    background: bool,
) -> AppendResult {
    let _warmup = append_once(label, table, batch, sealing, background);
    let mut runs: Vec<AppendResult> = (0..3)
        .map(|_| append_once(label, table, batch, sealing, background))
        .collect();
    runs.sort_by_key(|r| r.wall);
    runs.swap_remove(1)
}

// ---------------------------------------------------- query under ingest

struct QueryPhase {
    latencies: Vec<Duration>,
    watermark_first: usize,
    watermark_last: usize,
    /// Peak of the `pinned_snapshot_bytes` gauge observed while a query
    /// snapshot was live — the memory a reader pins against compaction.
    peak_pinned_bytes: u64,
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs `queries` FastMatch queries over fresh snapshots of `live`,
/// asserting each result equals the plants (isolation + correctness).
/// Any concurrent ingest load is arranged by the caller's thread scope.
///
/// Every query runs the **same** HistSim configuration (`cfg`, sized
/// for the preloaded table) regardless of the snapshot's watermark:
/// the planted value rates are proportions, so the (ε, δ) sample
/// requirement does not grow with row count, and holding the
/// statistical task fixed means the latency delta between phases
/// measures *ingest interference*, not "bigger tables take more
/// samples". (An earlier revision resized `stage1_samples` to each
/// snapshot, which inflated the under-ingest figure with data-growth
/// cost that has nothing to do with writers competing for the core.)
/// The first query is an unmeasured warmup — it pays the cold caches.
fn query_phase(live: &LiveTable, cfg: &HistSimConfig, queries: usize, seed: u64) -> QueryPhase {
    let mut latencies = Vec::with_capacity(queries);
    let mut watermark_first = 0usize;
    let mut watermark_last = 0usize;
    let mut peak_pinned_bytes = 0u64;
    for q in 0..queries + 1 {
        let snap = live.snapshot();
        // Sample the gauge while `snap` is alive: this is the pinned
        // high-water mark a real reader imposes on the table.
        peak_pinned_bytes = peak_pinned_bytes.max(live.stats().pinned_snapshot_bytes);
        if q == 1 {
            watermark_first = snap.n_rows();
        }
        if q > 0 {
            watermark_last = snap.n_rows();
        }
        let job = QueryJob::from_snapshot(&snap, 0, 1, uniform(8), cfg.clone());
        let t0 = Instant::now();
        let out = FastMatchExec::with_lookahead(64)
            .run(&job, seed.wrapping_add(q as u64))
            .expect("query under ingest failed");
        if q > 0 {
            latencies.push(t0.elapsed());
        }
        let mut ids = out.candidate_ids();
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec![0, 2, 5, 9, 15],
            "query {q} at watermark {watermark_last}: matched set diverged from the plants"
        );
    }
    latencies.sort_unstable();
    QueryPhase {
        latencies,
        watermark_first,
        watermark_last,
        peak_pinned_bytes,
    }
}

struct IngestRegime {
    phase: QueryPhase,
    appended: u64,
    writer_wall: Duration,
    stats: LiveStats,
}

impl IngestRegime {
    fn append_rows_per_sec(&self) -> f64 {
        self.appended as f64 / self.writer_wall.as_secs_f64().max(1e-9)
    }
}

/// Cold table per regime: preload `query_table`, then run the query
/// phase while a writer streams copies of `extra` in — unthrottled when
/// `budget` is `None`, through the live table's append token bucket
/// otherwise.
fn query_under_ingest(
    query_table: &Table,
    extra: &Table,
    cfg: &HistSimConfig,
    batch: usize,
    budget: Option<u64>,
    queries: usize,
    seed: u64,
) -> IngestRegime {
    let mut live_cfg = LiveTableConfig::default();
    if let Some(rows_per_sec) = budget {
        live_cfg = live_cfg.with_append_budget(rows_per_sec);
    }
    let live = LiveTable::new(query_table.schema().clone(), live_cfg).unwrap();
    // The preload shares the bucket (costing at most a few ms once) and
    // leaves it drained, so the concurrent writer below starts at the
    // steady-state budget rate rather than with a free burst.
    for cols in AppendBatches::new(query_table.clone(), 8_192) {
        live.append_batch(&cols).unwrap();
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = {
            let live = &live;
            let stop = &stop;
            scope.spawn(move || {
                let t0 = Instant::now();
                let mut appended = 0u64;
                'outer: loop {
                    for cols in AppendBatches::new(extra.clone(), batch) {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        appended += cols[0].len() as u64;
                        live.append_batch(&cols).unwrap();
                    }
                }
                (appended, t0.elapsed())
            })
        };
        let phase = query_phase(&live, cfg, queries, seed);
        stop.store(true, Ordering::Relaxed);
        let (appended, writer_wall) = writer.join().unwrap();
        IngestRegime {
            phase,
            appended,
            writer_wall,
            stats: live.stats(),
        }
    })
}

// ------------------------------------------------------ storage lifecycle

struct LifecyclePoint {
    rows: usize,
    /// Segment files sealed before any compaction (coalescing off — the
    /// one-file-per-delta worst case).
    files: usize,
    /// Cold `LiveTable::open` over that directory: scan + verify +
    /// WAL replay, from [`LiveStats::recovery_ns`].
    recovery_ms: f64,
    /// Rows the WAL replay restored during that open.
    replayed_rows: u64,
    /// Files after driving compaction to convergence.
    files_compacted: usize,
    /// Cold open over the compacted directory.
    recovery_compacted_ms: f64,
}

/// The matched set of one seeded FastMatch run over a fresh snapshot —
/// the lifecycle phase's stability probe.
fn matched_set(live: &LiveTable, cfg: &HistSimConfig, seed: u64) -> Vec<u32> {
    let snap = live.snapshot();
    let job = QueryJob::from_snapshot(&snap, 0, 1, uniform(8), cfg.clone());
    let mut ids = FastMatchExec::with_lookahead(64)
        .run(&job, seed)
        .expect("lifecycle query failed")
        .candidate_ids();
    ids.sort_unstable();
    ids
}

/// One curve point: seal `rows` durably, recover cold, compact,
/// recover cold again — asserting the matched set never moves and the
/// compacted file count lands within the fan-in.
fn lifecycle_point(
    table: &Table,
    rows: usize,
    fan_in: usize,
    cfg: &HistSimConfig,
    seed: u64,
) -> LifecyclePoint {
    let dir = TempBlockDir::new("live_lifecycle");
    let base_cfg = LiveTableConfig::default()
        .with_tuples_per_block(64)
        .with_blocks_per_segment(16)
        .with_coalesce_segments(1)
        .with_background_sealer(false)
        .with_segment_dir(dir.path());
    let prefix: Vec<Vec<u32>> = (0..table.schema().len())
        .map(|a| table.column(a)[..rows].to_vec())
        .collect();
    let live = LiveTable::new(table.schema().clone(), base_cfg.clone()).unwrap();
    for cols in AppendBatches::new(Table::new(table.schema().clone(), prefix), 8_192) {
        live.append_batch(&cols).unwrap();
    }
    let before = matched_set(&live, cfg, seed);
    let files = live.num_segment_files();
    drop(live);

    // Cold recovery of the uncompacted directory.
    let live = LiveTable::open(table.schema().clone(), base_cfg.clone()).unwrap();
    let stats = live.stats();
    assert_eq!(live.n_rows() as usize, rows, "recovery lost rows");
    assert_eq!(stats.recovered_torn_segments, 0, "{stats:?}");
    let recovery_ms = stats.recovery_ns as f64 / 1e6;
    let replayed_rows = stats.recovered_rows;
    drop(live);

    // Compact to the fan-in; the matched set must not move.
    let compact_cfg = base_cfg.with_compaction(fan_in);
    let live = LiveTable::open(table.schema().clone(), compact_cfg.clone()).unwrap();
    live.compact_now();
    let files_compacted = live.num_segment_files();
    assert!(
        files_compacted <= fan_in,
        "{files_compacted} files exceed fan-in {fan_in}"
    );
    assert_eq!(
        matched_set(&live, cfg, seed),
        before,
        "matched set changed across recovery + compaction"
    );
    drop(live);

    // Cold recovery of the compacted directory.
    let live = LiveTable::open(table.schema().clone(), compact_cfg).unwrap();
    assert_eq!(
        live.n_rows() as usize,
        rows,
        "post-compaction recovery lost rows"
    );
    let recovery_compacted_ms = live.stats().recovery_ns as f64 / 1e6;

    LifecyclePoint {
        rows,
        files,
        recovery_ms,
        replayed_rows,
        files_compacted,
        recovery_compacted_ms,
    }
}

fn main() {
    let append_rows = env_usize("FASTMATCH_LIVE_ROWS", 400_000).max(10_000);
    let query_rows = env_usize("FASTMATCH_BENCH_ROWS", 150_000).max(50_000);
    let batch = env_usize("FASTMATCH_LIVE_BATCH", 1_024).max(1);
    let budget = env_usize("FASTMATCH_LIVE_BUDGET", 5_000_000).max(1) as u64;
    let fan_in = env_usize("FASTMATCH_LIVE_FANIN", 4).max(2);
    let seed = env_usize("FASTMATCH_SEED", 42) as u64;
    let queries = 6usize;

    println!("== live_ingest: append throughput and query latency under ingestion ==\n");
    println!(
        "# host parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // ---- append throughput ------------------------------------------
    let t0 = Instant::now();
    let append_table = fixture(append_rows, seed);
    println!(
        "# generated {} append rows in {:.2?}; batch = {batch} rows",
        append_rows,
        t0.elapsed()
    );
    println!("# per regime: cold table per run, 1 warmup + median of 3 measured runs\n");
    let results = [
        bench_append(
            "memory-only (no sealing)",
            &append_table,
            batch,
            false,
            true,
        ),
        bench_append(
            "inline sealing (appender pays)",
            &append_table,
            batch,
            true,
            false,
        ),
        bench_append("background sealer", &append_table, batch, true, true),
    ];
    println!(
        "{}",
        render_table(
            &[
                "append path",
                "rows",
                "wall ms",
                "rows/sec",
                "segments persisted at finish"
            ],
            &results
                .iter()
                .map(|r| vec![
                    r.label.to_string(),
                    r.rows.to_string(),
                    format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                    format!("{:.0}", r.rows_per_sec()),
                    r.persisted.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- query latency under ingest ---------------------------------
    // Quiescent baseline: the full query table, no writers.
    let query_table = fixture(query_rows, seed ^ 0x51);
    // One statistical task for every phase and watermark; see
    // `query_phase` for why it must not track the snapshot size.
    let qcfg = config(query_rows);
    let quiet_live =
        LiveTable::new(query_table.schema().clone(), LiveTableConfig::default()).unwrap();
    for cols in AppendBatches::new(query_table.clone(), 8_192) {
        quiet_live.append_batch(&cols).unwrap();
    }
    let quiet = query_phase(&quiet_live, &qcfg, queries, seed);

    let extra = fixture(append_rows, seed ^ 0x77);
    let unthrottled = query_under_ingest(&query_table, &extra, &qcfg, batch, None, queries, seed);
    let budgeted = query_under_ingest(
        &query_table,
        &extra,
        &qcfg,
        batch,
        Some(budget),
        queries,
        seed,
    );
    for (label, r) in [("unthrottled", &unthrottled), ("budgeted", &budgeted)] {
        println!(
            "# {label} ingest: {} rows appended at {:.0} rows/s while {queries} queries ran \
             (watermarks {} → {}; throttled {} times for {:.1} ms total)",
            r.appended,
            r.append_rows_per_sec(),
            r.phase.watermark_first,
            r.phase.watermark_last,
            r.stats.throttled_appends,
            r.stats.throttle_wait_ns as f64 / 1e6,
        );
        println!(
            "#   peak pinned snapshot memory while querying: {:.1} KiB",
            r.phase.peak_pinned_bytes as f64 / 1024.0
        );
    }

    let lat_row = |label: &str, p: &QueryPhase| {
        vec![
            label.to_string(),
            queries.to_string(),
            format!("{:.1}", percentile(&p.latencies, 0.5).as_secs_f64() * 1e3),
            format!("{:.1}", percentile(&p.latencies, 0.99).as_secs_f64() * 1e3),
            format!(
                "{:.1}",
                p.latencies.iter().map(|d| d.as_secs_f64()).sum::<f64>() / p.latencies.len() as f64
                    * 1e3
            ),
            p.watermark_last.to_string(),
        ]
    };
    println!(
        "{}",
        render_table(
            &[
                "FastMatch over snapshots",
                "queries",
                "p50 ms",
                "p99 ms",
                "mean ms",
                "final watermark"
            ],
            &[
                lat_row("quiescent", &quiet),
                lat_row("unthrottled ingest", &unthrottled.phase),
                lat_row("budgeted ingest", &budgeted.phase),
            ],
        )
    );
    println!("# matched sets asserted identical to the plants at every watermark\n");

    // ---- storage lifecycle: recovery time and segment-count curves --
    let curve: Vec<LifecyclePoint> = [query_rows / 4, query_rows / 2, query_rows]
        .iter()
        .map(|&rows| lifecycle_point(&query_table, rows, fan_in, &qcfg, seed))
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "lifecycle",
                "rows",
                "segment files",
                "recovery ms",
                "WAL rows replayed",
                &format!("files @ fan-in {fan_in}"),
                "recovery ms (compacted)"
            ],
            &curve
                .iter()
                .map(|p| vec![
                    "seal → recover → compact → recover".to_string(),
                    p.rows.to_string(),
                    p.files.to_string(),
                    format!("{:.2}", p.recovery_ms),
                    p.replayed_rows.to_string(),
                    p.files_compacted.to_string(),
                    format!("{:.2}", p.recovery_compacted_ms),
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!("# matched sets asserted stable across every recovery + compaction round trip\n");

    let curve_json = curve
        .iter()
        .map(|p| {
            format!(
                "      {{\"rows\": {}, \"segment_files\": {}, \"recovery_ms\": {:.3}, \
                 \"wal_replayed_rows\": {}, \"files_after_compaction\": {}, \
                 \"recovery_after_compaction_ms\": {:.3}}}",
                p.rows,
                p.files,
                p.recovery_ms,
                p.replayed_rows,
                p.files_compacted,
                p.recovery_compacted_ms,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // Machine-readable summary for CI's perf trajectory. The headline
    // `under_ingest_p50_ms` is the budgeted regime — the configuration
    // the scheduler work targets — with the unthrottled collapse kept
    // alongside for the delta.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"live_ingest\",\n",
            "  \"append\": {{\n",
            "    \"rows\": {},\n",
            "    \"batch_rows\": {},\n",
            "    \"runs_per_regime\": 3,\n",
            "    \"memory_rows_per_sec\": {:.0},\n",
            "    \"inline_seal_rows_per_sec\": {:.0},\n",
            "    \"background_seal_rows_per_sec\": {:.0},\n",
            "    \"inline_segments_persisted\": {}\n",
            "  }},\n",
            "  \"query_under_ingest\": {{\n",
            "    \"queries\": {},\n",
            "    \"quiescent_p50_ms\": {:.3},\n",
            "    \"under_ingest_p50_ms\": {:.3},\n",
            "    \"under_ingest_p99_ms\": {:.3},\n",
            "    \"under_ingest_unthrottled_p50_ms\": {:.3},\n",
            "    \"append_budget_rows_per_sec\": {},\n",
            "    \"achieved_append_rows_per_sec\": {:.0},\n",
            "    \"unthrottled_append_rows_per_sec\": {:.0},\n",
            "    \"throttled_appends\": {},\n",
            "    \"coalesced_deltas\": {},\n",
            "    \"peak_pinned_snapshot_bytes\": {},\n",
            "    \"quiescent_peak_pinned_snapshot_bytes\": {},\n",
            "    \"quiescent_rows\": {},\n",
            "    \"final_watermark\": {},\n",
            "    \"matched_sets_stable\": true\n",
            "  }},\n",
            "  \"lifecycle\": {{\n",
            "    \"compact_fan_in\": {},\n",
            "    \"curve\": [\n{}\n    ],\n",
            "    \"matched_sets_stable\": true\n",
            "  }}\n",
            "}}\n"
        ),
        results[0].rows,
        batch,
        results[0].rows_per_sec(),
        results[1].rows_per_sec(),
        results[2].rows_per_sec(),
        results[1].persisted,
        queries,
        percentile(&quiet.latencies, 0.5).as_secs_f64() * 1e3,
        percentile(&budgeted.phase.latencies, 0.5).as_secs_f64() * 1e3,
        percentile(&budgeted.phase.latencies, 0.99).as_secs_f64() * 1e3,
        percentile(&unthrottled.phase.latencies, 0.5).as_secs_f64() * 1e3,
        budget,
        budgeted.append_rows_per_sec(),
        unthrottled.append_rows_per_sec(),
        budgeted.stats.throttled_appends,
        budgeted.stats.coalesced_deltas,
        budgeted.phase.peak_pinned_bytes,
        quiet.peak_pinned_bytes,
        quiet.watermark_last,
        budgeted.phase.watermark_last,
        fan_in,
        curve_json,
    );
    std::fs::write("BENCH_live.json", &json).expect("writing BENCH_live.json failed");
    println!("# wrote BENCH_live.json");
}
