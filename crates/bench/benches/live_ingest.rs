//! `live_ingest` — the live-table serving regime, measured:
//!
//! 1. **Append throughput**: rows/sec streaming a synthetic dataset
//!    into a `LiveTable` in batches — memory-only, inline sealing
//!    (appender pays the disk write), and background sealing (the
//!    sealer thread absorbs it) — so the cost of durability and the
//!    benefit of taking it off the append path are both visible.
//! 2. **Query latency under ingest**: FastMatch latency over fresh
//!    snapshots while appenders run full speed, versus the same queries
//!    over a quiescent table — the HTAP headline: how much does write
//!    traffic tax read latency, and does isolation hold (matched sets
//!    are asserted identical to a frozen-copy run at each watermark).
//!
//! Emits a machine-readable summary to `BENCH_live.json` (current
//! working directory) so CI can archive the perf trajectory.
//!
//! Scale knobs: `FASTMATCH_LIVE_ROWS` (default 400,000 append rows),
//! `FASTMATCH_BENCH_ROWS` (default 150,000 query-phase rows),
//! `FASTMATCH_LIVE_BATCH` (default 1,024 rows/append batch),
//! `FASTMATCH_SEED` (default 42).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use fastmatch_bench::report::render_table;
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_data::gen::{conditional_with_planted, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::uniform;
use fastmatch_data::AppendBatches;
use fastmatch_engine::exec::{Executor, FastMatchExec};
use fastmatch_engine::query::QueryJob;
use fastmatch_store::live::{LiveTable, LiveTableConfig};
use fastmatch_store::table::Table;
use fastmatch_store::tempfile::TempBlockDir;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fixture(rows: usize, seed: u64) -> Table {
    let dists = conditional_with_planted(
        60,
        &uniform(8),
        &[(0, 0.0), (2, 0.015), (5, 0.03), (9, 0.04), (15, 0.05)],
        0.20,
        seed ^ 0xab,
    );
    let specs = vec![
        ColumnSpec::new("z", 60, ColumnGen::PrimaryZipf { s: 1.2 }),
        ColumnSpec::new("x", 8, ColumnGen::Conditional { parent: 0, dists }),
    ];
    generate_table(&specs, rows, seed)
}

fn config(rows: usize) -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.01,
        stage1_samples: ((rows as u64) / 10).clamp(10_000, 100_000),
        ..HistSimConfig::default()
    }
}

// --------------------------------------------------------------- appends

struct AppendResult {
    label: &'static str,
    rows: u64,
    wall: Duration,
    persisted: u64,
}

impl AppendResult {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.wall.as_secs_f64()
    }
}

fn bench_append(
    label: &'static str,
    table: &Table,
    batch: usize,
    dir: Option<&std::path::Path>,
    background: bool,
) -> AppendResult {
    let mut cfg = LiveTableConfig::default().with_background_sealer(background);
    if let Some(dir) = dir {
        cfg = cfg.with_segment_dir(dir);
    }
    let live = LiveTable::new(table.schema().clone(), cfg).unwrap();
    let t0 = Instant::now();
    for cols in AppendBatches::new(table.clone(), batch) {
        live.append_batch(&cols).unwrap();
    }
    let wall = t0.elapsed();
    // Sealing is part of the story, not the append wall: report what got
    // persisted by the time appends finished (background) or always
    // (inline).
    let persisted = live.stats().persisted_segments;
    AppendResult {
        label,
        rows: table.n_rows() as u64,
        wall,
        persisted,
    }
}

// ---------------------------------------------------- query under ingest

struct QueryPhase {
    latencies: Vec<Duration>,
    watermark_first: usize,
    watermark_last: usize,
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs `queries` FastMatch queries over fresh snapshots of `live`,
/// asserting each result equals the plants (isolation + correctness).
/// Any concurrent ingest load is arranged by the caller's thread scope.
fn query_phase(live: &LiveTable, queries: usize, seed: u64) -> QueryPhase {
    let mut latencies = Vec::with_capacity(queries);
    let mut watermark_first = 0usize;
    let mut watermark_last = 0usize;
    for q in 0..queries {
        let snap = live.snapshot();
        if q == 0 {
            watermark_first = snap.n_rows();
        }
        watermark_last = snap.n_rows();
        let cfg = config(snap.n_rows());
        let job = QueryJob::from_snapshot(&snap, 0, 1, uniform(8), cfg);
        let t0 = Instant::now();
        let out = FastMatchExec::with_lookahead(64)
            .run(&job, seed.wrapping_add(q as u64))
            .expect("query under ingest failed");
        latencies.push(t0.elapsed());
        let mut ids = out.candidate_ids();
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec![0, 2, 5, 9, 15],
            "query {q} at watermark {watermark_last}: matched set diverged from the plants"
        );
    }
    latencies.sort_unstable();
    QueryPhase {
        latencies,
        watermark_first,
        watermark_last,
    }
}

fn main() {
    let append_rows = env_usize("FASTMATCH_LIVE_ROWS", 400_000).max(10_000);
    let query_rows = env_usize("FASTMATCH_BENCH_ROWS", 150_000).max(50_000);
    let batch = env_usize("FASTMATCH_LIVE_BATCH", 1_024).max(1);
    let seed = env_usize("FASTMATCH_SEED", 42) as u64;
    let queries = 6usize;

    println!("== live_ingest: append throughput and query latency under ingestion ==\n");
    println!(
        "# host parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // ---- append throughput ------------------------------------------
    let t0 = Instant::now();
    let append_table = fixture(append_rows, seed);
    println!(
        "# generated {} append rows in {:.2?}; batch = {batch} rows\n",
        append_rows,
        t0.elapsed()
    );
    let dir_inline = TempBlockDir::new("live_ingest_inline");
    let dir_bg = TempBlockDir::new("live_ingest_bg");
    let results = [
        bench_append("memory-only (no sealing)", &append_table, batch, None, true),
        bench_append(
            "inline sealing (appender pays)",
            &append_table,
            batch,
            Some(dir_inline.path()),
            false,
        ),
        bench_append(
            "background sealer",
            &append_table,
            batch,
            Some(dir_bg.path()),
            true,
        ),
    ];
    println!(
        "{}",
        render_table(
            &[
                "append path",
                "rows",
                "wall ms",
                "rows/sec",
                "segments persisted at finish"
            ],
            &results
                .iter()
                .map(|r| vec![
                    r.label.to_string(),
                    r.rows.to_string(),
                    format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                    format!("{:.0}", r.rows_per_sec()),
                    r.persisted.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- query latency under ingest ---------------------------------
    // Quiescent baseline: the full query table, no writers.
    let query_table = fixture(query_rows, seed ^ 0x51);
    let quiet_live =
        LiveTable::new(query_table.schema().clone(), LiveTableConfig::default()).unwrap();
    for cols in AppendBatches::new(query_table.clone(), 8_192) {
        quiet_live.append_batch(&cols).unwrap();
    }
    let quiet = query_phase(&quiet_live, queries, seed);

    // Under ingest: preload the same table, then run identical queries
    // while appenders stream another copy in at full speed.
    let busy_live =
        LiveTable::new(query_table.schema().clone(), LiveTableConfig::default()).unwrap();
    for cols in AppendBatches::new(query_table.clone(), 8_192) {
        busy_live.append_batch(&cols).unwrap();
    }
    let extra = fixture(append_rows, seed ^ 0x77);
    let stop = AtomicBool::new(false);
    let busy = std::thread::scope(|scope| {
        let writer = {
            let busy_live = &busy_live;
            let extra = &extra;
            let stop = &stop;
            scope.spawn(move || {
                let mut appended = 0u64;
                'outer: loop {
                    for cols in AppendBatches::new(extra.clone(), batch) {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        appended += cols[0].len() as u64;
                        busy_live.append_batch(&cols).unwrap();
                    }
                }
                appended
            })
        };
        let phase = query_phase(&busy_live, queries, seed);
        stop.store(true, Ordering::Relaxed);
        let appended = writer.join().unwrap();
        println!(
            "# ingest load appended {appended} rows while {queries} queries ran (watermarks {} → {})",
            phase.watermark_first, phase.watermark_last
        );
        phase
    });

    let lat_row = |label: &str, p: &QueryPhase| {
        vec![
            label.to_string(),
            queries.to_string(),
            format!("{:.1}", percentile(&p.latencies, 0.5).as_secs_f64() * 1e3),
            format!(
                "{:.1}",
                p.latencies.iter().map(|d| d.as_secs_f64()).sum::<f64>() / p.latencies.len() as f64
                    * 1e3
            ),
            p.watermark_last.to_string(),
        ]
    };
    println!(
        "{}",
        render_table(
            &[
                "FastMatch over snapshots",
                "queries",
                "p50 ms",
                "mean ms",
                "final watermark"
            ],
            &[lat_row("quiescent", &quiet), lat_row("under ingest", &busy)],
        )
    );
    println!("# matched sets asserted identical to the plants at every watermark\n");

    // Machine-readable summary for CI's perf trajectory.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"live_ingest\",\n",
            "  \"append\": {{\n",
            "    \"rows\": {},\n",
            "    \"batch_rows\": {},\n",
            "    \"memory_rows_per_sec\": {:.0},\n",
            "    \"inline_seal_rows_per_sec\": {:.0},\n",
            "    \"background_seal_rows_per_sec\": {:.0},\n",
            "    \"inline_segments_persisted\": {}\n",
            "  }},\n",
            "  \"query_under_ingest\": {{\n",
            "    \"queries\": {},\n",
            "    \"quiescent_p50_ms\": {:.3},\n",
            "    \"under_ingest_p50_ms\": {:.3},\n",
            "    \"quiescent_rows\": {},\n",
            "    \"final_watermark\": {},\n",
            "    \"matched_sets_stable\": true\n",
            "  }}\n",
            "}}\n"
        ),
        results[0].rows,
        batch,
        results[0].rows_per_sec(),
        results[1].rows_per_sec(),
        results[2].rows_per_sec(),
        results[1].persisted,
        queries,
        percentile(&quiet.latencies, 0.5).as_secs_f64() * 1e3,
        percentile(&busy.latencies, 0.5).as_secs_f64() * 1e3,
        quiet.watermark_last,
        busy.watermark_last,
    );
    std::fs::write("BENCH_live.json", &json).expect("writing BENCH_live.json failed");
    println!("# wrote BENCH_live.json");
}
