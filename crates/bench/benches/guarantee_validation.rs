//! **§5.4 guarantee validation** — counts Guarantee 1/2 violations across
//! repeated runs of every approximate executor on every query.
//!
//! δ = 0.01 bounds the per-run violation probability; the paper observed
//! zero violations across all runs and concludes δ is a loose bound.
//! `FASTMATCH_RUNS` scales the repetitions (the paper used 30).

use fastmatch_bench::report::render_table;
use fastmatch_bench::{measure, BenchEnv, Workload};
use fastmatch_engine::exec::{Executor, FastMatchExec, ScanMatchExec, SyncMatchExec};

fn main() {
    let env = BenchEnv::from_env();
    let queries = fastmatch_data::all_queries();
    let w = Workload::prepare(env, &queries);
    let runs = env.runs.max(3);
    println!(
        "== Guarantee validation: violations / runs (delta = 0.01, eps = 0.04, {} runs each) ==\n",
        runs
    );
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::default()),
    ];
    let mut rows = Vec::new();
    let mut grand_viol = 0u64;
    let mut grand_runs = 0u64;
    for q in &queries {
        let p = w.prepare_query(q);
        let cfg = w.default_config(&p);
        let mut row = vec![q.id.to_string()];
        for e in &execs {
            let m = measure(&w, &p, &cfg, e.as_ref(), runs, env.seed ^ 0x6a4);
            row.push(format!("{}/{}", m.violations, m.runs));
            grand_viol += m.violations;
            grand_runs += m.runs;
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["Query", "ScanMatch", "SyncMatch", "FastMatch"], &rows)
    );
    println!(
        "total: {grand_viol}/{grand_runs} (expected << delta * runs = {:.1}; paper observed 0)",
        0.01 * grand_runs as f64
    );
}
