//! **Table 5** — comparison of top-k under normalized ℓ1 versus ℓ2.
//!
//! For the four FLIGHTS queries, computes the exact top-k under both
//! metrics and reports (a) the overlap `|M*(ℓ1) ∩ M*(ℓ2)| / k` and
//! (b) the relative difference in total ℓ1 distance between the two
//! top-k sets. The paper finds ≈75% overlap and ≤4% relative distance
//! difference — evidence that ℓ1 is a suitable stand-in for ℓ2.

use fastmatch_bench::report::render_table;
use fastmatch_bench::{BenchEnv, Workload};
use fastmatch_core::topk::k_smallest_indices;
use fastmatch_core::Metric;
use fastmatch_data::datasets::DatasetId;

fn main() {
    let env = BenchEnv::from_env();
    let queries: Vec<_> = fastmatch_data::all_queries()
        .into_iter()
        .filter(|q| q.dataset == DatasetId::Flights)
        .collect();
    let w = Workload::prepare(env, &queries);

    println!("== Table 5: exact top-k, normalized l1 vs l2 (FLIGHTS) ==\n");
    let sigma = 0.0008;
    let mut rows = Vec::new();
    for q in &queries {
        let p = w.prepare_query(q);
        let hists = p.truth.histograms();
        let eligible: Vec<bool> = (0..hists.len())
            .map(|c| p.truth.selectivity(c as u32) >= sigma)
            .collect();
        let dist = |m: Metric| -> Vec<f64> {
            hists
                .iter()
                .map(|h| match h.normalized() {
                    Ok(v) => m.eval(&v, &p.target),
                    Err(_) => m.upper_limit().min(f64::MAX),
                })
                .collect()
        };
        let d1 = dist(Metric::L1);
        let d2 = dist(Metric::L2);
        let top1 = k_smallest_indices(&d1, q.k, &eligible);
        let top2 = k_smallest_indices(&d2, q.k, &eligible);
        let overlap = top1.iter().filter(|c| top2.contains(c)).count();
        let sum1: f64 = top1.iter().map(|&c| d1[c]).sum();
        let sum2_in_l1: f64 = top2.iter().map(|&c| d1[c]).sum();
        let rel = if sum1 > 0.0 {
            (sum2_in_l1 - sum1) / sum1
        } else {
            0.0
        };
        rows.push(vec![
            q.id.to_string(),
            format!("{:.2}", overlap as f64 / q.k as f64),
            format!("{rel:.3}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Query", "|M*(l1) ^ M*(l2)| / k", "relative distance diff"],
            &rows
        )
    );
    println!("(paper: overlap 0.6-0.9, relative difference 0.01-0.04)");
}
