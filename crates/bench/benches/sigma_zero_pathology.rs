//! **§5.4 "When approximation performs poorly"** — the σ = 0 pathology.
//!
//! Without stage-1 pruning, HistSim must establish guarantees for
//! thousands of near-empty TAXI candidates; the approximate executors are
//! forced into (multiple passes of) AnyActive probing and degrade to — or
//! below — full-scan latency. This harness contrasts the TAXI queries at
//! the default σ = 0.0008 versus σ = 0, mirroring the paper's
//! observations that ScanMatch degrades to ≈Scan while block-selecting
//! variants can be far slower.

use fastmatch_bench::report::{render_table, secs};
use fastmatch_bench::{measure, BenchEnv, Workload};
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_engine::exec::{Executor, FastMatchExec, ScanExec, ScanMatchExec};

fn main() {
    let env = BenchEnv::from_env();
    let queries: Vec<_> = fastmatch_data::all_queries()
        .into_iter()
        .filter(|q| q.id.starts_with("taxi"))
        .collect();
    let w = Workload::prepare(env, &queries);
    println!("== sigma = 0 pathology (TAXI queries) ==\n");
    let execs: Vec<Box<dyn Executor>> =
        vec![Box::new(ScanMatchExec), Box::new(FastMatchExec::default())];
    let mut rows = Vec::new();
    for q in &queries {
        let p = w.prepare_query(q);
        let scan = measure(
            &w,
            &p,
            &w.default_config(&p),
            &ScanExec,
            env.sweep_runs,
            env.seed,
        );
        for e in &execs {
            for &(label, sigma) in &[("default", 0.0008f64), ("sigma=0", 0.0)] {
                let cfg = HistSimConfig {
                    sigma,
                    ..w.default_config(&p)
                };
                let m = measure(&w, &p, &cfg, e.as_ref(), env.sweep_runs, env.seed ^ 0x590);
                rows.push(vec![
                    q.id.to_string(),
                    e.name().to_string(),
                    label.to_string(),
                    secs(m.avg_wall),
                    format!(
                        "{:.2}x",
                        scan.avg_wall.as_secs_f64() / m.avg_wall.as_secs_f64()
                    ),
                    format!("{:.0}", m.avg_blocks_read),
                    format!("{}", m.last.stats.exact_finish),
                ]);
            }
        }
        rows.push(vec![
            q.id.to_string(),
            "Scan".into(),
            "-".into(),
            secs(scan.avg_wall),
            "1.00x".into(),
            format!("{:.0}", scan.avg_blocks_read),
            "true".into(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Query",
                "Executor",
                "sigma",
                "wall(s)",
                "speedup",
                "blocks read",
                "exact fallback"
            ],
            &rows
        )
    );
    println!("expected shape: sigma=0 forfeits pruning; latency rises toward (or past) Scan");
}
