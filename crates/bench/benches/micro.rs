//! Criterion microbenchmarks of the algorithmic kernels: hypergeometric
//! P-values (stage 1), Theorem-1 bounds (stage 2/3), distance evaluation,
//! Holm–Bonferroni, bitmap probing and lookahead marking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fastmatch_core::stats::deviation::DeviationBound;
use fastmatch_core::stats::holm_bonferroni::HolmBonferroni;
use fastmatch_core::stats::hypergeometric::underrepresentation_pvalues;
use fastmatch_core::Metric;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::schema::{AttrDef, Schema};
use fastmatch_store::table::Table;

fn bench_hypergeometric(c: &mut Criterion) {
    // TAXI-scale stage 1: 7641 candidates, 500k draws from 600M rows.
    let n_is: Vec<u64> = (0..7641u64).map(|i| (i * 37) % 1200).collect();
    c.bench_function("stage1_hypergeometric_pvalues_7641", |b| {
        b.iter(|| {
            underrepresentation_pvalues(
                black_box(&n_is),
                black_box(600_000_000),
                black_box(0.0008),
                black_box(500_000),
            )
        })
    });
}

fn bench_deviation(c: &mut Criterion) {
    let bound = DeviationBound::L1 { groups: 24 };
    c.bench_function("theorem1_samples_needed", |b| {
        b.iter(|| bound.samples_needed(black_box(0.04), black_box(0.003)))
    });
    c.bench_function("theorem1_pvalue", |b| {
        b.iter(|| bound.pvalue(black_box(0.05), black_box(120_000)))
    });
}

fn bench_distance(c: &mut Criterion) {
    let p: Vec<f64> = (0..351).map(|i| (i + 1) as f64).collect();
    let total: f64 = p.iter().sum();
    let p: Vec<f64> = p.iter().map(|x| x / total).collect();
    let q = vec![1.0 / 351.0; 351];
    c.bench_function("l1_distance_351_groups", |b| {
        b.iter(|| Metric::L1.eval(black_box(&p), black_box(&q)))
    });
    c.bench_function("l2_distance_351_groups", |b| {
        b.iter(|| Metric::L2.eval(black_box(&p), black_box(&q)))
    });
}

fn bench_holm_bonferroni(c: &mut Criterion) {
    let pvals: Vec<f64> = (0..2110)
        .map(|i| ((i * 811) % 1000) as f64 / 1000.0)
        .collect();
    c.bench_function("holm_bonferroni_2110", |b| {
        b.iter(|| HolmBonferroni::test(black_box(&pvals), 0.0033))
    });
}

fn bitmap_fixture() -> (BitmapIndex, usize) {
    // 2000 candidates over 10_000 blocks of 150 tuples.
    let rows = 1_500_000usize;
    let col: Vec<u32> = (0..rows)
        .map(|r| ((r * 2654435761) % 2000) as u32)
        .collect();
    let t = Table::new(Schema::new(vec![AttrDef::new("z", 2000)]), vec![col]);
    let layout = BlockLayout::new(rows, 150);
    let nb = layout.num_blocks();
    (BitmapIndex::build(&t, 0, &layout), nb)
}

fn bench_bitmap(c: &mut Criterion) {
    let (idx, nb) = bitmap_fixture();
    c.bench_function("bitmap_probe_algorithm2_style", |b| {
        // per-block, per-candidate probing of 64 active candidates
        let active: Vec<u32> = (0..64).map(|i| i * 31).collect();
        b.iter(|| {
            let mut hits = 0u32;
            for blk in 0..256usize {
                for &cand in &active {
                    if idx.block_has(cand, blk) {
                        hits += 1;
                        break;
                    }
                }
            }
            hits
        })
    });
    c.bench_function("bitmap_mark_lookahead_algorithm3_style", |b| {
        let active: Vec<u32> = (0..64).map(|i| i * 31).collect();
        let mut marks = vec![false; 1024];
        b.iter(|| {
            marks.iter_mut().for_each(|m| *m = false);
            for &cand in &active {
                idx.mark_active_range(cand, black_box(nb / 2), &mut marks);
            }
            marks.iter().filter(|&&m| m).count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hypergeometric, bench_deviation, bench_distance, bench_holm_bonferroni, bench_bitmap
}
criterion_main!(benches);
