//! **Figure 11** — effect of δ on wall-clock time.
//!
//! Sweeps δ ∈ {0.005, 0.01, 0.015, 0.02} at ε = 0.04. Expected shape:
//! wall time decreases only slightly as δ grows — Theorem 1's sample
//! count depends on δ logarithmically — matching the paper's flat curves.
//! (The paper omits the corresponding Δd plot because no trend was
//! observable; we report the worst Δd as a one-line summary instead.)

use fastmatch_bench::report::render_series;
use fastmatch_bench::{measure, BenchEnv, Workload};
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_engine::exec::{Executor, FastMatchExec, ScanMatchExec, SyncMatchExec};

const DELTAS: [f64; 4] = [0.005, 0.01, 0.015, 0.02];

fn main() {
    let env = BenchEnv::from_env();
    let queries = fastmatch_data::all_queries();
    let w = Workload::prepare(env, &queries);
    println!(
        "== Figure 11: delta vs wall time (s); eps = 0.04, runs = {} ==\n",
        env.sweep_runs
    );
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::default()),
    ];
    let mut worst_dd: f64 = 0.0;
    for q in &queries {
        let p = w.prepare_query(q);
        let mut series = Vec::new();
        for e in &execs {
            let mut points = Vec::new();
            for &delta in &DELTAS {
                let cfg = HistSimConfig {
                    delta,
                    ..w.default_config(&p)
                };
                let m = measure(&w, &p, &cfg, e.as_ref(), env.sweep_runs, env.seed ^ 0xf11);
                points.push((delta, m.avg_wall.as_secs_f64()));
                worst_dd = worst_dd.max(m.avg_delta_d.abs());
            }
            series.push((e.name().to_string(), points));
        }
        println!("{}", render_series(q.id, "delta", &series));
    }
    println!("|delta_d| stayed below {worst_dd:.4} across the sweep (paper: no meaningful trend)");
}
