//! **Table 4** — average query speedups and latencies.
//!
//! For all nine queries, runs `Scan` plus the three approximate
//! executors at the §5.2 default settings (δ = 0.01, ε = 0.04,
//! σ = 0.0008, lookahead = 1024) and prints speedups over `Scan` with raw
//! latencies, exactly like the paper's Table 4. Also reports guarantee
//! violations (the paper observed none across all runs).

use fastmatch_bench::report::{render_table, secs};
use fastmatch_bench::{measure, BenchEnv, Workload};
use fastmatch_engine::exec::{Executor, FastMatchExec, ScanExec, ScanMatchExec, SyncMatchExec};

fn main() {
    let env = BenchEnv::from_env();
    let queries = fastmatch_data::all_queries();
    let w = Workload::prepare(env, &queries);

    println!("== Table 4: average speedups over Scan (raw latency in s) ==");
    println!(
        "   rows = {}, runs = {}, eps = 0.04, delta = 0.01, sigma = 0.0008\n",
        env.rows, env.runs
    );

    let approx: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::default()),
    ];

    let mut rows = Vec::new();
    let mut total_violations = 0;
    let mut total_runs = 0;
    for q in &queries {
        let p = w.prepare_query(q);
        let cfg = w.default_config(&p);
        let scan = measure(&w, &p, &cfg, &ScanExec, env.runs, env.seed);
        let scan_s = scan.avg_wall.as_secs_f64();
        let total_blocks = w.layout(q.dataset).num_blocks() as f64;
        let mut row = vec![q.id.to_string(), secs(scan.avg_wall)];
        for e in &approx {
            let m = measure(&w, &p, &cfg, e.as_ref(), env.runs, env.seed ^ 0x5150);
            let speedup = scan_s / m.avg_wall.as_secs_f64();
            // Hardware-independent I/O speedup: blocks Scan reads over
            // blocks this executor reads.
            let io_speedup = total_blocks / m.avg_blocks_read.max(1.0);
            row.push(format!(
                "{:.2}x wall / {:.1}x I/O ({})",
                speedup,
                io_speedup,
                secs(m.avg_wall),
            ));
            total_violations += m.violations;
            total_runs += m.runs;
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["Query", "Scan(s)", "ScanMatch", "SyncMatch", "FastMatch"],
            &rows
        )
    );
    println!(
        "guarantee violations: {total_violations} / {total_runs} approximate runs (paper: 0; bound: delta = 0.01)"
    );
}
