//! Shard-scaling microbenchmark: `ParallelMatch` end-to-end latency at
//! 1/2/4/8 shards against the single-core `SyncMatch` baseline, in two
//! regimes — pure in-memory (measures the coordination overhead sharding
//! must amortize) and **storage-bound over the real file backend** (the
//! regime sharded ingestion is built for: every block is a checksummed
//! page read through a deliberately small cache, so shards pay fetch
//! latency concurrently while the sequential executors pay it serially).
//!
//! Interpreting results requires knowing the host's core count (printed
//! first): on a single-core host shard workers only time-slice one CPU, so
//! every shard count degenerates to baseline-plus-overhead; wall-clock
//! wins require ≥ 2 physical cores.
//!
//! Scale via `FASTMATCH_BENCH_ROWS` (default 1,000,000 rows); bound the
//! storage regime's page cache via `FASTMATCH_CACHE_BLOCKS` (default 256
//! pages — far below the working set, so reads hit the file, not the
//! cache).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fastmatch_core::histsim::HistSimConfig;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::{far_pool, uniform};
use fastmatch_engine::exec::{Executor, ParallelMatchExec, SyncMatchExec};
use fastmatch_engine::query::QueryJob;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::file::FileBackend;
use fastmatch_store::table::Table;

fn rows() -> usize {
    std::env::var("FASTMATCH_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
        .max(50_000)
}

fn cache_blocks() -> usize {
    std::env::var("FASTMATCH_CACHE_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
        .max(1)
}

fn fixture(rows: usize) -> Table {
    let groups = 8usize;
    let dists = conditional_with_planted_pool(
        64,
        &uniform(groups),
        &[(0, 0.0), (3, 0.02), (7, 0.04), (11, 0.05), (19, 0.06)],
        &far_pool(groups),
        0.2,
        0xf00d,
    );
    let specs = vec![
        ColumnSpec::new("z", 64, ColumnGen::PrimaryZipf { s: 1.1 }),
        ColumnSpec::new(
            "x",
            groups as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    generate_table(&specs, rows, 0xbeef)
}

fn cfg() -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: 30_000,
        ..HistSimConfig::default()
    }
}

fn bench_shard_scaling(c: &mut Criterion) {
    println!(
        "# host parallelism: {} core(s) — expect shard speedups only with >= 2",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let table = fixture(rows());
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);

    // In-memory regime: ingestion is almost free, so this mostly measures
    // the coordination overhead a parallel executor must amortize.
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), cfg());
    c.bench_function("mem/sync_match_baseline", |b| {
        b.iter(|| black_box(SyncMatchExec.run(&job, 42).unwrap().candidate_ids()))
    });
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(&format!("mem/parallel_match_{shards}_shards"), |b| {
            b.iter(|| {
                black_box(
                    ParallelMatchExec::with_shards(shards)
                        .run(&job, 42)
                        .unwrap()
                        .candidate_ids(),
                )
            })
        });
    }

    // Storage-bound regime: the same fixture persisted to a real block
    // file (rows are generated iid, so the on-disk order is already a
    // valid uniform permutation), read through a cache far smaller than
    // the working set — every measured run performs actual
    // checksum-verified file reads instead of simulated sleeps.
    // Sequential executors pay the read path serially; shard workers pay
    // it concurrently.
    let path = std::env::temp_dir().join(format!(
        "fastmatch_shard_scaling_{}.fmb",
        std::process::id()
    ));
    let backend = FileBackend::create(&path, &table, layout.tuples_per_block())
        .expect("persisting the bench fixture failed")
        .with_cache_blocks(cache_blocks());
    println!(
        "# storage regime: {} blocks on disk, cache bounded at {} pages",
        layout.num_blocks(),
        cache_blocks()
    );
    let file_job = QueryJob::from_backend(&backend, &bitmap, 0, 1, uniform(8), cfg());
    c.bench_function("storage/sync_match_baseline", |b| {
        b.iter(|| black_box(SyncMatchExec.run(&file_job, 42).unwrap().candidate_ids()))
    });
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(&format!("storage/parallel_match_{shards}_shards"), |b| {
            b.iter(|| {
                black_box(
                    ParallelMatchExec::with_shards(shards)
                        .run(&file_job, 42)
                        .unwrap()
                        .candidate_ids(),
                )
            })
        });
    }
    let cs = backend.cache_stats();
    println!(
        "# storage regime cache: {} hits, {} misses (disk reads), {} evictions",
        cs.hits, cs.misses, cs.evictions
    );
    drop(backend);
    let _ = std::fs::remove_file(&path);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_shard_scaling
}
criterion_main!(benches);
