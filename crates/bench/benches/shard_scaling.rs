//! Shard-scaling microbenchmark: `ParallelMatch` end-to-end latency at
//! 1/2/4/8 shards against the single-core `SyncMatch` baseline, in two
//! regimes — pure in-memory (measures the coordination overhead sharding
//! must amortize) and storage-bound with a simulated per-block fetch
//! latency (the regime sharded ingestion is built for: shards pay fetch
//! latency concurrently, the sequential executors serially).
//!
//! Interpreting results requires knowing the host's core count (printed
//! first): on a single-core host shard workers only time-slice one CPU, so
//! every shard count degenerates to baseline-plus-overhead; wall-clock
//! wins require ≥ 2 physical cores.
//!
//! Scale via `FASTMATCH_BENCH_ROWS` (default 1,000,000 rows).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fastmatch_core::histsim::HistSimConfig;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::{far_pool, uniform};
use fastmatch_engine::exec::{Executor, ParallelMatchExec, SyncMatchExec};
use fastmatch_engine::query::QueryJob;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::table::Table;

fn rows() -> usize {
    std::env::var("FASTMATCH_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
        .max(50_000)
}

fn fixture(rows: usize) -> Table {
    let groups = 8usize;
    let dists = conditional_with_planted_pool(
        64,
        &uniform(groups),
        &[(0, 0.0), (3, 0.02), (7, 0.04), (11, 0.05), (19, 0.06)],
        &far_pool(groups),
        0.2,
        0xf00d,
    );
    let specs = vec![
        ColumnSpec::new("z", 64, ColumnGen::PrimaryZipf { s: 1.1 }),
        ColumnSpec::new(
            "x",
            groups as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    generate_table(&specs, rows, 0xbeef)
}

fn cfg() -> HistSimConfig {
    HistSimConfig {
        k: 5,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: 30_000,
        ..HistSimConfig::default()
    }
}

/// Simulated per-block fetch latency for the storage-bound regime
/// (≈ a fast NVMe block read).
const BLOCK_LATENCY_NS: u64 = 3_000;

fn bench_shard_scaling(c: &mut Criterion) {
    println!(
        "# host parallelism: {} core(s) — expect shard speedups only with >= 2",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let table = fixture(rows());
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);

    // In-memory regime: ingestion is almost free, so this mostly measures
    // the coordination overhead a parallel executor must amortize.
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), cfg());
    c.bench_function("mem/sync_match_baseline", |b| {
        b.iter(|| black_box(SyncMatchExec.run(&job, 42).unwrap().candidate_ids()))
    });
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(&format!("mem/parallel_match_{shards}_shards"), |b| {
            b.iter(|| {
                black_box(
                    ParallelMatchExec::with_shards(shards)
                        .run(&job, 42)
                        .unwrap()
                        .candidate_ids(),
                )
            })
        });
    }

    // Storage-bound regime: every block fetch costs BLOCK_LATENCY_NS, paid
    // serially by the single-core executors but concurrently by the
    // shards — the regime sharded ingestion is built for.
    let slow_job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(8), cfg())
        .with_block_latency_ns(BLOCK_LATENCY_NS);
    c.bench_function("storage/sync_match_baseline", |b| {
        b.iter(|| black_box(SyncMatchExec.run(&slow_job, 42).unwrap().candidate_ids()))
    });
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(&format!("storage/parallel_match_{shards}_shards"), |b| {
            b.iter(|| {
                black_box(
                    ParallelMatchExec::with_shards(shards)
                        .run(&slow_job, 42)
                        .unwrap()
                        .candidate_ids(),
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_shard_scaling
}
criterion_main!(benches);
