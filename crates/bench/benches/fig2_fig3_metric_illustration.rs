//! **Figures 2 and 3** — the metric and normalization arguments of §2.1,
//! rendered as ASCII histograms over the synthetic FLIGHTS data.
//!
//! * Figure 2: the target (ORD departure-hour histogram), the second-
//!   closest candidate under normalized ℓ1, and the second-closest under
//!   normalized ℓ2 — illustrating where the two metrics disagree.
//! * Figure 3: the same shape at two very different scales — identical
//!   after normalization, wildly different before — motivating why
//!   distances are taken between normalized histograms.

use fastmatch_bench::ascii::{render_distribution, render_histogram};
use fastmatch_bench::{BenchEnv, Workload};
use fastmatch_core::topk::k_smallest_indices;
use fastmatch_core::Metric;

fn main() {
    let env = BenchEnv::from_env();
    let queries: Vec<_> = fastmatch_data::all_queries()
        .into_iter()
        .filter(|q| q.id == "flights-q1")
        .collect();
    let w = Workload::prepare(env, &queries);
    let p = w.prepare_query(&queries[0]);
    let ord = p.target_candidate.expect("q1 targets ORD");

    println!("== Figure 2: target vs second-closest under l1 and l2 ==\n");
    let hists = p.truth.histograms();
    let eligible: Vec<bool> = (0..hists.len())
        .map(|c| c as u32 != ord && p.truth.selectivity(c as u32) >= 0.0008)
        .collect();
    let dist = |m: Metric| -> Vec<f64> {
        hists
            .iter()
            .map(|h| match h.normalized() {
                Ok(v) => m.eval(&v, &p.target),
                Err(_) => f64::MAX,
            })
            .collect()
    };
    let d1 = dist(Metric::L1);
    let d2 = dist(Metric::L2);
    // "second closest" = closest non-target candidate, as in the paper.
    let second_l1 = k_smallest_indices(&d1, 1, &eligible)[0];
    let second_l2 = k_smallest_indices(&d2, 1, &eligible)[0];
    println!(
        "{}",
        render_histogram(
            &format!("target: ORD-like candidate {ord} (departure hour)"),
            hists[ord as usize].counts(),
            40
        )
    );
    println!(
        "{}",
        render_histogram(
            &format!(
                "second closest in normalized l1: candidate {second_l1} (l1 = {:.4})",
                d1[second_l1]
            ),
            hists[second_l1].counts(),
            40
        )
    );
    println!(
        "{}",
        render_histogram(
            &format!(
                "second closest in normalized l2: candidate {second_l2} (l2 = {:.4})",
                d2[second_l2]
            ),
            hists[second_l2].counts(),
            40
        )
    );

    println!("== Figure 3: normalization argument ==\n");
    let shape = hists[ord as usize].normalized().unwrap();
    let big: Vec<u64> = shape.iter().map(|p| (p * 1_000_000.0) as u64).collect();
    let small: Vec<u64> = shape.iter().map(|p| (p * 25_000.0) as u64).collect();
    println!(
        "{}",
        render_histogram(
            "same shape at 1,000,000 tuples (pre-normalization)",
            &big,
            40
        )
    );
    println!(
        "{}",
        render_histogram(
            "same shape at 25,000 tuples (pre-normalization)",
            &small,
            40
        )
    );
    println!(
        "{}",
        render_distribution("both normalize to the identical distribution", &shape, 40)
    );
    println!("post-normalization l1 distance between the two: 0 (identical)");
}
