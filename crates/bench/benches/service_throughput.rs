//! `service_throughput` — multi-query serving over one shared
//! file-backed store: queries/sec and p50/p99 latency at 1, 4 and 16
//! concurrent queries through `QueryService`, with the shared block
//! cache's hit rate per concurrency level (the contention headline: the
//! same cache that serves one query comfortably collapses when sixteen
//! working sets overlap in it).
//!
//! The query mix cycles the FLIGHTS workload of `fastmatch-data::queries`
//! (Table 3, q1–q4: two planted-candidate targets, one explicit shape,
//! one closest-to-uniform — three different grouping attributes) with
//! per-query seeds, all over one persisted FLIGHTS dataset.
//!
//! Scale knobs: `FASTMATCH_BENCH_ROWS` (default 300,000),
//! `FASTMATCH_CACHE_BLOCKS` (default 1024 pages — below the working
//! set), `FASTMATCH_SERVICE_QUERIES` (queries per level, default 24),
//! `FASTMATCH_SEED` (default 42).
//!
//! Emits a machine-readable summary to `BENCH_service.json` (current
//! working directory) so CI can archive the serving-perf trajectory
//! alongside `BENCH_ingest.json` / `BENCH_live.json`.

use std::time::{Duration, Instant};

use fastmatch_bench::report::render_table;
use fastmatch_core::histsim::HistSimConfig;
use fastmatch_data::datasets::DatasetId;
use fastmatch_data::queries::{all_queries, QuerySpec};
use fastmatch_engine::service::{QueryOutcome, QueryRequest, QueryService, ServiceConfig};
use fastmatch_store::backend::StorageBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::file::{write_table, FileBackend};
use fastmatch_store::shuffle::shuffle_table;
use fastmatch_store::tempfile::TempBlockFile;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn stage1_samples(rows: usize) -> u64 {
    ((rows as u64) / 100)
        .clamp(10_000, 500_000)
        .min(rows as u64)
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let rows = env_usize("FASTMATCH_BENCH_ROWS", 300_000).max(50_000);
    let cache_blocks = env_usize("FASTMATCH_CACHE_BLOCKS", 1024).max(1);
    let queries_per_level = env_usize("FASTMATCH_SERVICE_QUERIES", 24).max(1);
    let seed = env_usize("FASTMATCH_SEED", 42) as u64;

    println!("== service_throughput: concurrent queries over one shared FileBackend ==\n");
    println!(
        "# host parallelism: {} core(s) — on one core concurrency buys scheduling overlap, not CPU",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // One persisted FLIGHTS dataset, shared by every query.
    let t0 = Instant::now();
    let table = shuffle_table(&DatasetId::Flights.generate(rows, seed), seed ^ 0x5e11);
    let scratch = TempBlockFile::new("service_throughput");
    let tpb = 150usize;
    let bytes = write_table(scratch.path(), &table, tpb).expect("persist failed");
    println!(
        "# persisted flights: {} rows, {:.1} MiB, {} blocks/attr (built in {:.2?})",
        rows,
        bytes as f64 / (1024.0 * 1024.0),
        table.n_rows().div_ceil(tpb),
        t0.elapsed()
    );

    // The FLIGHTS mix (Table 3 q1–q4): all share Z = Origin, so one
    // bitmap serves the whole mix.
    let specs: Vec<QuerySpec> = all_queries()
        .into_iter()
        .filter(|q| q.dataset == DatasetId::Flights)
        .collect();
    assert_eq!(specs.len(), 4, "expected the four FLIGHTS queries");
    let z = specs[0].z_attr(&table);
    let prepared: Vec<(usize, usize, Vec<f64>, usize)> = specs
        .iter()
        .map(|q| {
            assert_eq!(q.z_attr(&table), z, "all flights queries share Z=Origin");
            let x = q.x_attr(&table);
            let (target, _) = q.resolve_target(&table);
            (z, x, target, q.k)
        })
        .collect();

    let backend = FileBackend::open(scratch.path())
        .expect("open failed")
        .with_cache_blocks(cache_blocks);
    let layout = backend.layout();
    let bitmap = BitmapIndex::build(&table, z, &layout);
    println!(
        "# cache bounded at {} pages ({} blocks/attr on disk), {} queries per level\n",
        cache_blocks,
        layout.num_blocks(),
        queries_per_level
    );

    let cfg_for = |k: usize| HistSimConfig {
        k,
        stage1_samples: stage1_samples(rows),
        ..HistSimConfig::default()
    };

    let mut rows_out = Vec::new();
    let mut levels_json = Vec::new();
    for &concurrency in &[1usize, 4, 16] {
        let service_cfg = ServiceConfig::default();
        let cache_before = backend.cache_stats();
        let mut latencies: Vec<Duration> = Vec::with_capacity(queries_per_level);
        let mut attributed_hit_rate = 0.0f64;
        let started = Instant::now();
        QueryService::serve(&backend, service_cfg, |svc| {
            // Closed-loop load at fixed concurrency: waves of
            // `concurrency` in-flight queries, cycling the mix.
            let mut submitted = 0usize;
            while submitted < queries_per_level {
                let wave = concurrency.min(queries_per_level - submitted);
                let handles: Vec<_> = (0..wave)
                    .map(|i| {
                        let n = submitted + i;
                        let (z, x, target, k) = &prepared[n % prepared.len()];
                        svc.submit(
                            QueryRequest::new(&bitmap, *z, *x, target.clone(), cfg_for(*k))
                                .with_seed(seed.wrapping_add(1000 + n as u64)),
                        )
                        .expect("admission failed")
                    })
                    .collect();
                for h in &handles {
                    match h.wait() {
                        QueryOutcome::Finished(out) => {
                            latencies.push(out.stats.wall);
                            attributed_hit_rate += out.stats.io.cache_hit_rate();
                        }
                        other => panic!("query did not finish: {other:?}"),
                    }
                }
                submitted += wave;
            }
        });
        let makespan = started.elapsed();
        let cache = backend.cache_stats().since(cache_before);
        latencies.sort_unstable();
        // One computation per metric: the text table and the JSON
        // summary must never drift apart.
        let qps = queries_per_level as f64 / makespan.as_secs_f64();
        let p50_ms = percentile(&latencies, 0.50).as_secs_f64() * 1e3;
        let p99_ms = percentile(&latencies, 0.99).as_secs_f64() * 1e3;
        let cache_hit_pct = cache.hit_rate() * 100.0;
        let per_query_hit_pct = attributed_hit_rate / queries_per_level as f64 * 100.0;
        levels_json.push(format!(
            concat!(
                "    {{\n",
                "      \"concurrency\": {},\n",
                "      \"queries\": {},\n",
                "      \"qps\": {:.4},\n",
                "      \"p50_ms\": {:.3},\n",
                "      \"p99_ms\": {:.3},\n",
                "      \"cache_hit_pct\": {:.2},\n",
                "      \"per_query_hit_pct\": {:.2},\n",
                "      \"pressure\": {}\n",
                "    }}"
            ),
            concurrency,
            queries_per_level,
            qps,
            p50_ms,
            p99_ms,
            cache_hit_pct,
            per_query_hit_pct,
            cache.pressure,
        ));
        rows_out.push(vec![
            concurrency.to_string(),
            queries_per_level.to_string(),
            format!("{qps:.2}"),
            format!("{p50_ms:.1}"),
            format!("{p99_ms:.1}"),
            format!("{cache_hit_pct:.1}"),
            format!("{per_query_hit_pct:.1}"),
            cache.pressure.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "concurrency",
                "queries",
                "qps",
                "p50 ms",
                "p99 ms",
                "cache hit %",
                "per-query hit %",
                "pressure",
            ],
            &rows_out
        )
    );
    println!(
        "# per-query hit % averages each query's own attributed IoStats view of the shared cache"
    );

    // Machine-readable summary for CI's perf trajectory.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service_throughput\",\n",
            "  \"rows\": {},\n",
            "  \"cache_blocks\": {},\n",
            "  \"levels\": [\n{}\n  ]\n",
            "}}\n"
        ),
        rows,
        cache_blocks,
        levels_json.join(",\n"),
    );
    std::fs::write("BENCH_service.json", &json).expect("writing BENCH_service.json failed");
    println!("# wrote BENCH_service.json");
}
