//! Generic synthetic table generation.
//!
//! A dataset is described by a list of [`ColumnSpec`]s; columns are
//! generated in order, so conditional columns can reference earlier ones.
//! The finished table is run through the store's random-permutation
//! preprocessing, exactly as FastMatch requires of its input.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fastmatch_store::schema::AttrDef;
use fastmatch_store::shuffle::shuffle_table;
use fastmatch_store::table::Table;

use crate::shapes::{background_pool, perturb, Cdf};
use crate::zipf::{zipf_sizes, zipf_weights};

/// How a column's codes are produced.
#[derive(Debug, Clone)]
pub enum ColumnGen {
    /// Codes drawn iid from a fixed distribution over the dictionary.
    Iid(Vec<f64>),
    /// Codes drawn iid with Zipf(`s`) probabilities by code rank.
    IidZipf {
        /// Zipf exponent.
        s: f64,
    },
    /// The dataset's primary candidate attribute: code `c` appears exactly
    /// `zipf_sizes(card, s, rows)[c]` times — sizes are deterministic, so
    /// ground-truth selectivities follow the intended skew exactly.
    PrimaryZipf {
        /// Zipf exponent.
        s: f64,
    },
    /// Primary candidate attribute with arbitrary explicit weights
    /// (e.g. [`crate::zipf::hub_zipf_weights`]); sizes are apportioned
    /// exactly via largest remainders.
    PrimaryWeighted(Vec<f64>),
    /// Codes drawn from a per-parent-value conditional distribution
    /// (`dists[parent_code]`); `parent` must index an earlier column.
    Conditional {
        /// Index of the parent column in the spec list.
        parent: usize,
        /// One distribution over this column's dictionary per parent code.
        dists: Vec<Vec<f64>>,
    },
}

/// Name, cardinality and generator of one column.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Attribute name.
    pub name: String,
    /// Dictionary cardinality.
    pub cardinality: u32,
    /// Generator.
    pub gen: ColumnGen,
}

impl ColumnSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cardinality: u32, gen: ColumnGen) -> Self {
        ColumnSpec {
            name: name.into(),
            cardinality,
            gen,
        }
    }
}

/// Generates a table of `rows` rows from the specs, then applies the
/// random-permutation preprocessing (seeded, deterministic).
pub fn generate_table(specs: &[ColumnSpec], rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns: Vec<Vec<u32>> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let card = spec.cardinality as usize;
        let col: Vec<u32> = match &spec.gen {
            ColumnGen::Iid(probs) => {
                assert_eq!(probs.len(), card, "column {i}: distribution arity");
                let cdf = Cdf::new(probs);
                (0..rows).map(|_| cdf.sample(&mut rng)).collect()
            }
            ColumnGen::IidZipf { s } => {
                let mut w = zipf_weights(card, *s);
                crate::shapes::normalize(&mut w);
                let cdf = Cdf::new(&w);
                (0..rows).map(|_| cdf.sample(&mut rng)).collect()
            }
            ColumnGen::PrimaryZipf { s } => {
                let sizes = zipf_sizes(card, *s, rows as u64);
                primary_column(&sizes, rows)
            }
            ColumnGen::PrimaryWeighted(weights) => {
                assert_eq!(weights.len(), card, "column {i}: weight arity");
                let sizes = crate::zipf::proportional_sizes(weights, rows as u64);
                primary_column(&sizes, rows)
            }
            ColumnGen::Conditional { parent, dists } => {
                assert!(*parent < i, "column {i}: parent must come earlier");
                assert_eq!(
                    dists.len(),
                    specs[*parent].cardinality as usize,
                    "column {i}: one distribution per parent code"
                );
                let cdfs: Vec<Cdf> = dists
                    .iter()
                    .map(|d| {
                        assert_eq!(d.len(), card, "column {i}: distribution arity");
                        Cdf::new(d)
                    })
                    .collect();
                let parent_col = &columns[*parent];
                parent_col
                    .iter()
                    .map(|&p| cdfs[p as usize].sample(&mut rng))
                    .collect()
            }
        };
        columns.push(col);
    }
    let attrs: Vec<AttrDef> = specs
        .iter()
        .map(|s| AttrDef::new(s.name.clone(), s.cardinality))
        .collect();
    let table = Table::new(fastmatch_store::schema::Schema::new(attrs), columns);
    shuffle_table(&table, seed ^ 0x9e37_79b9_7f4a_7c15)
}

/// Overwrites the distributions of the given candidates with perturbations
/// of `shape` — used to plant a *second* match cluster (e.g. FLIGHTS-q2's
/// ATW-like airports) into a conditional table built around a different
/// primary target.
pub fn plant_shapes(dists: &mut [Vec<f64>], shape: &[f64], planted: &[(u32, f64)], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for &(z, amount) in planted {
        assert!(
            (z as usize) < dists.len(),
            "planted candidate {z} out of range"
        );
        dists[z as usize] = perturb(shape, amount, &mut rng);
    }
}

fn primary_column(sizes: &[u64], rows: usize) -> Vec<u32> {
    let mut col = Vec::with_capacity(rows);
    for (c, &n) in sizes.iter().enumerate() {
        col.extend(std::iter::repeat_n(c as u32, n as usize));
    }
    col
}

/// Builds the per-candidate conditional distributions for a queried
/// `(Z, X)` pair: `planted` candidates sit at controlled perturbation
/// distances from `target_shape`; everyone else gets a background-pool
/// shape with `pool_perturb` noise (varied per candidate).
pub fn conditional_with_planted(
    vz: usize,
    target_shape: &[f64],
    planted: &[(u32, f64)],
    pool_perturb: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    let pool = background_pool(target_shape.len());
    conditional_with_planted_pool(vz, target_shape, planted, &pool, pool_perturb, seed)
}

/// Like [`conditional_with_planted`] but with an explicit background pool
/// (e.g. [`crate::shapes::far_pool`] for near-uniform targets).
pub fn conditional_with_planted_pool(
    vz: usize,
    target_shape: &[f64],
    planted: &[(u32, f64)],
    pool: &[Vec<f64>],
    pool_perturb: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    assert!(!pool.is_empty(), "background pool must not be empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dists: Vec<Vec<f64>> = (0..vz)
        .map(|z| {
            let base = &pool[z % pool.len()];
            perturb(base, pool_perturb, &mut rng)
        })
        .collect();
    for &(z, amount) in planted {
        assert!((z as usize) < vz, "planted candidate {z} out of range");
        dists[z as usize] = perturb(target_shape, amount, &mut rng);
    }
    dists
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::uniform;

    #[test]
    fn primary_zipf_sizes_are_exact() {
        let specs = vec![ColumnSpec::new("z", 10, ColumnGen::PrimaryZipf { s: 1.0 })];
        let t = generate_table(&specs, 10_000, 1);
        assert_eq!(t.n_rows(), 10_000);
        let counts = t.value_counts(0);
        let expected = zipf_sizes(10, 1.0, 10_000);
        assert_eq!(counts, expected);
    }

    #[test]
    fn iid_column_matches_distribution() {
        let specs = vec![ColumnSpec::new(
            "x",
            4,
            ColumnGen::Iid(vec![0.4, 0.3, 0.2, 0.1]),
        )];
        let t = generate_table(&specs, 100_000, 2);
        let counts = t.value_counts(0);
        for (i, &expect) in [0.4, 0.3, 0.2, 0.1].iter().enumerate() {
            let f = counts[i] as f64 / 100_000.0;
            assert!((f - expect).abs() < 0.01, "bin {i}: {f}");
        }
    }

    #[test]
    fn iid_zipf_is_skewed() {
        let specs = vec![ColumnSpec::new("z", 100, ColumnGen::IidZipf { s: 1.3 })];
        let t = generate_table(&specs, 50_000, 3);
        let counts = t.value_counts(0);
        assert!(counts[0] > counts[10] && counts[10] >= counts[90]);
    }

    #[test]
    fn conditional_column_follows_parent() {
        // parent z ∈ {0, 1}; x | z=0 always 0, x | z=1 always 1.
        let specs = vec![
            ColumnSpec::new("z", 2, ColumnGen::PrimaryZipf { s: 0.5 }),
            ColumnSpec::new(
                "x",
                2,
                ColumnGen::Conditional {
                    parent: 0,
                    dists: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
                },
            ),
        ];
        let t = generate_table(&specs, 5_000, 4);
        for r in 0..t.n_rows() {
            assert_eq!(t.code(0, r), t.code(1, r));
        }
    }

    #[test]
    fn conditional_distribution_is_respected_statistically() {
        let specs = vec![
            ColumnSpec::new("z", 2, ColumnGen::PrimaryZipf { s: 0.0 }),
            ColumnSpec::new(
                "x",
                2,
                ColumnGen::Conditional {
                    parent: 0,
                    dists: vec![vec![0.9, 0.1], vec![0.2, 0.8]],
                },
            ),
        ];
        let t = generate_table(&specs, 100_000, 5);
        let ct = t.crosstab(0, 1);
        let f00 = ct[0] as f64 / (ct[0] + ct[1]) as f64;
        let f10 = ct[2] as f64 / (ct[2] + ct[3]) as f64;
        assert!((f00 - 0.9).abs() < 0.02, "{f00}");
        assert!((f10 - 0.2).abs() < 0.02, "{f10}");
    }

    #[test]
    fn generation_is_deterministic() {
        let specs = vec![
            ColumnSpec::new("z", 5, ColumnGen::PrimaryZipf { s: 1.0 }),
            ColumnSpec::new("x", 3, ColumnGen::IidZipf { s: 0.5 }),
        ];
        let a = generate_table(&specs, 2_000, 42);
        let b = generate_table(&specs, 2_000, 42);
        assert_eq!(a, b);
        let c = generate_table(&specs, 2_000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn table_is_shuffled() {
        let specs = vec![ColumnSpec::new("z", 4, ColumnGen::PrimaryZipf { s: 0.0 })];
        let t = generate_table(&specs, 4_000, 6);
        // Without shuffling the first quarter would be all zeros.
        let zeros_in_prefix = (0..1000).filter(|&r| t.code(0, r) == 0).count();
        assert!(zeros_in_prefix < 500, "prefix not shuffled");
    }

    #[test]
    fn planted_candidates_are_near_target() {
        let target = uniform(8);
        let dists = conditional_with_planted(50, &target, &[(3, 0.0), (10, 0.05)], 0.4, 7);
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        assert!(l1(&dists[3], &target) < 1e-12);
        assert!(l1(&dists[10], &target) < 0.2);
        // background candidates are much further on average
        let avg_bg: f64 = (0..50)
            .filter(|z| ![3usize, 10].contains(z))
            .map(|z| l1(&dists[z], &target))
            .sum::<f64>()
            / 48.0;
        assert!(avg_bg > 0.3, "avg background distance {avg_bg}");
    }

    #[test]
    #[should_panic(expected = "parent must come earlier")]
    fn forward_parent_reference_panics() {
        let specs = vec![ColumnSpec::new(
            "x",
            2,
            ColumnGen::Conditional {
                parent: 0,
                dists: vec![],
            },
        )];
        generate_table(&specs, 10, 0);
    }
}
