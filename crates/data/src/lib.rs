//! # fastmatch-data
//!
//! Synthetic stand-ins for the three evaluation datasets of the FastMatch
//! paper (Table 2) and the nine-query workload of Table 3.
//!
//! The paper evaluates on real FLIGHTS / TAXI / POLICE dumps replicated to
//! 32–36 GiB. Those dumps are not redistributable at that scale, so this
//! crate generates synthetic tables with the *same schema shape* — the
//! exact candidate/grouping cardinalities of Table 3, Zipf-skewed candidate
//! sizes (e.g. thousands of near-empty TAXI locations), and per-candidate
//! group distributions drawn from structured shape families so each query
//! has a meaningful, well-separated top-k plus near-boundary candidates.
//! Row counts are configurable so experiments scale from CI smoke tests to
//! paper-sized runs.
//!
//! See `DESIGN.md` §2 for the substitution rationale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod gen;
pub mod persist;
pub mod queries;
pub mod shapes;
pub mod stream;
pub mod zipf;

pub use datasets::{flights, police, taxi, DatasetId};
pub use persist::{load, persist_shuffled};
pub use queries::{all_queries, QuerySpec, TargetSpec};
pub use stream::AppendBatches;
