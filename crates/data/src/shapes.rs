//! Distribution shape families for per-candidate group distributions.
//!
//! Every candidate value of a queried `Z` attribute carries a conditional
//! distribution over the grouping attribute `X`. To create realistic
//! match structure (a clear top-k, a few near-boundary candidates, a long
//! tail of dissimilar shapes) we compose a small library of parametric
//! shapes with random perturbations.

use rand::rngs::StdRng;
use rand::Rng;

/// Normalizes a non-negative weight vector in place to sum to 1.
pub fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    assert!(total > 0.0, "cannot normalize a zero vector");
    for x in v.iter_mut() {
        *x /= total;
    }
}

/// The uniform distribution over `n` bins.
pub fn uniform(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}

/// A Gaussian bump centered at `center` (in bin units) with width `width`,
/// plus a small floor so no bin has zero mass.
pub fn peaked(n: usize, center: f64, width: f64) -> Vec<f64> {
    assert!(width > 0.0);
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let d = (i as f64 - center) / width;
            (-0.5 * d * d).exp() + 1e-3
        })
        .collect();
    normalize(&mut v);
    v
}

/// A mixture of two bumps — e.g. the morning/evening rush-hour pattern of
/// departure times, or the 3–5 am nightclub pickup spike of §1 Example 2.
pub fn bimodal(n: usize, c1: f64, c2: f64, width: f64, mix: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&mix));
    let a = peaked(n, c1, width);
    let b = peaked(n, c2, width);
    let mut v: Vec<f64> = a
        .iter()
        .zip(&b)
        .map(|(x, y)| mix * x + (1.0 - mix) * y)
        .collect();
    normalize(&mut v);
    v
}

/// Geometrically decaying mass: `p_i ∝ ratio^i` (ratio < 1 front-loaded).
pub fn geometric(n: usize, ratio: f64) -> Vec<f64> {
    assert!(ratio > 0.0);
    let mut v: Vec<f64> = (0..n).map(|i| ratio.powi(i as i32) + 1e-6).collect();
    normalize(&mut v);
    v
}

/// A linear ramp from `1` to `slope_end` (relative weights).
pub fn ramp(n: usize, slope_end: f64) -> Vec<f64> {
    assert!(slope_end > 0.0);
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + (slope_end - 1.0) * i as f64 / (n.max(2) - 1) as f64)
        .collect();
    normalize(&mut v);
    v
}

/// A draw from the flat Dirichlet (each coordinate `Exp(1)`, normalized)
/// — pure shape noise.
pub fn dirichlet_flat(n: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n)
        .map(|_| -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln())
        .collect();
    normalize(&mut v);
    v
}

/// Convex mixture of `base` with Dirichlet noise: `(1−a)·base + a·noise`.
/// `amount = 0` returns the base exactly; `amount = 1` is pure noise. The
/// ℓ1 distance to the base grows monotonically with `amount` in
/// expectation, which is how queries plant near-boundary candidates at
/// controlled distances.
pub fn perturb(base: &[f64], amount: f64, rng: &mut StdRng) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&amount));
    let noise = dirichlet_flat(base.len(), rng);
    let mut v: Vec<f64> = base
        .iter()
        .zip(&noise)
        .map(|(b, z)| (1.0 - amount) * b + amount * z)
        .collect();
    normalize(&mut v);
    v
}

/// A pool of visually distinct base shapes for "background" candidates.
pub fn background_pool(n: usize) -> Vec<Vec<f64>> {
    let nf = n as f64;
    vec![
        peaked(n, 0.15 * nf, 0.06 * nf + 0.5),
        peaked(n, 0.5 * nf, 0.08 * nf + 0.5),
        peaked(n, 0.85 * nf, 0.06 * nf + 0.5),
        bimodal(n, 0.2 * nf, 0.8 * nf, 0.07 * nf + 0.5, 0.5),
        geometric(n, 0.7),
        ramp(n, 4.0),
        ramp(n, 0.25),
    ]
}

/// A pool of shapes all *far* from uniform (ℓ1 distance ≳ 0.6).
///
/// Used for background candidates of queries whose target is near
/// uniform: keeping non-matches far from the target keeps the stage-2
/// split-point slack `ε′ⱼ` large for low-selectivity candidates, so their
/// per-round demands (Eq. 1, `∝ 1/ε′²`) stay proportionate — mirroring
/// real data, where most candidates are nowhere near the target.
pub fn far_pool(n: usize) -> Vec<Vec<f64>> {
    if n == 2 {
        return vec![
            vec![0.95, 0.05],
            vec![0.05, 0.95],
            vec![0.90, 0.10],
            vec![0.10, 0.90],
            vec![0.97, 0.03],
        ];
    }
    if n == 3 {
        return vec![
            vec![0.88, 0.06, 0.06],
            vec![0.06, 0.88, 0.06],
            vec![0.06, 0.06, 0.88],
            vec![0.75, 0.22, 0.03],
            vec![0.03, 0.15, 0.82],
        ];
    }
    let nf = n as f64;
    vec![
        peaked(n, 0.12 * nf, 0.04 * nf + 0.3),
        peaked(n, 0.5 * nf, 0.05 * nf + 0.3),
        peaked(n, 0.88 * nf, 0.04 * nf + 0.3),
        bimodal(n, 0.15 * nf, 0.85 * nf, 0.04 * nf + 0.3, 0.55),
        geometric(n, 0.55),
        peaked(n, 0.3 * nf, 0.035 * nf + 0.3),
        peaked(n, 0.7 * nf, 0.035 * nf + 0.3),
    ]
}

/// Cumulative distribution for fast inverse-CDF sampling.
#[derive(Debug, Clone)]
pub struct Cdf {
    cum: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF of a probability vector.
    pub fn new(probs: &[f64]) -> Self {
        let mut cum = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in probs {
            assert!(p >= 0.0, "probabilities must be non-negative");
            acc += p;
            cum.push(acc);
        }
        // Guard against rounding: force the last entry to cover 1.0.
        if let Some(last) = cum.last_mut() {
            *last = f64::MAX;
        }
        Cdf { cum }
    }

    /// Samples a bin index.
    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen();
        self.cum.partition_point(|&c| c < u) as u32
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn is_distribution(v: &[f64]) -> bool {
        v.iter().all(|&p| p >= 0.0) && (v.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }

    #[test]
    fn all_shapes_are_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 7, 24, 351] {
            assert!(is_distribution(&uniform(n)));
            assert!(is_distribution(&peaked(n, n as f64 / 2.0, 1.5)));
            assert!(is_distribution(&bimodal(n, 1.0, n as f64 - 1.0, 1.0, 0.4)));
            assert!(is_distribution(&geometric(n, 0.8)));
            assert!(is_distribution(&ramp(n, 3.0)));
            assert!(is_distribution(&dirichlet_flat(n, &mut rng)));
            for pool in background_pool(n) {
                assert!(is_distribution(&pool));
            }
        }
    }

    #[test]
    fn far_pool_is_far_from_uniform() {
        for n in [2usize, 3, 5, 7, 12, 24, 351] {
            let u = uniform(n);
            for (i, shape) in far_pool(n).iter().enumerate() {
                assert!(is_distribution(shape), "n={n} shape {i}");
                let d: f64 = shape.iter().zip(&u).map(|(a, b)| (a - b).abs()).sum();
                assert!(d > 0.55, "n={n} shape {i} too close to uniform: {d}");
            }
        }
    }

    #[test]
    fn peaked_concentrates_at_center() {
        let p = peaked(24, 8.0, 1.0);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 8);
    }

    #[test]
    fn bimodal_has_two_local_maxima() {
        let p = bimodal(24, 4.0, 18.0, 1.5, 0.5);
        assert!(p[4] > p[10] && p[18] > p[10]);
    }

    #[test]
    fn perturb_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = peaked(10, 3.0, 1.0);
        let same = perturb(&base, 0.0, &mut rng);
        for (a, b) in base.iter().zip(&same) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn perturb_distance_grows_with_amount() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = peaked(24, 6.0, 2.0);
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        // average over draws to avoid flakiness
        let avg_dist = |amount: f64, rng: &mut StdRng| -> f64 {
            (0..50)
                .map(|_| l1(&base, &perturb(&base, amount, rng)))
                .sum::<f64>()
                / 50.0
        };
        let d_small = avg_dist(0.05, &mut rng);
        let d_big = avg_dist(0.5, &mut rng);
        assert!(d_small < d_big, "{d_small} vs {d_big}");
        assert!(d_small > 0.0);
    }

    #[test]
    fn cdf_sampling_matches_probabilities() {
        let probs = vec![0.5, 0.3, 0.2];
        let cdf = Cdf::new(&probs);
        assert_eq!(cdf.len(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u64; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[cdf.sample(&mut rng) as usize] += 1;
        }
        for (i, &p) in probs.iter().enumerate() {
            let f = counts[i] as f64 / n as f64;
            assert!((f - p).abs() < 0.01, "bin {i}: {f} vs {p}");
        }
    }

    #[test]
    fn cdf_never_returns_out_of_range() {
        let cdf = Cdf::new(&[0.3, 0.3, 0.4]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(cdf.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        normalize(&mut [0.0, 0.0]);
    }
}
