//! The three synthetic datasets (Table 2 analogues).
//!
//! Cardinalities match Table 3 of the paper exactly. Candidate sizes
//! follow a *hub-and-tail* law ([`crate::zipf::hub_zipf_weights`]): a
//! handful of equally large hubs (O'Hare-class airports, arterial roads,
//! midtown pickup cells) over a long Zipf tail — the regime the paper's
//! real datasets are in. Each queried `(Z, X)` pair plants its top-k
//! matches on hubs at graded ℓ1 distances from the target, a couple of
//! "jump" decoys just past the boundary, and sub-σ rare decoys that are
//! close to the target but legitimately prunable; everything else draws a
//! far-from-target background shape. This yields the evaluation regime of
//! §5: frequent top-k members (stage-3 reconstruction needs a small
//! fraction of the data), a clean separation boundary, and a prunable
//! tail (TAXI keeps thousands of near-empty locations).

use fastmatch_store::table::Table;

use crate::gen::{
    conditional_with_planted_pool, generate_table, plant_shapes, ColumnGen, ColumnSpec,
};
use crate::shapes::{bimodal, far_pool, geometric, normalize, uniform};
use crate::zipf::three_tier_weights;

/// Identifier of one of the three synthetic datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Flight records: 347 origins, departure-hour / day-of-week / dest
    /// grouping attributes.
    Flights,
    /// Taxi trips: 7641 pickup locations (heavy tail), hour / month.
    Taxi,
    /// Police stops: 210 roads and 2110 violations as candidates.
    Police,
}

impl DatasetId {
    /// Generates the dataset at the given scale.
    pub fn generate(&self, rows: usize, seed: u64) -> Table {
        match self {
            DatasetId::Flights => flights(rows, seed),
            DatasetId::Taxi => taxi(rows, seed),
            DatasetId::Police => police(rows, seed),
        }
    }

    /// Dataset name as used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Flights => "FLIGHTS",
            DatasetId::Taxi => "TAXI",
            DatasetId::Police => "POLICE",
        }
    }

    /// All three datasets.
    pub fn all() -> [DatasetId; 3] {
        [DatasetId::Flights, DatasetId::Taxi, DatasetId::Police]
    }
}

/// The candidate id standing in for Chicago ORD (a hub origin).
pub const FLIGHTS_ORD: u32 = 0;
/// The candidate id standing in for Appleton ATW (a rare tail origin).
pub const FLIGHTS_ATW: u32 = 300;

/// The FLIGHTS-q3 explicit target over days of the week.
pub fn flights_q3_target() -> Vec<f64> {
    vec![0.25, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125]
}

/// The ORD-like departure-hour shape: morning and evening rush peaks.
pub fn ord_departure_shape() -> Vec<f64> {
    bimodal(24, 8.0, 17.5, 2.2, 0.55)
}

/// The ATW-like departure-hour shape (regional field: early peaks) —
/// deliberately far from both [`ord_departure_shape`] and every background
/// pool base, so FLIGHTS-q2's match cluster is well separated.
pub fn atw_departure_shape() -> Vec<f64> {
    bimodal(24, 3.0, 12.0, 1.5, 0.35)
}

/// Background-pool perturbation: keeps non-matches tightly clustered
/// around their (far) base shapes.
const POOL_PERTURB: f64 = 0.10;

/// Synthetic FLIGHTS: 347 origins — 16 hubs (62% of traffic), 60 mid-size
/// airports (Zipf 0.7, 36%), 271 tiny fields (2%) — and 7 attributes.
pub fn flights(rows: usize, seed: u64) -> Table {
    let vz = 347usize;
    let sizes = three_tier_weights(vz, 16, 0.62, 60, 0.36, 0.7);
    // q1/q2 grouping: departure hour. Ten graded matches on hubs, two
    // *sparse* mid-tier boundary contenders (the regime where AnyActive
    // block skipping beats a sequential scan), one hub decoy past the
    // boundary, plus sub-σ rare decoys near the target.
    let mut dep_hour = conditional_with_planted_pool(
        vz,
        &ord_departure_shape(),
        &[
            (FLIGHTS_ORD, 0.0),
            (1, 0.02),
            (2, 0.04),
            (3, 0.06),
            (4, 0.08),
            (5, 0.10),
            (6, 0.12),
            (7, 0.14),
            (8, 0.16),
            (9, 0.18),
            (10, 0.45),
            (11, 0.50),
            (12, 0.55),
            (150, 0.02),
            (250, 0.05),
        ],
        &far_pool(24),
        POOL_PERTURB,
        seed ^ 0x11,
    );
    // q2's match cluster around the ATW shape: ATW itself (deep tail, sub-σ)
    // plus ten frequent airports with similar regional schedules, and two
    // just-past-the-boundary decoys.
    plant_shapes(
        &mut dep_hour,
        &atw_departure_shape(),
        &[
            (FLIGHTS_ATW, 0.02),
            (13, 0.01),
            (14, 0.03),
            (15, 0.05),
            (16, 0.06),
            (17, 0.08),
            (18, 0.10),
            (19, 0.12),
            (20, 0.14),
            (21, 0.16),
            (22, 0.18),
            (23, 0.50),
            (24, 0.55),
        ],
        seed ^ 0x14,
    );
    // q3 grouping: day of week with the explicit Table 3 target shape.
    let mut q3_shape = flights_q3_target();
    normalize(&mut q3_shape);
    let day_of_week = conditional_with_planted_pool(
        vz,
        &q3_shape,
        &[
            (1, 0.01),
            (3, 0.03),
            (5, 0.05),
            (7, 0.07),
            (9, 0.09),
            (11, 0.45),
            (13, 0.50),
            (200, 0.02),
        ],
        &far_pool(7),
        POOL_PERTURB,
        seed ^ 0x12,
    );
    // q4 grouping: destination (|V_X| = 351), near-uniform matches.
    let dest = conditional_with_planted_pool(
        vz,
        &uniform(351),
        &[
            (0, 0.005),
            (2, 0.02),
            (4, 0.04),
            (6, 0.06),
            (8, 0.08),
            (10, 0.10),
            (12, 0.12),
            (14, 0.14),
            (1, 0.16),
            (3, 0.18),
            (5, 0.50),
            (7, 0.55),
            (180, 0.03),
        ],
        &far_pool(351),
        POOL_PERTURB,
        seed ^ 0x13,
    );
    let specs = vec![
        ColumnSpec::new("Origin", vz as u32, ColumnGen::PrimaryWeighted(sizes)),
        ColumnSpec::new(
            "Dest",
            351,
            ColumnGen::Conditional {
                parent: 0,
                dists: dest,
            },
        ),
        ColumnSpec::new(
            "DepartureHour",
            24,
            ColumnGen::Conditional {
                parent: 0,
                dists: dep_hour,
            },
        ),
        ColumnSpec::new(
            "DayOfWeek",
            7,
            ColumnGen::Conditional {
                parent: 0,
                dists: day_of_week,
            },
        ),
        ColumnSpec::new("DayOfMonth", 31, ColumnGen::Iid(uniform(31))),
        ColumnSpec::new("DepDelay", 16, ColumnGen::Iid(geometric(16, 0.65))),
        ColumnSpec::new("ArrDelay", 16, ColumnGen::Iid(geometric(16, 0.7))),
    ];
    generate_table(&specs, rows, seed)
}

/// Synthetic TAXI: 7641 pickup locations — 16 midtown hub cells (45% of
/// trips), 100 busy cells (Zipf 0.8, 54%), 7525 near-empty cells sharing
/// 1% (thousands below 10 tuples, as the paper highlights) — and 7
/// attributes.
pub fn taxi(rows: usize, seed: u64) -> Table {
    let vz = 7641usize;
    let sizes = three_tier_weights(vz, 16, 0.45, 100, 0.54, 0.8);
    let hour = conditional_with_planted_pool(
        vz,
        &uniform(24),
        &[
            (0, 0.0),
            (1, 0.02),
            (2, 0.04),
            (3, 0.06),
            (4, 0.08),
            (5, 0.10),
            (6, 0.12),
            (7, 0.14),
            (8, 0.16),
            (9, 0.18),
            (10, 0.45),
            (11, 0.50),
            (12, 0.55),
            (3000, 0.01),
            (5000, 0.02),
        ],
        &far_pool(24),
        POOL_PERTURB,
        seed ^ 0x21,
    );
    let month = conditional_with_planted_pool(
        vz,
        &uniform(12),
        &[
            (0, 0.005),
            (2, 0.025),
            (4, 0.045),
            (6, 0.065),
            (8, 0.085),
            (10, 0.105),
            (1, 0.125),
            (3, 0.145),
            (5, 0.165),
            (7, 0.185),
            (70, 0.45),
            (90, 0.50),
            (9, 0.55),
            (4000, 0.015),
        ],
        &far_pool(12),
        POOL_PERTURB,
        seed ^ 0x22,
    );
    let specs = vec![
        ColumnSpec::new("Location", vz as u32, ColumnGen::PrimaryWeighted(sizes)),
        ColumnSpec::new(
            "HourOfDay",
            24,
            ColumnGen::Conditional {
                parent: 0,
                dists: hour,
            },
        ),
        ColumnSpec::new(
            "MonthOfYear",
            12,
            ColumnGen::Conditional {
                parent: 0,
                dists: month,
            },
        ),
        ColumnSpec::new("DayOfWeek", 7, ColumnGen::Iid(uniform(7))),
        ColumnSpec::new("PassengerCount", 8, ColumnGen::Iid(geometric(8, 0.5))),
        ColumnSpec::new("RateCode", 4, ColumnGen::Iid(geometric(4, 0.3))),
        ColumnSpec::new("TripMinutes", 32, ColumnGen::Iid(geometric(32, 0.85))),
    ];
    generate_table(&specs, rows, seed)
}

/// Synthetic POLICE: 210 roads (16 arterial hubs, 55% of stops) as q1/q2
/// candidates, 2110 violations (12 hub codes, 40% of stops) as q3
/// candidates, and 10 attributes.
pub fn police(rows: usize, seed: u64) -> Table {
    let roads = 210usize;
    let violations = 2110usize;
    let road_sizes = three_tier_weights(roads, 16, 0.55, 60, 0.43, 0.7);
    let mut violation_probs = three_tier_weights(violations, 12, 0.40, 100, 0.55, 0.8);
    normalize(&mut violation_probs);
    let contraband = conditional_with_planted_pool(
        roads,
        &uniform(2),
        &[
            (0, 0.0),
            (1, 0.04),
            (2, 0.08),
            (3, 0.12),
            (4, 0.16),
            (5, 0.20),
            (6, 0.24),
            (7, 0.28),
            (8, 0.32),
            (9, 0.36),
            (10, 0.90),
            (55, 0.95),
            (150, 0.05),
        ],
        &far_pool(2),
        POOL_PERTURB,
        seed ^ 0x31,
    );
    let officer_race = conditional_with_planted_pool(
        roads,
        &uniform(5),
        &[
            (0, 0.0),
            (1, 0.03),
            (2, 0.06),
            (3, 0.09),
            (4, 0.12),
            (5, 0.15),
            (6, 0.18),
            (7, 0.21),
            (8, 0.24),
            (9, 0.27),
            (10, 0.80),
            (60, 0.85),
            (170, 0.04),
        ],
        &far_pool(5),
        POOL_PERTURB,
        seed ^ 0x32,
    );
    let driver_gender = conditional_with_planted_pool(
        violations,
        &uniform(2),
        &[
            (0, 0.0),
            (1, 0.04),
            (2, 0.08),
            (3, 0.12),
            (4, 0.16),
            (5, 0.85),
            (71, 0.90),
            (1500, 0.02),
            (1800, 0.05),
        ],
        &far_pool(2),
        POOL_PERTURB,
        seed ^ 0x33,
    );
    let specs = vec![
        ColumnSpec::new(
            "RoadID",
            roads as u32,
            ColumnGen::PrimaryWeighted(road_sizes),
        ),
        ColumnSpec::new(
            "Violation",
            violations as u32,
            ColumnGen::Iid(violation_probs),
        ),
        ColumnSpec::new(
            "ContrabandFound",
            2,
            ColumnGen::Conditional {
                parent: 0,
                dists: contraband,
            },
        ),
        ColumnSpec::new(
            "OfficerRace",
            5,
            ColumnGen::Conditional {
                parent: 0,
                dists: officer_race,
            },
        ),
        ColumnSpec::new(
            "DriverGender",
            2,
            ColumnGen::Conditional {
                parent: 1,
                dists: driver_gender,
            },
        ),
        ColumnSpec::new("County", 39, ColumnGen::IidZipf { s: 0.8 }),
        ColumnSpec::new("OfficerGender", 2, ColumnGen::Iid(vec![0.8, 0.2])),
        ColumnSpec::new("DriverRace", 6, ColumnGen::IidZipf { s: 0.9 }),
        ColumnSpec::new("StopOutcome", 8, ColumnGen::Iid(geometric(8, 0.6))),
        ColumnSpec::new("SearchConducted", 2, ColumnGen::Iid(vec![0.93, 0.07])),
    ];
    generate_table(&specs, rows, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flights_schema_matches_table3() {
        let t = flights(30_000, 1);
        assert_eq!(t.n_rows(), 30_000);
        assert_eq!(t.cardinality(t.attr_index("Origin").unwrap()), 347);
        assert_eq!(t.cardinality(t.attr_index("Dest").unwrap()), 351);
        assert_eq!(t.cardinality(t.attr_index("DepartureHour").unwrap()), 24);
        assert_eq!(t.cardinality(t.attr_index("DayOfWeek").unwrap()), 7);
        assert_eq!(t.schema().len(), 7);
    }

    #[test]
    fn taxi_schema_matches_table3() {
        let t = taxi(30_000, 1);
        assert_eq!(t.cardinality(t.attr_index("Location").unwrap()), 7641);
        assert_eq!(t.cardinality(t.attr_index("HourOfDay").unwrap()), 24);
        assert_eq!(t.cardinality(t.attr_index("MonthOfYear").unwrap()), 12);
        assert_eq!(t.schema().len(), 7);
    }

    #[test]
    fn police_schema_matches_table3() {
        let t = police(30_000, 1);
        assert_eq!(t.cardinality(t.attr_index("RoadID").unwrap()), 210);
        assert_eq!(t.cardinality(t.attr_index("Violation").unwrap()), 2110);
        assert_eq!(t.cardinality(t.attr_index("DriverGender").unwrap()), 2);
        assert_eq!(t.schema().len(), 10);
    }

    #[test]
    fn ord_is_a_hub_with_high_selectivity() {
        let t = flights(100_000, 2);
        let counts = t.value_counts(0);
        let sel = counts[FLIGHTS_ORD as usize] as f64 / 100_000.0;
        // hubs share 70% across 16: ~4.4% each
        assert!(sel > 0.03, "ORD selectivity {sel}");
        // and no tail candidate dwarfs the hubs
        let max = counts.iter().copied().max().unwrap();
        assert!(counts[FLIGHTS_ORD as usize] * 2 > max, "hub dwarfed: {max}");
    }

    #[test]
    fn atw_is_rare_but_nonempty() {
        let t = flights(400_000, 2);
        let counts = t.value_counts(0);
        let atw = counts[FLIGHTS_ATW as usize];
        assert!(atw > 0, "ATW must have some tuples");
        // below the default σ = 0.0008
        assert!(
            (atw as f64) < 0.0008 * 400_000.0,
            "ATW should be sub-sigma, has {atw}"
        );
    }

    #[test]
    fn ord_histogram_tracks_planted_shape() {
        let t = flights(300_000, 3);
        let z = t.attr_index("Origin").unwrap();
        let x = t.attr_index("DepartureHour").unwrap();
        let ct = t.crosstab(z, x);
        let row = &ct[FLIGHTS_ORD as usize * 24..(FLIGHTS_ORD as usize + 1) * 24];
        let total: u64 = row.iter().sum();
        let shape = ord_departure_shape();
        let l1: f64 = row
            .iter()
            .zip(&shape)
            .map(|(&c, &s)| (c as f64 / total as f64 - s).abs())
            .sum();
        assert!(l1 < 0.05, "ORD empirical shape off by {l1}");
    }

    #[test]
    fn planted_matches_are_the_true_topk() {
        // The ten graded dep-hour matches must actually be the ten closest
        // candidates to the ORD shape among sufficiently-frequent origins.
        let t = flights(400_000, 4);
        let z = t.attr_index("Origin").unwrap();
        let x = t.attr_index("DepartureHour").unwrap();
        let ct = t.crosstab(z, x);
        let counts = t.value_counts(z);
        let target = ord_departure_shape();
        let mut dists: Vec<(f64, usize)> = (0..347)
            .filter(|&c| counts[c] as f64 >= 0.0008 * 400_000.0)
            .map(|c| {
                let row = &ct[c * 24..(c + 1) * 24];
                let tot: u64 = row.iter().sum();
                let d: f64 = row
                    .iter()
                    .zip(&target)
                    .map(|(&v, &s)| (v as f64 / tot.max(1) as f64 - s).abs())
                    .sum();
                (d, c)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let top10: Vec<usize> = dists[..10].iter().map(|&(_, c)| c).collect();
        let mut sorted = top10.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<usize>>(), "top10 = {top10:?}");
        // and there is a real gap to the 11th
        assert!(
            dists[10].0 - dists[9].0 > 0.1,
            "boundary gap too small: {} vs {}",
            dists[9].0,
            dists[10].0
        );
    }

    #[test]
    fn taxi_tail_is_sparse() {
        let t = taxi(1_000_000, 4);
        let counts = t.value_counts(0);
        let tiny = counts.iter().filter(|&&c| c < 10).count();
        assert!(tiny > 3000, "only {tiny} tiny candidates");
    }

    #[test]
    fn taxi_hubs_are_frequent() {
        let t = taxi(500_000, 5);
        let counts = t.value_counts(0);
        for (c, &count) in counts.iter().enumerate().take(10) {
            let sel = count as f64 / 500_000.0;
            assert!(sel > 0.02, "hub {c} sel {sel}");
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(flights(10_000, 7), flights(10_000, 7));
        assert_eq!(taxi(10_000, 7), taxi(10_000, 7));
        assert_eq!(police(10_000, 7), police(10_000, 7));
    }

    #[test]
    fn dataset_id_roundtrip() {
        for id in DatasetId::all() {
            let t = id.generate(5_000, 9);
            assert_eq!(t.n_rows(), 5_000);
            assert!(!id.name().is_empty());
        }
    }
}
