//! Zipf-distributed candidate sizes.
//!
//! Real candidate attributes are heavily skewed: a few huge airports, a
//! long tail of taxi pickup cells with almost no trips. We allocate the
//! row budget across candidates proportionally to `1/(rank+1)^s` with a
//! largest-remainder rounding so totals are exact.

/// Zipf weights `1/(i+1)^s` for `i = 0..n` (unnormalized).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Splits `total` rows across `n` candidates with Zipf(`s`) proportions,
/// using largest-remainder rounding so the counts sum exactly to `total`.
pub fn zipf_sizes(n: usize, s: f64, total: u64) -> Vec<u64> {
    assert!(n > 0, "need at least one candidate");
    let w = zipf_weights(n, s);
    proportional_sizes(&w, total)
}

/// Hub-and-tail weights: the first `hubs` candidates share `hub_mass` of
/// the total weight equally; the remaining candidates share the rest with
/// Zipf(`s`) proportions.
///
/// Real candidate attributes look like this — a cluster of comparably
/// huge hubs (O'Hare-class airports, arterial roads) over a long Zipf
/// tail — and the shape matters for the evaluation: top-k matches are
/// planted on hubs, so their selectivities are high enough that stage-3
/// reconstruction needs only a small fraction of the data, while the tail
/// exercises stage-1 pruning.
pub fn hub_zipf_weights(n: usize, hubs: usize, hub_mass: f64, s: f64) -> Vec<f64> {
    assert!(hubs <= n, "more hubs than candidates");
    assert!(
        (0.0..1.0).contains(&hub_mass),
        "hub_mass must lie in [0, 1)"
    );
    let tail = n - hubs;
    let mut w = Vec::with_capacity(n);
    if hubs > 0 {
        // With no tail, the hubs absorb all the mass.
        let total_hub_mass = if tail == 0 { 1.0 } else { hub_mass };
        let per_hub = total_hub_mass / hubs as f64;
        w.extend(std::iter::repeat_n(per_hub, hubs));
    }
    if tail > 0 {
        let zipf = zipf_weights(tail, s);
        let zsum: f64 = zipf.iter().sum();
        let tail_mass = 1.0 - if hubs > 0 { hub_mass } else { 0.0 };
        w.extend(zipf.iter().map(|z| z / zsum * tail_mass));
    }
    w
}

/// Three-tier weights: `hubs` equal heavyweights, a Zipf(`s_mid`) middle
/// band, and a deep tail of equal near-zero weights sharing whatever mass
/// remains.
///
/// The middle band is sized so its lightest member still has selectivity
/// comfortably *above* the pruning threshold σ, and the deep tail sits far
/// *below* it — avoiding the band around σ where the stage-1
/// hypergeometric test has no power at laptop-scale sample sizes. The
/// paper's 10⁸-row datasets render that band harmless (any candidate's
/// absolute cost is negligible at that scale); a synthetic dataset at 10⁶–
/// 10⁷ rows must avoid it explicitly for the evaluation's *shape* to
/// reproduce. See DESIGN.md §2.
pub fn three_tier_weights(
    n: usize,
    hubs: usize,
    hub_mass: f64,
    mid: usize,
    mid_mass: f64,
    s_mid: f64,
) -> Vec<f64> {
    assert!(hubs + mid <= n, "tiers exceed candidate count");
    assert!(
        hub_mass >= 0.0 && mid_mass >= 0.0 && hub_mass + mid_mass <= 1.0,
        "tier masses must be non-negative and sum to at most 1"
    );
    let deep = n - hubs - mid;
    let deep_mass = 1.0 - hub_mass - mid_mass;
    let mut w = Vec::with_capacity(n);
    w.extend(std::iter::repeat_n(hub_mass / hubs.max(1) as f64, hubs));
    if mid > 0 {
        let z = zipf_weights(mid, s_mid);
        let zsum: f64 = z.iter().sum();
        w.extend(z.iter().map(|v| v / zsum * mid_mass));
    }
    if deep > 0 {
        w.extend(std::iter::repeat_n(deep_mass / deep as f64, deep));
    }
    w
}

/// Largest-remainder apportionment of `total` across arbitrary
/// non-negative weights.
pub fn proportional_sizes(weights: &[f64], total: u64) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "weights must have positive sum");
    let mut sizes: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut allocated: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let ideal = w / sum * total as f64;
        let floor = ideal.floor() as u64;
        sizes.push(floor);
        allocated += floor;
        remainders.push((ideal - floor as f64, i));
    }
    // Hand out the leftover rows to the largest remainders.
    let leftover = total - allocated;
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter().take(leftover as usize) {
        sizes[i] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_sum_exactly() {
        for &(n, s, total) in &[
            (10usize, 1.0, 1000u64),
            (347, 1.0, 123_457),
            (7641, 1.5, 999_999),
        ] {
            let sizes = zipf_sizes(n, s, total);
            assert_eq!(sizes.iter().sum::<u64>(), total, "n={n} s={s}");
            assert_eq!(sizes.len(), n);
        }
    }

    #[test]
    fn sizes_are_monotone_decreasing() {
        let sizes = zipf_sizes(100, 1.2, 100_000);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn head_dominates_with_high_skew() {
        let sizes = zipf_sizes(1000, 1.5, 1_000_000);
        // the top candidate should hold a substantial share
        assert!(sizes[0] > 300_000, "head = {}", sizes[0]);
    }

    #[test]
    fn taxi_like_tail_is_nearly_empty() {
        // The paper notes >3000 of 7641 taxi locations hold <10 tuples.
        // Our default TAXI skew must reproduce that property at a few
        // million rows.
        let sizes = zipf_sizes(7641, 1.5, 4_000_000);
        let tiny = sizes.iter().filter(|&&s| s < 10).count();
        assert!(tiny > 3000, "only {tiny} candidates under 10 tuples");
    }

    #[test]
    fn hub_weights_are_flat_then_zipf() {
        let w = hub_zipf_weights(100, 10, 0.6, 1.2);
        assert_eq!(w.len(), 100);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // hubs equal
        for i in 1..10 {
            assert!((w[i] - w[0]).abs() < 1e-15);
        }
        assert!((w[0] - 0.06).abs() < 1e-12);
        // tail decreasing
        for i in 11..99 {
            assert!(w[i] >= w[i + 1]);
        }
        // tail head may exceed a hub, tail tail must be far below
        assert!(w[99] < w[0]);
    }

    #[test]
    fn hub_weights_degenerate_cases() {
        // no hubs = pure zipf (normalized)
        let w = hub_zipf_weights(5, 0, 0.0, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // all hubs = uniform
        let w = hub_zipf_weights(4, 4, 0.999, 1.0);
        for x in &w {
            assert!((x - w[0]).abs() < 1e-15);
        }
    }

    #[test]
    fn three_tier_structure() {
        let w = three_tier_weights(347, 16, 0.62, 60, 0.36, 0.7);
        assert_eq!(w.len(), 347);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // hubs equal
        for i in 1..16 {
            assert!((w[i] - w[0]).abs() < 1e-15);
        }
        // mid decreasing, all above twice a σ = 0.0008 threshold
        for (i, pair) in w[16..=75].windows(2).enumerate() {
            assert!(pair[0] >= pair[1] - 1e-15, "mid {i}");
        }
        assert!(w[75] > 2.0 * 0.0008, "lightest mid = {}", w[75]);
        // deep tail well below σ
        for (i, &wi) in w.iter().enumerate().take(347).skip(76) {
            assert!(wi < 0.2 * 0.0008, "deep {i} = {wi}");
        }
    }

    #[test]
    fn proportional_handles_zero_weights() {
        let sizes = proportional_sizes(&[1.0, 0.0, 3.0], 8);
        assert_eq!(sizes.iter().sum::<u64>(), 8);
        assert_eq!(sizes[1], 0);
        assert_eq!(sizes[2], 6);
    }

    #[test]
    fn total_zero_gives_all_zero() {
        let sizes = zipf_sizes(5, 1.0, 0);
        assert_eq!(sizes, vec![0; 5]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_panic() {
        proportional_sizes(&[0.0, 0.0], 10);
    }
}
