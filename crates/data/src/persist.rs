//! Persisting synthetic datasets to the file-backed storage format.
//!
//! The paper's preprocessing pipeline is: generate (or load) a table,
//! apply the random-permutation step once, then store the permuted data
//! in block form so sequential scans sample uniformly. This module is
//! that pipeline for the Table 2 synthetic datasets: a dataset is
//! shuffled and written as a checksummed block file, and later query
//! sessions open it as a [`FileBackend`] without regenerating (or even
//! holding) the table in memory.

use std::path::Path;

use fastmatch_store::block::DEFAULT_TUPLES_PER_BLOCK;
use fastmatch_store::error::Result;
use fastmatch_store::file::{write_table, FileBackend};
use fastmatch_store::shuffle::shuffle_table;
use fastmatch_store::table::Table;

use crate::datasets::DatasetId;

/// Shuffles `table` with `shuffle_seed` and persists the permuted rows to
/// `path` in the block-file format. Returns the bytes written.
///
/// The shuffle happens here — not in the writer — so what is on disk is
/// already a uniform permutation and *any* sequential read order over the
/// file is a valid without-replacement sample.
pub fn persist_shuffled(
    table: &Table,
    tuples_per_block: usize,
    shuffle_seed: u64,
    path: &Path,
) -> Result<u64> {
    let shuffled = shuffle_table(table, shuffle_seed);
    write_table(path, &shuffled, tuples_per_block)
}

/// Opens a previously persisted dataset.
pub fn load(path: &Path) -> Result<FileBackend> {
    FileBackend::open(path)
}

impl DatasetId {
    /// Generates this dataset at the given scale, shuffles it, and
    /// persists it to `path` with the paper's default block size.
    /// Returns the bytes written.
    pub fn persist(&self, rows: usize, seed: u64, path: &Path) -> Result<u64> {
        let table = self.generate(rows, seed);
        // Derive the shuffle seed from the data seed so one seed fully
        // determines the on-disk artifact.
        persist_shuffled(
            &table,
            DEFAULT_TUPLES_PER_BLOCK,
            seed ^ shuffle_seed_marker(),
            path,
        )
    }
}

/// Seed-derivation constant for the persistence shuffle.
const fn shuffle_seed_marker() -> u64 {
    0x5f5f_8d3a_91c4_e27b
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_store::backend::StorageBackend;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fastmatch_persist_{tag}_{}.fmb",
            std::process::id()
        ))
    }

    #[test]
    fn persisted_dataset_preserves_the_value_multiset() {
        let rows = 12_000;
        let table = DatasetId::Flights.generate(rows, 5);
        let path = tmp_path("flights");
        DatasetId::Flights.persist(rows, 5, &path).unwrap();
        let be = load(&path).unwrap();
        assert_eq!(be.n_rows(), rows);
        assert_eq!(be.schema().len(), table.schema().len());
        for a in 0..table.schema().len() {
            assert_eq!(be.schema().attr(a).name, table.schema().attr(a).name);
            assert_eq!(be.cardinality(a), table.cardinality(a));
        }
        // The shuffle permutes rows but preserves every column's value
        // multiset; check the candidate attribute's counts block by block.
        let layout = be.layout();
        let mut counts = vec![0u64; be.cardinality(0) as usize];
        let mut buf = Vec::new();
        for b in 0..layout.num_blocks() {
            be.read_block_into(b, 0, &mut buf).unwrap();
            for &v in &buf {
                counts[v as usize] += 1;
            }
        }
        assert_eq!(counts, table.value_counts(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persisted_rows_are_shuffled_and_aligned() {
        // Shuffle must permute rows (not store generation order) while
        // keeping attributes of one row together.
        let rows = 4_000;
        let table = DatasetId::Taxi.generate(rows, 9);
        let path = tmp_path("taxi");
        persist_shuffled(&table, 64, 1234, &path).unwrap();
        let be = load(&path).unwrap();
        let layout = be.layout();
        // Reassemble the full (shuffled) z and x columns.
        let (mut z, mut x, mut buf) = (Vec::new(), Vec::new(), Vec::new());
        for b in 0..layout.num_blocks() {
            be.read_block_into(b, 0, &mut buf).unwrap();
            z.extend_from_slice(&buf);
            be.read_block_into(b, 1, &mut buf).unwrap();
            x.extend_from_slice(&buf);
        }
        assert_ne!(z, table.column(0), "rows must be permuted on disk");
        // Row alignment: the multiset of (z, x) pairs is preserved.
        let pair_counts = |zs: &[u32], xs: &[u32]| {
            let mut m = std::collections::HashMap::new();
            for (&a, &b) in zs.iter().zip(xs) {
                *m.entry((a, b)).or_insert(0u64) += 1;
            }
            m
        };
        assert_eq!(
            pair_counts(&z, &x),
            pair_counts(table.column(0), table.column(1))
        );
        std::fs::remove_file(&path).unwrap();
    }
}
