//! The nine-query evaluation workload (paper Table 3).
//!
//! | Query | Z (|V_Z|) | X (|V_X|) | k | target |
//! |---|---|---|---|---|
//! | FLIGHTS-q1 | Origin (347) | DepartureHour (24) | 10 | Chicago ORD |
//! | FLIGHTS-q2 | Origin (347) | DepartureHour (24) | 10 | Appleton ATW |
//! | FLIGHTS-q3 | Origin (347) | DayOfWeek (7) | 5 | `[.25, .125 ×6]` |
//! | FLIGHTS-q4 | Origin (347) | Dest (351) | 10 | closest to uniform |
//! | TAXI-q1 | Location (7641) | HourOfDay (24) | 10 | closest to uniform |
//! | TAXI-q2 | Location (7641) | MonthOfYear (12) | 10 | closest to uniform |
//! | POLICE-q1 | RoadID (210) | ContrabandFound (2) | 10 | closest to uniform |
//! | POLICE-q2 | RoadID (210) | OfficerRace (5) | 10 | closest to uniform |
//! | POLICE-q3 | Violation (2110) | DriverGender (2) | 5 | closest to uniform |

use fastmatch_store::table::Table;

use crate::datasets::{flights_q3_target, DatasetId, FLIGHTS_ATW, FLIGHTS_ORD};

/// How a query's visual target `q` is specified.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetSpec {
    /// The exact histogram of a specific candidate (e.g. Greece / ORD).
    Candidate(u32),
    /// An explicit shape supplied by the analyst (FLIGHTS-q3).
    Explicit(Vec<f64>),
    /// The candidate histogram closest (ℓ1) to uniform, among candidates
    /// with selectivity at least `min_selectivity` — the rule the paper
    /// uses for most queries.
    ClosestToUniform {
        /// Minimum selectivity for target eligibility.
        min_selectivity: f64,
    },
}

/// One evaluation query: a histogram-generating query template plus target.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Short identifier, e.g. `"flights-q1"`.
    pub id: &'static str,
    /// Which dataset the query runs on.
    pub dataset: DatasetId,
    /// Candidate attribute name (`Z`).
    pub z: &'static str,
    /// Grouping attribute name (`X`).
    pub x: &'static str,
    /// Number of matches to retrieve.
    pub k: usize,
    /// Target specification.
    pub target: TargetSpec,
}

impl QuerySpec {
    /// Index of the candidate attribute in the dataset's schema.
    pub fn z_attr(&self, table: &Table) -> usize {
        table
            .attr_index(self.z)
            .unwrap_or_else(|| panic!("{}: no attribute {}", self.id, self.z))
    }

    /// Index of the grouping attribute in the dataset's schema.
    pub fn x_attr(&self, table: &Table) -> usize {
        table
            .attr_index(self.x)
            .unwrap_or_else(|| panic!("{}: no attribute {}", self.id, self.x))
    }

    /// Resolves the visual target into a normalized vector over `|V_X|`
    /// groups, using exact counts where the spec references a candidate.
    /// Returns the target and, when it came from a candidate, that
    /// candidate's id.
    pub fn resolve_target(&self, table: &Table) -> (Vec<f64>, Option<u32>) {
        let z = self.z_attr(table);
        let x = self.x_attr(table);
        let vx = table.cardinality(x) as usize;
        match &self.target {
            TargetSpec::Explicit(shape) => {
                assert_eq!(shape.len(), vx, "{}: explicit target arity", self.id);
                let total: f64 = shape.iter().sum();
                ((shape.iter().map(|s| s / total).collect()), None)
            }
            TargetSpec::Candidate(c) => {
                let ct = table.crosstab(z, x);
                let row = &ct[*c as usize * vx..(*c as usize + 1) * vx];
                let total: u64 = row.iter().sum();
                assert!(total > 0, "{}: target candidate {c} is empty", self.id);
                (
                    row.iter().map(|&v| v as f64 / total as f64).collect(),
                    Some(*c),
                )
            }
            TargetSpec::ClosestToUniform { min_selectivity } => {
                let ct = table.crosstab(z, x);
                let n = table.n_rows() as f64;
                let uniform = 1.0 / vx as f64;
                let mut best: Option<(f64, u32)> = None;
                for c in 0..table.cardinality(z) as usize {
                    let row = &ct[c * vx..(c + 1) * vx];
                    let total: u64 = row.iter().sum();
                    if (total as f64) < min_selectivity * n || total == 0 {
                        continue;
                    }
                    let d: f64 = row
                        .iter()
                        .map(|&v| (v as f64 / total as f64 - uniform).abs())
                        .sum();
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, c as u32));
                    }
                }
                let (_, c) = best.expect("no candidate meets the selectivity threshold");
                let row = &ct[c as usize * vx..(c as usize + 1) * vx];
                let total: u64 = row.iter().sum();
                (
                    row.iter().map(|&v| v as f64 / total as f64).collect(),
                    Some(c),
                )
            }
        }
    }
}

/// The full Table 3 workload, in paper order.
pub fn all_queries() -> Vec<QuerySpec> {
    let sel = 0.0008; // the default σ, reused for target eligibility
    vec![
        QuerySpec {
            id: "flights-q1",
            dataset: DatasetId::Flights,
            z: "Origin",
            x: "DepartureHour",
            k: 10,
            target: TargetSpec::Candidate(FLIGHTS_ORD),
        },
        QuerySpec {
            id: "flights-q2",
            dataset: DatasetId::Flights,
            z: "Origin",
            x: "DepartureHour",
            k: 10,
            target: TargetSpec::Candidate(FLIGHTS_ATW),
        },
        QuerySpec {
            id: "flights-q3",
            dataset: DatasetId::Flights,
            z: "Origin",
            x: "DayOfWeek",
            k: 5,
            target: TargetSpec::Explicit(flights_q3_target()),
        },
        QuerySpec {
            id: "flights-q4",
            dataset: DatasetId::Flights,
            z: "Origin",
            x: "Dest",
            k: 10,
            target: TargetSpec::ClosestToUniform {
                min_selectivity: sel,
            },
        },
        QuerySpec {
            id: "taxi-q1",
            dataset: DatasetId::Taxi,
            z: "Location",
            x: "HourOfDay",
            k: 10,
            target: TargetSpec::ClosestToUniform {
                min_selectivity: sel,
            },
        },
        QuerySpec {
            id: "taxi-q2",
            dataset: DatasetId::Taxi,
            z: "Location",
            x: "MonthOfYear",
            k: 10,
            target: TargetSpec::ClosestToUniform {
                min_selectivity: sel,
            },
        },
        QuerySpec {
            id: "police-q1",
            dataset: DatasetId::Police,
            z: "RoadID",
            x: "ContrabandFound",
            k: 10,
            target: TargetSpec::ClosestToUniform {
                min_selectivity: sel,
            },
        },
        QuerySpec {
            id: "police-q2",
            dataset: DatasetId::Police,
            z: "RoadID",
            x: "OfficerRace",
            k: 10,
            target: TargetSpec::ClosestToUniform {
                min_selectivity: sel,
            },
        },
        QuerySpec {
            id: "police-q3",
            dataset: DatasetId::Police,
            z: "Violation",
            x: "DriverGender",
            k: 5,
            target: TargetSpec::ClosestToUniform {
                min_selectivity: sel,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_nine_queries_with_table3_ks() {
        let qs = all_queries();
        assert_eq!(qs.len(), 9);
        let ks: Vec<usize> = qs.iter().map(|q| q.k).collect();
        assert_eq!(ks, vec![10, 10, 5, 10, 10, 10, 10, 10, 5]);
    }

    #[test]
    fn attribute_names_resolve_on_their_datasets() {
        let tables = [
            (DatasetId::Flights, DatasetId::Flights.generate(20_000, 1)),
            (DatasetId::Taxi, DatasetId::Taxi.generate(20_000, 1)),
            (DatasetId::Police, DatasetId::Police.generate(20_000, 1)),
        ];
        for q in all_queries() {
            let table = &tables.iter().find(|(d, _)| *d == q.dataset).unwrap().1;
            let z = q.z_attr(table);
            let x = q.x_attr(table);
            assert_ne!(z, x, "{}", q.id);
        }
    }

    #[test]
    fn explicit_target_normalizes() {
        let t = DatasetId::Flights.generate(20_000, 2);
        let q3 = &all_queries()[2];
        let (target, cand) = q3.resolve_target(&t);
        assert_eq!(cand, None);
        assert_eq!(target.len(), 7);
        assert!((target.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((target[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn candidate_target_matches_crosstab() {
        let t = DatasetId::Flights.generate(50_000, 3);
        let q1 = &all_queries()[0];
        let (target, cand) = q1.resolve_target(&t);
        assert_eq!(cand, Some(FLIGHTS_ORD));
        assert_eq!(target.len(), 24);
        assert!((target.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn closest_to_uniform_prefers_planted_candidate() {
        let t = DatasetId::Taxi.generate(400_000, 4);
        let q = &all_queries()[4]; // taxi-q1
        let (target, cand) = q.resolve_target(&t);
        let c = cand.unwrap();
        // The target must be one of the near-uniform planted candidates
        // with decent selectivity (the 0.005-perturbed id 2 is expected).
        let uniform = 1.0 / 24.0;
        let d: f64 = target.iter().map(|&p| (p - uniform).abs()).sum();
        assert!(d < 0.2, "target candidate {c} is not near uniform: {d}");
    }

    #[test]
    fn targets_are_deterministic() {
        let t = DatasetId::Police.generate(100_000, 5);
        let q = &all_queries()[6];
        assert_eq!(q.resolve_target(&t), q.resolve_target(&t));
    }
}
