//! Streaming append generation: feeding the synthetic datasets into a
//! live table as a sequence of row batches instead of one frozen
//! [`Table`].
//!
//! The batch pipeline generates a table, shuffles it once, and persists
//! it; a *serving* system instead sees rows arrive over time. This
//! module is the bridge: [`AppendBatches`] cuts a (generated, already
//! shuffled) table into columnar batches shaped exactly like
//! [`fastmatch_store::live::LiveTable::append_batch`] wants them, and
//! [`DatasetId::stream`] builds the whole pipeline for one Table 2
//! dataset. Because generation already applies the random-permutation
//! preprocessing, the append order is a uniform permutation — so every
//! live-table snapshot prefix keeps the sampling guarantees the
//! executors rely on.

use fastmatch_store::table::Table;

use crate::datasets::DatasetId;

/// An iterator of columnar row batches over a table, in row order.
/// Each item is one `Vec<Vec<u32>>` — one code vector per attribute,
/// all of the same length (`batch_rows`, except a short final batch).
#[derive(Debug)]
pub struct AppendBatches {
    table: Table,
    batch_rows: usize,
    pos: usize,
}

impl AppendBatches {
    /// Streams `table` in batches of `batch_rows` rows.
    ///
    /// # Panics
    /// Panics if `batch_rows` is zero.
    pub fn new(table: Table, batch_rows: usize) -> Self {
        assert!(batch_rows > 0, "batch size must be positive");
        AppendBatches {
            table,
            batch_rows,
            pos: 0,
        }
    }

    /// Rows not yet yielded.
    pub fn remaining_rows(&self) -> usize {
        self.table.n_rows() - self.pos
    }

    /// The streamed table's schema.
    pub fn schema(&self) -> &fastmatch_store::schema::Schema {
        self.table.schema()
    }
}

impl Iterator for AppendBatches {
    type Item = Vec<Vec<u32>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.table.n_rows() {
            return None;
        }
        let end = (self.pos + self.batch_rows).min(self.table.n_rows());
        let batch = (0..self.table.schema().len())
            .map(|a| self.table.column(a)[self.pos..end].to_vec())
            .collect();
        self.pos = end;
        Some(batch)
    }
}

impl DatasetId {
    /// Generates this dataset at the given scale (already shuffled, as
    /// [`DatasetId::generate`] guarantees) and streams it as append
    /// batches — the ingestion feed for live-table experiments.
    pub fn stream(&self, rows: usize, seed: u64, batch_rows: usize) -> AppendBatches {
        AppendBatches::new(self.generate(rows, seed), batch_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmatch_store::live::{LiveTable, LiveTableConfig};

    #[test]
    fn batches_cover_the_table_in_order() {
        let table = DatasetId::Flights.generate(2_500, 7);
        let mut stream = AppendBatches::new(table.clone(), 400);
        assert_eq!(stream.remaining_rows(), 2_500);
        let mut row = 0usize;
        let mut batches = 0usize;
        for batch in &mut stream {
            assert_eq!(batch.len(), table.schema().len());
            let len = batch[0].len();
            assert!(batch.iter().all(|c| c.len() == len), "ragged batch");
            for (a, col) in batch.iter().enumerate() {
                assert_eq!(col.as_slice(), &table.column(a)[row..row + len]);
            }
            row += len;
            batches += 1;
        }
        assert_eq!(row, 2_500);
        assert_eq!(batches, 2_500usize.div_ceil(400));
        assert_eq!(stream.remaining_rows(), 0);
    }

    #[test]
    fn streaming_into_a_live_table_reproduces_the_table() {
        let rows = 1_800;
        let table = DatasetId::Taxi.generate(rows, 11);
        let cfg = LiveTableConfig::default()
            .with_tuples_per_block(64)
            .with_blocks_per_segment(4);
        let live = LiveTable::new(table.schema().clone(), cfg).unwrap();
        for batch in DatasetId::Taxi.stream(rows, 11, 250) {
            live.append_batch(&batch).unwrap();
        }
        let got = live.snapshot().to_table().unwrap();
        assert_eq!(got, table, "streamed rows must equal the generated table");
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        AppendBatches::new(DatasetId::Flights.generate(10, 1), 0);
    }
}
