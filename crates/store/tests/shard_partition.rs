//! Property tests for [`BlockReader::shard`]: the shards of a reader
//! must partition the block range *exactly* — disjoint, exhaustive,
//! contiguous, balanced — for arbitrary `(n_blocks, n_shards)`, and
//! per-shard [`IoStats`] must aggregate to precisely the unsharded run's
//! accounting. Every parallel executor and the multi-query service lean
//! on both properties.

use proptest::prelude::*;

use fastmatch_store::block::BlockLayout;
use fastmatch_store::io::{BlockReader, IoStats};
use fastmatch_store::schema::{AttrDef, Schema};
use fastmatch_store::table::Table;

/// A two-attribute table with exactly `n_blocks` blocks of up to `tpb`
/// tuples (the last block short when `short_tail` trims it).
fn table_with_blocks(n_blocks: usize, tpb: usize, short_tail: usize) -> (Table, BlockLayout) {
    let rows = if n_blocks == 0 {
        0
    } else {
        n_blocks * tpb - short_tail.min(tpb - 1)
    };
    let schema = Schema::new(vec![AttrDef::new("z", 5), AttrDef::new("x", 3)]);
    let z: Vec<u32> = (0..rows as u32).map(|r| r.wrapping_mul(7) % 5).collect();
    let x: Vec<u32> = (0..rows as u32).map(|r| r.wrapping_mul(11) % 3).collect();
    (Table::new(schema, vec![z, x]), BlockLayout::new(rows, tpb))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Disjoint, exhaustive, contiguous, sizes differing by at most one
    /// — for any block count (including 0) and any shard count
    /// (including more shards than blocks).
    #[test]
    fn shards_partition_block_range_exactly(
        n_blocks in 0usize..300,
        n_shards in 1usize..40,
        tpb in 1usize..20,
    ) {
        let (table, layout) = table_with_blocks(n_blocks, tpb, 0);
        prop_assert_eq!(layout.num_blocks(), n_blocks);
        let reader = BlockReader::new(&table, layout);
        let mut covered = vec![false; n_blocks];
        let mut prev_end = 0usize;
        let mut sizes = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let shard = reader.shard(i, n_shards);
            let range = shard.blocks();
            prop_assert_eq!(
                range.start, prev_end,
                "shard {}/{} is not contiguous with its predecessor", i, n_shards
            );
            prev_end = range.end;
            sizes.push(range.len());
            for b in range {
                prop_assert!(!covered[b], "block {} covered twice", b);
                covered[b] = true;
            }
        }
        prop_assert_eq!(prev_end, n_blocks, "shards must exhaust the range");
        prop_assert!(covered.into_iter().all(|c| c), "every block must be covered");
        let max = sizes.iter().max().copied().unwrap_or(0);
        let min = sizes.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "sizes {:?} differ by more than one", sizes);
    }

    /// Reading every block through its owning shard (and skipping an
    /// arbitrary subset) must aggregate, shard by shard, to exactly the
    /// unsharded reader's stats for the same read/skip pattern.
    #[test]
    fn summed_shard_stats_equal_unsharded_run(
        n_blocks in 1usize..120,
        n_shards in 1usize..12,
        tpb in 1usize..12,
        short_tail in 0usize..8,
        skip_mask in 0u64..u64::MAX,
    ) {
        let (table, layout) = table_with_blocks(n_blocks, tpb, short_tail);
        let reader = BlockReader::new(&table, layout);
        let skip = |b: usize| (skip_mask >> (b % 64)) & 1 == 1;

        // Unsharded reference.
        let mut whole = BlockReader::new(&table, layout);
        for b in 0..layout.num_blocks() {
            if skip(b) {
                whole.skip_block(b);
            } else {
                whole.block_slices(b, 0, 1);
            }
        }

        // Sharded: same pattern, each block through its owning shard.
        let mut total = IoStats::default();
        for i in 0..n_shards {
            let mut shard = reader.shard(i, n_shards);
            for b in shard.blocks() {
                if skip(b) {
                    shard.skip_block(b);
                } else {
                    shard.block_slices(b, 0, 1);
                }
            }
            total.merge(shard.stats());
        }
        prop_assert_eq!(total, whole.stats());
    }
}
