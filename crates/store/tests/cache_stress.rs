//! Cache-eviction stress test: many threads hammer one bounded
//! `FileBackend` block cache with overlapping block sets while the cache
//! is held far below the working set, so the clock-eviction path churns
//! constantly under concurrency — exactly what the multi-query service
//! does to it. Every read must come back checksum-verified and byte-for-
//! byte correct; the counters must show the cache actually collapsed.
//!
//! The cache bound is taken from `FASTMATCH_CACHE_BLOCKS` (default 24
//! pages) so CI can pin it; the access pattern is seeded and fixed.

use fastmatch_store::backend::{PageOrigin, StorageBackend};
use fastmatch_store::file::FileBackend;
use fastmatch_store::schema::{AttrDef, Schema};
use fastmatch_store::table::Table;
use fastmatch_store::tempfile::TempBlockFile;

fn cache_blocks() -> usize {
    std::env::var("FASTMATCH_CACHE_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
        .max(1)
}

/// Deterministic two-attribute fixture whose per-block contents are
/// recomputable from the row index alone (for independent verification).
fn fixture(rows: usize) -> Table {
    let schema = Schema::new(vec![AttrDef::new("z", 13), AttrDef::new("x", 7)]);
    let z: Vec<u32> = (0..rows as u32)
        .map(|r| r.wrapping_mul(2654435761) % 13)
        .collect();
    let x: Vec<u32> = (0..rows as u32)
        .map(|r| r.wrapping_mul(40503) % 7)
        .collect();
    Table::new(schema, vec![z, x])
}

#[test]
fn concurrent_eviction_churn_never_corrupts_reads() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 12;
    let rows = 48_000; // 600 blocks of 80 per attribute
    let tpb = 80usize;
    let table = fixture(rows);
    let scratch = TempBlockFile::new("cache_stress");
    let cache = cache_blocks();
    let backend = FileBackend::create(scratch.path(), &table, tpb)
        .unwrap()
        .with_cache_blocks(cache);
    let layout = backend.layout();
    let nb = layout.num_blocks();
    assert!(
        cache < nb,
        "the cache bound ({cache}) must sit below the working set ({nb} blocks/attr)"
    );

    std::thread::scope(|scope| {
        for w in 0..THREADS {
            let backend = &backend;
            let table = &table;
            scope.spawn(move || {
                let mut buf = Vec::new();
                // Each thread walks a different arithmetic progression,
                // overlapping every other thread's block set, alternating
                // attributes — maximal contention on the shared rings.
                let stride = 1 + w;
                for round in 0..ROUNDS {
                    let mut b = (w * 37 + round * 11) % nb;
                    for step in 0..nb {
                        let attr = (w + round + step) % 2;
                        let origin = backend.read_block_into(b, attr, &mut buf).unwrap();
                        assert!(
                            matches!(origin, PageOrigin::CacheHit | PageOrigin::CacheMiss),
                            "file pages must be attributed to the cache tier"
                        );
                        assert_eq!(
                            buf.as_slice(),
                            &table.column(attr)[layout.rows_of_block(b)],
                            "thread {w} round {round}: block {b} attr {attr} corrupted"
                        );
                        b = (b + stride) % nb;
                    }
                }
            });
        }
    });

    let cs = backend.cache_stats();
    let total_reads = (THREADS * ROUNDS * nb) as u64;
    assert_eq!(
        cs.hits + cs.misses,
        total_reads,
        "every read must be counted"
    );
    assert!(cs.misses > 0, "a cache below the working set must miss");
    assert!(cs.evictions > 0, "churn must evict");
    assert!(
        cs.pressure > 0,
        "overlapping working sets past capacity must revoke second chances"
    );
    assert!(
        cs.hit_rate() < 0.9,
        "a {cache}-page cache under a {nb}-block working set cannot mostly hit \
         (hit rate {:.3})",
        cs.hit_rate()
    );
}

/// Concurrent demand readers racing the readahead pool over a bounded
/// cache: prefetched-page attribution must sum exactly — per-reader
/// `pages_prefetch_hit` to the global `prefetched_hits`, per-reader
/// hit/miss to the global demand counters — and prefetch loads must
/// never leak into the demand hit/miss accounting.
#[test]
fn prefetch_attribution_sums_exactly_under_churn() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 6;
    let rows = 12_000;
    let tpb = 60usize; // 200 blocks per attribute
    let table = fixture(rows);
    let scratch = TempBlockFile::new("cache_stress_prefetch");
    let backend = FileBackend::create(scratch.path(), &table, tpb)
        .unwrap()
        .with_cache_blocks(64);
    let layout = backend.layout();
    let nb = layout.num_blocks();

    let stats: Vec<fastmatch_store::io::IoStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let backend = &backend;
                let table = &table;
                scope.spawn(move || {
                    let mut reader = fastmatch_store::io::BlockReader::over_backend(backend);
                    for round in 0..ROUNDS {
                        let mut b = (w * 29 + round * 17) % nb;
                        for _ in 0..nb {
                            // Hint a short run ahead of the read cursor,
                            // racing the other readers' demand fetches
                            // and the pool's own inserts for the same
                            // pages.
                            backend.prefetch(b..(b + 8).min(nb));
                            let (zs, xs) = reader.block_slices(b, 0, 1);
                            assert_eq!(zs, &table.column(0)[layout.rows_of_block(b)]);
                            assert_eq!(xs, &table.column(1)[layout.rows_of_block(b)]);
                            b = (b + 1 + w) % nb;
                        }
                    }
                    reader.stats()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total: fastmatch_store::io::IoStats = stats.into_iter().sum();
    let cs = backend.cache_stats();
    assert_eq!(
        total.pages_cache_hit + total.pages_cache_miss,
        2 * total.blocks_read,
        "each block-pair read is exactly two attributed pages"
    );
    assert_eq!(
        cs.hits + cs.misses,
        2 * total.blocks_read,
        "prefetch loads must not leak into demand hit/miss counters"
    );
    assert_eq!(cs.hits, total.pages_cache_hit, "hit attribution must sum");
    assert_eq!(
        cs.misses, total.pages_cache_miss,
        "miss attribution must sum"
    );
    assert_eq!(
        cs.prefetched_hits, total.pages_prefetch_hit,
        "prefetched-hit attribution must sum"
    );
    assert!(
        total.pages_prefetch_hit <= total.pages_cache_hit,
        "prefetched hits are a subset of cache hits"
    );
    assert!(
        cs.prefetched_hits <= cs.pages_prefetched,
        "a prefetched page can be first-hit at most once"
    );
    assert!(
        cs.pages_prefetched > 0,
        "with hints issued every block, the pool must have warmed pages"
    );
}

/// The same churn through `BlockReader`s (the engine's read path): the
/// per-reader `IoStats` attribution must account for every page exactly.
#[test]
fn reader_attribution_is_exact_under_churn() {
    let rows = 12_000;
    let tpb = 60usize;
    let table = fixture(rows);
    let scratch = TempBlockFile::new("cache_stress_reader");
    let backend = FileBackend::create(scratch.path(), &table, tpb)
        .unwrap()
        .with_cache_blocks(16);
    let nb = backend.layout().num_blocks();

    let stats: Vec<fastmatch_store::io::IoStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let backend = &backend;
                scope.spawn(move || {
                    let mut reader = fastmatch_store::io::BlockReader::over_backend(backend);
                    for round in 0..3 {
                        for b in 0..nb {
                            let bb = (b + w * 13 + round * 7) % nb;
                            reader.block_slices(bb, 0, 1);
                        }
                    }
                    reader.stats()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut hit = 0u64;
    let mut miss = 0u64;
    for s in &stats {
        assert_eq!(s.blocks_read, 3 * nb as u64);
        assert_eq!(
            s.pages_cache_hit + s.pages_cache_miss,
            2 * s.blocks_read,
            "each block-pair read is exactly two attributed pages"
        );
        hit += s.pages_cache_hit;
        miss += s.pages_cache_miss;
    }
    let cs = backend.cache_stats();
    assert_eq!(
        cs.hits, hit,
        "per-reader hits must sum to the global counter"
    );
    assert_eq!(
        cs.misses, miss,
        "per-reader misses must sum to the global counter"
    );
}
