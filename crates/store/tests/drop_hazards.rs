//! Teardown-order hazards: the store's three nontrivial `Drop` impls
//! (`FileBackend` → prefetch pool shutdown, `LiveTable` → sealer
//! hangup-and-join, `SnapshotPin` → gauge release) exercised at their
//! worst moments — mid-seal, with queued readahead hints, with clones
//! racing drops, and with the snapshot outliving its table.

use std::sync::atomic::{AtomicUsize, Ordering};

use fastmatch_store::backend::StorageBackend;
use fastmatch_store::file::FileBackend;
use fastmatch_store::live::wal::WAL_FILE;
use fastmatch_store::live::{LiveTable, LiveTableConfig};
use fastmatch_store::schema::{AttrDef, Schema};
use fastmatch_store::table::Table;
use fastmatch_store::tempfile::{TempBlockDir, TempBlockFile};

fn schema() -> Schema {
    Schema::new(vec![AttrDef::new("z", 6), AttrDef::new("x", 4)])
}

fn row_of(k: u64) -> [u32; 2] {
    [(k % 6) as u32, ((k * 7) % 4) as u32]
}

/// Dropping a live table while the background sealer still holds
/// queued jobs must hang up, join, and leave no half-written segment
/// file behind: every segment file must reopen clean (the WAL is not
/// a block file — recovery, not `FileBackend`, reads it), and the
/// directory as a whole must reopen with every appended row.
#[test]
fn live_table_drop_mid_seal_leaves_only_complete_segments() {
    for round in 0..8 {
        let dir = TempBlockDir::new(&format!("drop_mid_seal_{round}"));
        let path = dir.path().to_path_buf();
        let cfg = LiveTableConfig::default()
            .with_tuples_per_block(4)
            .with_blocks_per_segment(2)
            .with_segment_dir(&path)
            .with_background_sealer(true);
        {
            let lt = LiveTable::new(schema(), cfg.clone()).unwrap();
            // 10 full deltas: the sealer cannot possibly have drained
            // them all by the time we drop.
            for k in 0..80u64 {
                lt.append_row(&row_of(k)).unwrap();
            }
        } // <- drop while seal jobs are queued / in flight
        for entry in std::fs::read_dir(&path).unwrap() {
            let file = entry.unwrap().path();
            if file.file_name().is_some_and(|n| n == WAL_FILE) {
                continue;
            }
            let be = FileBackend::open(&file)
                .unwrap_or_else(|e| panic!("{} is torn after drop: {e}", file.display()));
            assert!(be.n_rows() > 0);
        }
        let reopened = LiveTable::open(schema(), cfg).unwrap();
        assert_eq!(reopened.n_rows(), 80, "clean drop must persist every row");
    }
}

/// Dropping a backend right after flooding it with readahead hints
/// must neither hang (lost shutdown wakeup) nor panic (worker racing
/// the teardown).
#[test]
fn file_backend_drop_with_queued_prefetch_hints() {
    let t = {
        let z: Vec<u32> = (0..4096).map(|r| r % 6).collect();
        let x: Vec<u32> = (0..4096).map(|r| (r * 7) % 4).collect();
        Table::new(schema(), vec![z, x])
    };
    for round in 0..8 {
        let guard = TempBlockFile::new(&format!("drop_prefetch_{round}"));
        let be = FileBackend::create(guard.path(), &t, 8)
            .unwrap()
            .with_prefetch_workers(2)
            .with_cache_blocks(16);
        let nb = be.layout().num_blocks();
        for start in (0..nb).step_by(7) {
            be.prefetch(start..nb.min(start + 64));
        }
        drop(be); // workers mid-hint, queue still full
    }
}

/// Snapshot clones share one pin; concurrent clone/drop churn from
/// many threads must release the gauge exactly once per snapshot —
/// back to zero, no double release (underflow would wrap the gauge to
/// huge values).
#[test]
fn snapshot_pin_balances_under_concurrent_clone_drop() {
    let lt = LiveTable::new(
        schema(),
        LiveTableConfig::default()
            .with_tuples_per_block(4)
            .with_blocks_per_segment(2),
    )
    .unwrap();
    for k in 0..20u64 {
        lt.append_row(&row_of(k)).unwrap();
    }
    let expected = lt.snapshot().pinned_bytes();
    assert_eq!(lt.stats().pinned_snapshot_bytes, 0);
    let churns = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let lt = &lt;
            let churns = &churns;
            scope.spawn(move || {
                for _ in 0..50 {
                    let snap = lt.snapshot();
                    let clones: Vec<_> = (0..3).map(|_| snap.clone()).collect();
                    assert_eq!(snap.pinned_bytes(), expected);
                    drop(snap);
                    drop(clones);
                    churns.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(churns.load(Ordering::Relaxed), 200);
    assert_eq!(
        lt.stats().pinned_snapshot_bytes,
        0,
        "every pin must be released exactly once"
    );
}

/// A snapshot must outlive its table: the pin's gauge is shared by
/// `Arc`, so the late drop writes to a gauge nobody reads — not to
/// freed memory, and without panicking.
#[test]
fn snapshot_outlives_dropped_table() {
    let snap = {
        let lt = LiveTable::new(
            schema(),
            LiveTableConfig::default()
                .with_tuples_per_block(4)
                .with_blocks_per_segment(2),
        )
        .unwrap();
        for k in 0..13u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        lt.snapshot()
    }; // table (and sealer) gone
    assert_eq!(snap.n_rows(), 13);
    let t = snap.to_table().unwrap();
    for r in 0..13u64 {
        assert_eq!(t.code(0, r as usize), row_of(r)[0]);
        assert_eq!(t.code(1, r as usize), row_of(r)[1]);
    }
    let clone = snap.clone();
    drop(snap);
    drop(clone); // final pin release hits the orphaned gauge
}
