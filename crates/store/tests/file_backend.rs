//! Property tests for the on-disk block-file format: writing a shuffled
//! table and reading it back through [`FileBackend`] must be
//! byte-identical for every z/x page under any geometry, any cache
//! bound, and any read order — and corruption anywhere in a page must
//! surface as an `Err`, never a panic or silently wrong codes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use fastmatch_store::backend::StorageBackend;
use fastmatch_store::error::StoreError;
use fastmatch_store::file::{write_table, FileBackend};
use fastmatch_store::io::BlockReader;
use fastmatch_store::schema::{AttrDef, Schema};
use fastmatch_store::shuffle::shuffle_table;
use fastmatch_store::table::Table;

static UNIQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fastmatch_prop_{tag}_{}_{}.fmb",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Deterministic pseudo-random table: two attributes (z, x) whose codes
/// are derived from the row index and a seed.
fn synth_table(rows: usize, card_z: u32, card_x: u32, seed: u64) -> Table {
    let schema = Schema::new(vec![AttrDef::new("z", card_z), AttrDef::new("x", card_x)]);
    let mix = |r: u64, salt: u64, card: u32| -> u32 {
        let h = (r ^ salt)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(17)
            .wrapping_mul(seed | 1);
        (h % card as u64) as u32
    };
    let z: Vec<u32> = (0..rows as u64).map(|r| mix(r, 0xaa, card_z)).collect();
    let x: Vec<u32> = (0..rows as u64).map(|r| mix(r, 0x55, card_x)).collect();
    Table::new(schema, vec![z, x])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write shuffled table → read every block of both attributes →
    /// byte-identical codes, through the trait path, the `BlockReader`
    /// path, and under a cache small enough to force eviction churn.
    #[test]
    fn roundtrip_is_byte_identical(
        rows in 1usize..600,
        tpb in 1usize..70,
        card_z in 2u32..50,
        card_x in 2u32..8,
        seed in 0u64..10_000,
        cache_blocks in 1usize..40,
    ) {
        let table = shuffle_table(&synth_table(rows, card_z, card_x, seed), seed ^ 0xf00d);
        let path = tmp_path("roundtrip");
        write_table(&path, &table, tpb).unwrap();
        let be = FileBackend::open(&path).unwrap().with_cache_blocks(cache_blocks);
        let layout = be.layout();
        prop_assert_eq!(layout.n_rows(), rows);
        prop_assert_eq!(layout.tuples_per_block(), tpb);

        // Trait path, forward order.
        let mut buf = Vec::new();
        for a in 0..2 {
            for b in 0..layout.num_blocks() {
                be.read_block_into(b, a, &mut buf).unwrap();
                prop_assert_eq!(buf.as_slice(), &table.column(a)[layout.rows_of_block(b)]);
            }
        }
        // Reader path, reverse order (cache-hostile), paired z/x slices.
        let mut reader = BlockReader::over_backend(&be);
        for b in (0..layout.num_blocks()).rev() {
            let (zs, xs) = reader.try_block_slices(b, 0, 1).unwrap();
            prop_assert_eq!(zs, &table.column(0)[layout.rows_of_block(b)]);
            prop_assert_eq!(xs, &table.column(1)[layout.rows_of_block(b)]);
        }
        prop_assert_eq!(reader.stats().blocks_read as usize, layout.num_blocks());
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping any single byte in the page region makes reading the
    /// affected page an `Err` (not a panic), while the header — and every
    /// other page — stays readable.
    #[test]
    fn corruption_anywhere_in_a_page_is_detected(
        rows in 8usize..300,
        tpb in 1usize..32,
        seed in 0u64..10_000,
        corrupt_frac in 0.0f64..1.0,
        flip_bit in 0u32..8,
    ) {
        let table = synth_table(rows, 16, 4, seed);
        let path = tmp_path("corrupt");
        write_table(&path, &table, tpb).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Header length: magic(8) + tpb(4) + rows(8) + n_attrs(4)
        //              + 2×(2 + 1 + 4) name entries + checksum(8).
        let header_len = 8 + 4 + 8 + 4 + 2 * (2 + 1 + 4) + 8;
        let page_region = bytes.len() - header_len;
        let target = header_len + ((corrupt_frac * page_region as f64) as usize).min(page_region - 1);
        bytes[target] ^= 1u8 << flip_bit;
        std::fs::write(&path, &bytes).unwrap();

        let be = FileBackend::open(&path).expect("page corruption must not break open");
        let layout = be.layout();
        let mut buf = Vec::new();
        let mut errors = 0usize;
        for a in 0..2 {
            for b in 0..layout.num_blocks() {
                match be.read_block_into(b, a, &mut buf) {
                    Ok(_) => prop_assert_eq!(
                        buf.as_slice(),
                        &table.column(a)[layout.rows_of_block(b)],
                        "undamaged page must read back exactly"
                    ),
                    Err(StoreError::Corrupt { .. }) => errors += 1,
                    Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
                }
            }
        }
        prop_assert_eq!(errors, 1, "exactly the one damaged page must fail");
        std::fs::remove_file(&path).unwrap();
    }
}
