//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fastmatch_store::binning::Binner;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::block::BlockLayout;
use fastmatch_store::density::{estimate_block_count, DensityMap};
use fastmatch_store::live::ZoneMap;
use fastmatch_store::predicate::Predicate;
use fastmatch_store::schema::{AttrDef, Schema};
use fastmatch_store::shuffle::shuffle_table;
use fastmatch_store::table::Table;

/// A random AND/OR/Eq tree of bounded depth. Leaves reference any of
/// `attrs` attributes with any code below `card`; connectives may be
/// empty (`And([])` ≡ true, `Or([])` ≡ false), covering the degenerate
/// corners of the conservativeness contract.
fn arb_predicate_tree(rng: &mut StdRng, attrs: usize, card: u32, depth: usize) -> Predicate {
    if depth == 0 || rng.gen_range(0..3u32) == 0 {
        return Predicate::eq(rng.gen_range(0..attrs), rng.gen_range(0..card));
    }
    let arity = rng.gen_range(0..4usize);
    let parts = (0..arity)
        .map(|_| arb_predicate_tree(rng, attrs, card, depth - 1))
        .collect();
    if rng.gen_range(0..2u32) == 0 {
        Predicate::And(parts)
    } else {
        Predicate::Or(parts)
    }
}

fn arb_table(max_rows: usize, card: u32) -> impl Strategy<Value = Table> {
    prop::collection::vec(0..card, 1..max_rows).prop_map(move |col| {
        let schema = Schema::new(vec![AttrDef::new("a", card)]);
        Table::new(schema, vec![col])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shuffling preserves the multiset of values exactly.
    #[test]
    fn shuffle_preserves_multiset(table in arb_table(400, 12), seed in 0u64..100) {
        let shuffled = shuffle_table(&table, seed);
        prop_assert_eq!(shuffled.n_rows(), table.n_rows());
        let mut a = table.column(0).to_vec();
        let mut b = shuffled.column(0).to_vec();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// A bitmap bit is set iff the block actually contains the value.
    #[test]
    fn bitmap_matches_block_contents(
        table in arb_table(300, 9),
        bs in 1usize..40,
    ) {
        let layout = BlockLayout::new(table.n_rows(), bs);
        let idx = BitmapIndex::build(&table, 0, &layout);
        for b in 0..layout.num_blocks() {
            for v in 0..9u32 {
                let truth = layout.rows_of_block(b).any(|r| table.code(0, r) == v);
                prop_assert_eq!(idx.block_has(v, b), truth, "v={} b={}", v, b);
            }
        }
    }

    /// Lookahead marking agrees with per-block probing at every offset.
    #[test]
    fn lookahead_equals_probing(
        table in arb_table(300, 6),
        bs in 1usize..20,
        start_frac in 0.0f64..1.0,
        window in 1usize..30,
    ) {
        let layout = BlockLayout::new(table.n_rows(), bs);
        let idx = BitmapIndex::build(&table, 0, &layout);
        let start = ((layout.num_blocks() as f64) * start_frac) as usize % layout.num_blocks().max(1);
        let mut marks = vec![false; window];
        for v in 0..6u32 {
            idx.mark_active_range(v, start, &mut marks);
        }
        for (i, &m) in marks.iter().enumerate() {
            let b = start + i;
            if b < layout.num_blocks() {
                let any = (0..6u32).any(|v| idx.block_has(v, b));
                prop_assert_eq!(m, any);
            } else {
                prop_assert!(!m);
            }
        }
    }

    /// Block-level predicate tests never produce false negatives, and
    /// density-map estimates always upper-bound true counts.
    #[test]
    fn predicate_and_density_are_conservative(
        a_col in prop::collection::vec(0u32..4, 30..200),
        b_col_seed in 0u32..4,
        bs in 2usize..25,
        v1 in 0u32..4,
        v2 in 0u32..4,
    ) {
        let n = a_col.len();
        let b_col: Vec<u32> = a_col.iter().map(|&a| (a + b_col_seed) % 4).collect();
        let schema = Schema::new(vec![AttrDef::new("a", 4), AttrDef::new("b", 4)]);
        let table = Table::new(schema, vec![a_col, b_col]);
        let layout = BlockLayout::new(n, bs);
        let idx_a = BitmapIndex::build(&table, 0, &layout);
        let idx_b = BitmapIndex::build(&table, 1, &layout);
        let d_a = DensityMap::build(&table, 0, &layout);
        let d_b = DensityMap::build(&table, 1, &layout);

        let preds = vec![
            Predicate::eq(0, v1),
            Predicate::And(vec![Predicate::eq(0, v1), Predicate::eq(1, v2)]),
            Predicate::Or(vec![Predicate::eq(0, v1), Predicate::eq(1, v2)]),
        ];
        let indexes = [(0usize, &idx_a), (1usize, &idx_b)];
        let maps = [&d_a, &d_b];
        for p in &preds {
            for b in 0..layout.num_blocks() {
                let truth = layout
                    .rows_of_block(b)
                    .filter(|&r| p.matches_row(&table, r))
                    .count() as u32;
                if truth > 0 {
                    prop_assert!(p.may_match_block(&indexes, b), "{p:?} block {b}");
                }
                let est = estimate_block_count(p, &maps, &layout, b);
                prop_assert!(est >= truth, "{p:?} block {b}: est {est} < {truth}");
            }
        }
    }

    /// Arbitrary AND/OR/Eq predicate *trees* (not just the three fixed
    /// shapes above) over multi-attribute tables with only *partial*
    /// index coverage: the bitmap-based block test must never reject a
    /// block that contains a row-level match. This is the contract the
    /// AnyActive ladder and every block-skipping policy stand on — a
    /// false negative here silently drops matching tuples.
    #[test]
    fn random_predicate_trees_are_block_conservative(
        cols in prop::collection::vec(prop::collection::vec(0u32..5, 40..160), 3usize),
        bs in 1usize..30,
        tree_seed in 0u64..1_000_000,
        indexed_mask in 1usize..8, // nonempty subset of the 3 attributes
    ) {
        let n = cols[0].len();
        // Ragged columns can come out of independent vec strategies;
        // truncate to the shortest so the table is well-formed.
        let shortest = cols.iter().map(|c| c.len()).min().unwrap().min(n);
        let cols: Vec<Vec<u32>> = cols.iter().map(|c| c[..shortest].to_vec()).collect();
        let schema = Schema::new(vec![
            AttrDef::new("a", 5),
            AttrDef::new("b", 5),
            AttrDef::new("c", 5),
        ]);
        let table = Table::new(schema, cols);
        let layout = BlockLayout::new(shortest, bs);
        let built: Vec<BitmapIndex> = (0..3)
            .map(|a| BitmapIndex::build(&table, a, &layout))
            .collect();
        let indexes: Vec<(usize, &BitmapIndex)> = (0..3)
            .filter(|a| indexed_mask >> a & 1 == 1)
            .map(|a| (a, &built[a]))
            .collect();

        let mut rng = StdRng::seed_from_u64(tree_seed);
        for _ in 0..8 {
            let p = arb_predicate_tree(&mut rng, 3, 5, 3);
            for b in 0..layout.num_blocks() {
                let truth = layout.rows_of_block(b).any(|r| p.matches_row(&table, r));
                if truth {
                    prop_assert!(
                        p.may_match_block(&indexes, b),
                        "false negative: {p:?} block {b} (indexed {indexed_mask:#05b})"
                    );
                }
                // With *full* index coverage, Eq leaves are exact; whole
                // trees may still over-approximate (AND of bits set by
                // different rows), which is allowed — only the false
                // negative direction is a bug.
            }
        }
    }

    /// Zone maps are sound summaries and conservative filters: every
    /// block's min/max/count bounds exactly cover its rows, point and
    /// range probes never reject a block that holds a match, and
    /// predicate trees tested through zones
    /// ([`Predicate::may_match_block_zones`]) never produce a false
    /// negative — the same contract as the bitmap block test, which is
    /// what lets block-skipping policies consult whichever summary an
    /// attribute has.
    #[test]
    fn zone_maps_are_sound_and_block_conservative(
        cols in prop::collection::vec(prop::collection::vec(0u32..7, 40..160), 2usize),
        bs in 1usize..30,
        tree_seed in 0u64..1_000_000,
        lo in 0u32..7,
        span in 0u32..7,
    ) {
        let shortest = cols.iter().map(|c| c.len()).min().unwrap();
        let cols: Vec<Vec<u32>> = cols.iter().map(|c| c[..shortest].to_vec()).collect();
        let schema = Schema::new(vec![AttrDef::new("a", 7), AttrDef::new("b", 7)]);
        let table = Table::new(schema, cols);
        let layout = BlockLayout::new(shortest, bs);
        let built: Vec<ZoneMap> = (0..2).map(|a| ZoneMap::build(&table, a, &layout)).collect();

        // Soundness: bounds tight enough to cover every row, counts exact.
        let hi = lo.saturating_add(span).min(6);
        for (attr, zm) in built.iter().enumerate() {
            prop_assert_eq!(zm.num_blocks(), layout.num_blocks());
            for b in 0..layout.num_blocks() {
                let rows = layout.rows_of_block(b);
                prop_assert_eq!(zm.count(b) as usize, rows.len());
                let (zmin, zmax) = zm.min_max(b).expect("no block is empty");
                let mut any_in_range = false;
                for r in rows {
                    let v = table.code(attr, r);
                    prop_assert!(zmin <= v && v <= zmax, "attr {} block {}", attr, b);
                    // Point and range probes may not reject present values.
                    prop_assert!(zm.may_contain(b, v));
                    any_in_range |= lo <= v && v <= hi;
                }
                if any_in_range {
                    prop_assert!(zm.may_overlap(b, lo, hi), "attr {} block {}", attr, b);
                }
            }
        }

        // Conservativeness for whole predicate trees through the zone path.
        let zones: Vec<(usize, &ZoneMap)> = built.iter().enumerate().collect();
        let mut rng = StdRng::seed_from_u64(tree_seed);
        for _ in 0..8 {
            let p = arb_predicate_tree(&mut rng, 2, 7, 3);
            for b in 0..layout.num_blocks() {
                let truth = layout.rows_of_block(b).any(|r| p.matches_row(&table, r));
                if truth {
                    prop_assert!(
                        p.may_match_block_zones(&zones, b),
                        "zone false negative: {:?} block {}", p, b
                    );
                }
            }
        }
    }

    /// Binning: every value maps into range, and the bin's interval
    /// contains the value (up to clamping).
    #[test]
    fn binner_code_in_range(
        lo in -100.0f64..0.0,
        width in 1.0f64..50.0,
        bins in 1u32..64,
        v in -200.0f64..200.0,
    ) {
        let binner = Binner::equal_width(lo, lo + width, bins);
        let code = binner.code(v);
        prop_assert!(code < bins);
        if v > lo && v < lo + width {
            let (blo, bhi) = binner.bin_range(code);
            prop_assert!(v >= blo - 1e-9 && v <= bhi + 1e-9);
        }
    }

    /// Block layout partitions rows exactly.
    #[test]
    fn layout_partitions_rows(n in 1usize..2000, bs in 1usize..100) {
        let layout = BlockLayout::new(n, bs);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for b in 0..layout.num_blocks() {
            let r = layout.rows_of_block(b);
            prop_assert_eq!(r.start, prev_end);
            prev_end = r.end;
            covered += r.len();
        }
        prop_assert_eq!(covered, n);
        prop_assert_eq!(prev_end, n);
    }
}
