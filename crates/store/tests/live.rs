//! Live-table integration: snapshot isolation under concurrent append
//! load — the soak test CI runs with fixed seeds — plus the crash side
//! of the storage lifecycle: injected torn segments and corrupt WAL
//! tails must recover every durable row with exact accounting, and
//! compaction must be invisible to readers (blockwise bit-identical
//! snapshots) while bounding the segment-file count.
//!
//! The unit tests inside `live/` cover the mechanics (segment rolls,
//! sealing, bitmap freezing). These tests attack the *concurrency
//! contract*: a snapshot taken at any instant, with appenders running
//! full speed and segments sealing underneath, is a consistent prefix
//! of the append order — per-appender subsequences intact, bitmaps
//! exact, sealed and in-memory representations indistinguishable.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use fastmatch_store::backend::StorageBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::live::wal::WAL_FILE;
use fastmatch_store::live::{LiveTable, LiveTableConfig};
use fastmatch_store::schema::{AttrDef, Schema};
use fastmatch_store::table::Table;
use fastmatch_store::tempfile::TempBlockDir;

/// Appender `w`'s `i`-th row: `z` carries the appender id, `x` the
/// position in a per-appender deterministic payload sequence — so any
/// snapshot can be checked for *per-appender prefix consistency*: the
/// `x` codes of appender `w`'s rows, in snapshot order, must equal the
/// first `n_w` elements of `w`'s payload sequence.
fn payload(w: u32, i: u64) -> u32 {
    ((i as u32).wrapping_mul(5).wrapping_add(w * 3)) % 16
}

fn soak_schema() -> Schema {
    Schema::new(vec![AttrDef::new("who", 8), AttrDef::new("seq", 16)])
}

/// Runs the soak under one configuration and returns the table for
/// configuration-specific follow-up assertions (the soak itself checks
/// that the final snapshot saw every appended row).
fn run_soak(cfg: LiveTableConfig, appenders: u32, rows_each: u64, batch: usize) -> LiveTable {
    let live = LiveTable::new(soak_schema(), cfg).unwrap();
    let stop_snapshots = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let appender_handles: Vec<_> = (0..appenders)
            .map(|w| {
                let live = &live;
                scope.spawn(move || {
                    let mut i = 0u64;
                    while i < rows_each {
                        let take = (batch as u64).min(rows_each - i) as usize;
                        let who = vec![w; take];
                        let seq: Vec<u32> = (0..take as u64).map(|j| payload(w, i + j)).collect();
                        live.append_batch(&[who, seq]).unwrap();
                        i += take as u64;
                    }
                })
            })
            .collect();
        // Snapshot queriers racing the appenders: every snapshot must be
        // per-appender prefix-consistent and bitmap-exact.
        for q in 0..2 {
            let live = &live;
            let stop = &stop_snapshots;
            scope.spawn(move || {
                let mut checked = 0usize;
                while !stop.load(Ordering::Relaxed) || checked == 0 {
                    let snap = live.snapshot();
                    let t = snap.to_table().unwrap();
                    let mut next: Vec<u64> = vec![0; 8];
                    for r in 0..t.n_rows() {
                        let w = t.code(0, r);
                        let x = t.code(1, r);
                        let i = next[w as usize];
                        assert_eq!(
                            x,
                            payload(w, i),
                            "querier {q}: appender {w} row {i} out of order at snapshot row {r}"
                        );
                        next[w as usize] += 1;
                    }
                    // Batches are atomic: each appender's visible count is
                    // a whole number of batches, except its final partial.
                    for (w, &n) in next.iter().enumerate() {
                        assert!(
                            n % batch as u64 == 0 || n == rows_each,
                            "querier {q}: appender {w} shows {n} rows (batch {batch})"
                        );
                    }
                    // Bitmap exactness on a sampled block.
                    let layout = snap.layout();
                    if layout.num_blocks() > 0 {
                        let b = checked % layout.num_blocks();
                        for v in 0..8u32 {
                            let truth = layout.rows_of_block(b).any(|r| t.code(0, r) == v);
                            assert_eq!(snap.bitmap(0).block_has(v, b), truth, "v {v} block {b}");
                        }
                    }
                    checked += 1;
                }
                assert!(checked > 0);
            });
        }
        // Keep the queriers snapshotting for the appenders' whole
        // lifetime, then release them.
        for h in appender_handles {
            h.join().unwrap();
        }
        stop_snapshots.store(true, Ordering::Relaxed);
    });
    let final_snap = live.snapshot();
    let t = final_snap.to_table().unwrap();
    assert_eq!(t.n_rows() as u64, appenders as u64 * rows_each);
    // Final multiset: every appender contributed its full sequence.
    let mut counts = [0u64; 8];
    for r in 0..t.n_rows() {
        counts[t.code(0, r) as usize] += 1;
    }
    for (w, &count) in counts.iter().enumerate().take(appenders as usize) {
        assert_eq!(count, rows_each, "appender {w} lost rows");
    }
    live
}

#[test]
fn soak_memory_only() {
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(32)
        .with_blocks_per_segment(4);
    run_soak(cfg, 4, 3_000, 37);
}

#[test]
fn soak_with_background_sealing() {
    let dir = TempBlockDir::new("live_soak_bg");
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(32)
        .with_blocks_per_segment(4)
        .with_segment_dir(dir.path());
    let live = run_soak(cfg, 4, 3_000, 41);
    assert_eq!(live.n_rows(), 12_000);
}

#[test]
fn soak_with_inline_sealing() {
    let dir = TempBlockDir::new("live_soak_inline");
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(32)
        .with_blocks_per_segment(4)
        .with_segment_dir(dir.path())
        .with_background_sealer(false);
    run_soak(cfg, 3, 2_000, 29);
}

/// Sealed (file) and in-memory segments must be indistinguishable to a
/// reader: force both representations for the *same* data and compare
/// blockwise, bitmaps included.
#[test]
fn sealed_and_memory_views_are_bit_identical() {
    let dir = TempBlockDir::new("live_views");
    let mk = |persist: bool| {
        let mut cfg = LiveTableConfig::default()
            .with_tuples_per_block(16)
            .with_blocks_per_segment(3)
            .with_background_sealer(false);
        if persist {
            cfg = cfg.with_segment_dir(dir.path());
        }
        let live = LiveTable::new(soak_schema(), cfg).unwrap();
        for i in 0..500u64 {
            live.append_row(&[(i % 8) as u32, payload((i % 8) as u32, i)])
                .unwrap();
        }
        live
    };
    let persisted = mk(true);
    let memory = mk(false);
    assert!(persisted.stats().persisted_segments > 0);
    assert_eq!(memory.stats().persisted_segments, 0);
    let (sp, sm) = (persisted.snapshot(), memory.snapshot());
    assert_eq!(sp.n_rows(), sm.n_rows());
    let layout = sp.layout();
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for attr in 0..2 {
        for blk in 0..layout.num_blocks() {
            sp.read_block_into(blk, attr, &mut a).unwrap();
            sm.read_block_into(blk, attr, &mut b).unwrap();
            assert_eq!(a, b, "attr {attr} block {blk}");
        }
    }
}

/// Compaction racing the soak: appenders, snapshot queriers, the
/// background sealer *and* the background compactor all run at once.
/// Every snapshot the queriers take is prefix-checked row by row
/// through the block-read path (`to_table` goes through
/// `read_block_into` for file-backed entries), so a compaction swap
/// that tore, reordered or duplicated rows would fail the soak — this
/// is the blockwise-equivalence half of the compaction contract. The
/// second half is the bound: after the dust settles, one explicit
/// drive caps the file count at the fan-in.
#[test]
fn soak_with_compaction_is_invisible_to_readers_and_bounds_files() {
    let dir = TempBlockDir::new("live_soak_compact");
    let fan_in = 3;
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(32)
        .with_blocks_per_segment(4)
        .with_coalesce_segments(1) // many small files → compaction pressure
        .with_segment_dir(dir.path())
        .with_compaction(fan_in);
    let live = run_soak(cfg.clone(), 3, 2_000, 43);
    // The sealer runs behind the appenders; let it drain so compaction
    // has the full file set to work with.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while live.stats().persisted_segments < live.stats().frozen_segments {
        assert!(
            std::time::Instant::now() < deadline,
            "sealer never drained: {:?}",
            live.stats()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    live.compact_now();
    let stats = live.stats();
    assert!(stats.compactions > 0, "compactor never ran: {stats:?}");
    assert!(
        stats.compacted_segments >= 2 * stats.compactions,
        "every compaction merges at least two members: {stats:?}"
    );
    assert!(
        stats.snapshots > 0,
        "the soak's readers pin snapshots: {stats:?}"
    );
    assert_eq!(stats.compact_errors, 0, "{stats:?}");
    assert_eq!(stats.seal_errors, 0, "{stats:?}");
    assert!(
        live.num_segment_files() <= fan_in,
        "{} files exceed fan-in {fan_in}",
        live.num_segment_files()
    );
    // Compaction + clean shutdown + recovery round-trips the exact
    // table: the reopened state is bit-identical, rows in append order.
    let reference = live.snapshot().to_table().unwrap();
    drop(live);
    let reopened = LiveTable::open(soak_schema(), cfg).unwrap();
    let recovered = reopened.snapshot().to_table().unwrap();
    assert_eq!(recovered.n_rows(), reference.n_rows());
    for attr in 0..2 {
        assert_eq!(
            recovered.column(attr),
            reference.column(attr),
            "attr {attr}"
        );
    }
}

// ---------------------------------------------------------------- crashes

/// Copies every regular file of `src` into the fresh directory `dst` —
/// the "frozen at the crash instant" disk image the recovery tests
/// mutilate, so each injection starts from the same durable state.
fn clone_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Asserts a recovered table is exactly the first `n_rows` of the
/// pre-crash reference — same order, every column.
fn assert_is_prefix(recovered: &Table, reference: &Table) {
    let n = recovered.n_rows();
    assert!(n <= reference.n_rows(), "recovered {n} rows > reference");
    for attr in 0..reference.schema().len() {
        assert_eq!(
            recovered.column(attr),
            &reference.column(attr)[..n],
            "attr {attr} diverges from the durable prefix"
        );
    }
}

/// Seeds a small fully-durable table (inline sealer, per-record WAL
/// fsync) on disk, returns its config and the pre-crash reference.
fn seed_crash_table(dir: &Path, rows: u64) -> (LiveTableConfig, Table) {
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(4)
        .with_blocks_per_segment(2)
        .with_coalesce_segments(1)
        .with_background_sealer(false)
        .with_wal_sync_every(1)
        .with_segment_dir(dir);
    let live = LiveTable::new(soak_schema(), cfg.clone()).unwrap();
    for i in 0..rows {
        let w = (i % 8) as u32;
        live.append_row(&[w, payload(w, i)]).unwrap();
    }
    let reference = live.snapshot().to_table().unwrap();
    assert!(
        live.stats().wal_syncs >= rows,
        "per-record fsync cadence: every append syncs the WAL"
    );
    drop(live);
    (cfg, reference)
}

/// Crash injection, part 1: the *last segment file* is torn mid-page
/// (rename completed but the sectors behind it were lost — or plain
/// bit rot). The WAL's lag-one rotation keeps the newest sealed run's
/// rows in the log, so recovery must still produce **every** appended
/// row: the torn file is detected by checksum, counted, skipped, and
/// its rows replayed from the WAL.
#[test]
fn recovery_survives_a_torn_last_segment_with_nothing_lost() {
    let seed = TempBlockDir::new("crash_torn_seed");
    // 27 rows → segments 0..=2 on disk (24 rows), 3 in the memtable;
    // WAL base lags one run (16), covering rows 16..27.
    let (cfg, reference) = seed_crash_table(seed.path(), 27);
    let crash = TempBlockDir::new("crash_torn_img");
    clone_dir(seed.path(), crash.path());
    // Tear the newest segment mid-page.
    let last = crash.path().join("segment-000002.fmb");
    let len = std::fs::metadata(&last).unwrap().len();
    std::fs::File::options()
        .write(true)
        .open(&last)
        .unwrap()
        .set_len(len / 2)
        .unwrap();

    let cfg = cfg.with_segment_dir(crash.path());
    let live = LiveTable::open(soak_schema(), cfg).unwrap();
    let stats = live.stats();
    assert_eq!(stats.recovered_torn_segments, 1, "{stats:?}");
    assert_eq!(stats.wal_errors, 0, "{stats:?}");
    assert_eq!(stats.recovered_rows, 11, "rows 16..27 replay from the WAL");
    assert_eq!(live.n_rows(), 27, "the torn segment cost nothing");
    let recovered = live.snapshot().to_table().unwrap();
    assert_eq!(recovered.n_rows(), reference.n_rows());
    assert_is_prefix(&recovered, &reference);
}

/// Crash injection, part 2: the WAL itself is damaged — truncated
/// mid-record and, separately, a flipped byte in a record body. Both
/// must be *detected* (checksum, counted in `wal_errors`), recovery
/// must keep every sealed row plus the intact WAL prefix, and the
/// result must be an exact prefix of the pre-crash table. Never a
/// panic, never a torn or invented row.
#[test]
fn recovery_survives_a_corrupt_wal_tail_with_exact_accounting() {
    let seed = TempBlockDir::new("crash_wal_seed");
    let (cfg, reference) = seed_crash_table(seed.path(), 27);

    // Truncation: chop 5 bytes off the end — the final one-row record
    // is torn, everything before it replays.
    let trunc = TempBlockDir::new("crash_wal_trunc");
    clone_dir(seed.path(), trunc.path());
    let wal = trunc.path().join(WAL_FILE);
    let len = std::fs::metadata(&wal).unwrap().len();
    std::fs::File::options()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len - 5)
        .unwrap();
    let live = LiveTable::open(soak_schema(), cfg.clone().with_segment_dir(trunc.path())).unwrap();
    let stats = live.stats();
    assert!(
        stats.wal_errors >= 1,
        "torn tail must be counted: {stats:?}"
    );
    assert_eq!(stats.recovered_torn_segments, 0, "{stats:?}");
    assert_eq!(live.n_rows(), 26, "only the torn final record is lost");
    assert_is_prefix(&live.snapshot().to_table().unwrap(), &reference);
    drop(live);

    // Corruption: flip one byte deep in the record region. The damaged
    // record fails its checksum; replay keeps the prefix before it and
    // counts the fault. Sealed rows (0..24) are untouched either way.
    let flip = TempBlockDir::new("crash_wal_flip");
    clone_dir(seed.path(), flip.path());
    let wal = flip.path().join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    let at = bytes.len() * 3 / 4;
    bytes[at] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();
    let live = LiveTable::open(soak_schema(), cfg.with_segment_dir(flip.path())).unwrap();
    let stats = live.stats();
    assert!(
        stats.wal_errors >= 1,
        "corruption must be counted: {stats:?}"
    );
    let n = live.n_rows();
    assert!(
        (24..27).contains(&n),
        "sealed rows survive, the corrupt tail does not: {n}"
    );
    assert_is_prefix(&live.snapshot().to_table().unwrap(), &reference);
}

/// Crash injection, part 3 — the exhaustive sweep: a WAL-only table
/// (nothing sealed) truncated at **every possible byte length**. For
/// each cut the recovered table must be exactly the longest run of
/// whole records that fits — never a panic, never a row beyond the
/// durable prefix, never a lost row before it, and a counted fault
/// whenever the cut lands mid-record.
#[test]
fn wal_truncated_at_every_byte_recovers_the_exact_durable_prefix() {
    let seed = TempBlockDir::new("crash_sweep_seed");
    let rows = 20u64;
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(8)
        .with_blocks_per_segment(64) // 512 rows/segment: nothing seals
        .with_background_sealer(false)
        .with_wal_sync_every(1)
        .with_segment_dir(seed.path());
    let live = LiveTable::new(soak_schema(), cfg.clone()).unwrap();
    for i in 0..rows {
        let w = (i % 8) as u32;
        live.append_row(&[w, payload(w, i)]).unwrap();
    }
    let reference = live.snapshot().to_table().unwrap();
    drop(live);
    let image = std::fs::read(seed.path().join(WAL_FILE)).unwrap();

    // WAL geometry (checked, so the sweep's expectations stay honest):
    // 28-byte header, then per append_row one record of
    // 4 (n_rows) + 2 attrs × 4 (codes) + 8 (checksum) = 20 bytes.
    const HEADER: usize = 28;
    const RECORD: usize = 20;
    assert_eq!(image.len(), HEADER + rows as usize * RECORD);

    let dir = TempBlockDir::new("crash_sweep_img");
    for cut in 0..=image.len() {
        let img = dir.path().join(format!("cut-{cut:03}"));
        std::fs::create_dir_all(&img).unwrap();
        std::fs::write(img.join(WAL_FILE), &image[..cut]).unwrap();
        let live = LiveTable::open(soak_schema(), cfg.clone().with_segment_dir(&img)).unwrap();
        let want = if cut < HEADER {
            0
        } else {
            ((cut - HEADER) / RECORD).min(rows as usize)
        };
        assert_eq!(live.n_rows() as usize, want, "cut at byte {cut}");
        let whole = cut >= HEADER && (cut - HEADER).is_multiple_of(RECORD);
        assert_eq!(
            live.stats().wal_errors >= 1,
            !whole,
            "cut at byte {cut}: a partial header or record is a counted fault"
        );
        assert_is_prefix(&live.snapshot().to_table().unwrap(), &reference);
    }
}

/// A snapshot's frozen bitmap equals a scan-built index over its
/// materialization — under ongoing appends, for every attribute.
#[test]
fn snapshot_bitmaps_are_exact_under_load() {
    let live = LiveTable::new(
        soak_schema(),
        LiveTableConfig::default()
            .with_tuples_per_block(16)
            .with_blocks_per_segment(2),
    )
    .unwrap();
    std::thread::scope(|scope| {
        let handle = {
            let live = &live;
            scope.spawn(move || {
                for i in 0..4_000u64 {
                    let w = (i % 8) as u32;
                    live.append_row(&[w, payload(w, i)]).unwrap();
                }
            })
        };
        for _ in 0..10 {
            let snap = live.snapshot();
            let t = snap.to_table().unwrap();
            let layout = snap.layout();
            for attr in 0..2 {
                let want = BitmapIndex::build(&t, attr, &layout);
                let got = snap.bitmap(attr);
                for v in 0..got.num_values() as u32 {
                    for blk in 0..layout.num_blocks() {
                        assert_eq!(got.block_has(v, blk), want.block_has(v, blk));
                    }
                }
            }
        }
        handle.join().unwrap();
    });
}
