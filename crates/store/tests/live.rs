//! Live-table integration: snapshot isolation under concurrent append
//! load — the soak test CI runs with fixed seeds.
//!
//! The unit tests inside `live/` cover the mechanics (segment rolls,
//! sealing, bitmap freezing). These tests attack the *concurrency
//! contract*: a snapshot taken at any instant, with appenders running
//! full speed and segments sealing underneath, is a consistent prefix
//! of the append order — per-appender subsequences intact, bitmaps
//! exact, sealed and in-memory representations indistinguishable.

use std::sync::atomic::{AtomicBool, Ordering};

use fastmatch_store::backend::StorageBackend;
use fastmatch_store::bitmap::BitmapIndex;
use fastmatch_store::live::{LiveTable, LiveTableConfig};
use fastmatch_store::schema::{AttrDef, Schema};
use fastmatch_store::tempfile::TempBlockDir;

/// Appender `w`'s `i`-th row: `z` carries the appender id, `x` the
/// position in a per-appender deterministic payload sequence — so any
/// snapshot can be checked for *per-appender prefix consistency*: the
/// `x` codes of appender `w`'s rows, in snapshot order, must equal the
/// first `n_w` elements of `w`'s payload sequence.
fn payload(w: u32, i: u64) -> u32 {
    ((i as u32).wrapping_mul(5).wrapping_add(w * 3)) % 16
}

fn soak_schema() -> Schema {
    Schema::new(vec![AttrDef::new("who", 8), AttrDef::new("seq", 16)])
}

/// Runs the soak under one configuration and returns the total rows the
/// final snapshot saw.
fn run_soak(cfg: LiveTableConfig, appenders: u32, rows_each: u64, batch: usize) -> usize {
    let live = LiveTable::new(soak_schema(), cfg).unwrap();
    let stop_snapshots = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let appender_handles: Vec<_> = (0..appenders)
            .map(|w| {
                let live = &live;
                scope.spawn(move || {
                    let mut i = 0u64;
                    while i < rows_each {
                        let take = (batch as u64).min(rows_each - i) as usize;
                        let who = vec![w; take];
                        let seq: Vec<u32> = (0..take as u64).map(|j| payload(w, i + j)).collect();
                        live.append_batch(&[who, seq]).unwrap();
                        i += take as u64;
                    }
                })
            })
            .collect();
        // Snapshot queriers racing the appenders: every snapshot must be
        // per-appender prefix-consistent and bitmap-exact.
        for q in 0..2 {
            let live = &live;
            let stop = &stop_snapshots;
            scope.spawn(move || {
                let mut checked = 0usize;
                while !stop.load(Ordering::Relaxed) || checked == 0 {
                    let snap = live.snapshot();
                    let t = snap.to_table().unwrap();
                    let mut next: Vec<u64> = vec![0; 8];
                    for r in 0..t.n_rows() {
                        let w = t.code(0, r);
                        let x = t.code(1, r);
                        let i = next[w as usize];
                        assert_eq!(
                            x,
                            payload(w, i),
                            "querier {q}: appender {w} row {i} out of order at snapshot row {r}"
                        );
                        next[w as usize] += 1;
                    }
                    // Batches are atomic: each appender's visible count is
                    // a whole number of batches, except its final partial.
                    for (w, &n) in next.iter().enumerate() {
                        assert!(
                            n % batch as u64 == 0 || n == rows_each,
                            "querier {q}: appender {w} shows {n} rows (batch {batch})"
                        );
                    }
                    // Bitmap exactness on a sampled block.
                    let layout = snap.layout();
                    if layout.num_blocks() > 0 {
                        let b = checked % layout.num_blocks();
                        for v in 0..8u32 {
                            let truth = layout.rows_of_block(b).any(|r| t.code(0, r) == v);
                            assert_eq!(snap.bitmap(0).block_has(v, b), truth, "v {v} block {b}");
                        }
                    }
                    checked += 1;
                }
                assert!(checked > 0);
            });
        }
        // Keep the queriers snapshotting for the appenders' whole
        // lifetime, then release them.
        for h in appender_handles {
            h.join().unwrap();
        }
        stop_snapshots.store(true, Ordering::Relaxed);
    });
    let final_snap = live.snapshot();
    let t = final_snap.to_table().unwrap();
    assert_eq!(t.n_rows() as u64, appenders as u64 * rows_each);
    // Final multiset: every appender contributed its full sequence.
    let mut counts = [0u64; 8];
    for r in 0..t.n_rows() {
        counts[t.code(0, r) as usize] += 1;
    }
    for (w, &count) in counts.iter().enumerate().take(appenders as usize) {
        assert_eq!(count, rows_each, "appender {w} lost rows");
    }
    t.n_rows()
}

#[test]
fn soak_memory_only() {
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(32)
        .with_blocks_per_segment(4);
    run_soak(cfg, 4, 3_000, 37);
}

#[test]
fn soak_with_background_sealing() {
    let dir = TempBlockDir::new("live_soak_bg");
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(32)
        .with_blocks_per_segment(4)
        .with_segment_dir(dir.path());
    let live_rows = run_soak(cfg, 4, 3_000, 41);
    assert_eq!(live_rows, 12_000);
}

#[test]
fn soak_with_inline_sealing() {
    let dir = TempBlockDir::new("live_soak_inline");
    let cfg = LiveTableConfig::default()
        .with_tuples_per_block(32)
        .with_blocks_per_segment(4)
        .with_segment_dir(dir.path())
        .with_background_sealer(false);
    run_soak(cfg, 3, 2_000, 29);
}

/// Sealed (file) and in-memory segments must be indistinguishable to a
/// reader: force both representations for the *same* data and compare
/// blockwise, bitmaps included.
#[test]
fn sealed_and_memory_views_are_bit_identical() {
    let dir = TempBlockDir::new("live_views");
    let mk = |persist: bool| {
        let mut cfg = LiveTableConfig::default()
            .with_tuples_per_block(16)
            .with_blocks_per_segment(3)
            .with_background_sealer(false);
        if persist {
            cfg = cfg.with_segment_dir(dir.path());
        }
        let live = LiveTable::new(soak_schema(), cfg).unwrap();
        for i in 0..500u64 {
            live.append_row(&[(i % 8) as u32, payload((i % 8) as u32, i)])
                .unwrap();
        }
        live
    };
    let persisted = mk(true);
    let memory = mk(false);
    assert!(persisted.stats().persisted_segments > 0);
    assert_eq!(memory.stats().persisted_segments, 0);
    let (sp, sm) = (persisted.snapshot(), memory.snapshot());
    assert_eq!(sp.n_rows(), sm.n_rows());
    let layout = sp.layout();
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for attr in 0..2 {
        for blk in 0..layout.num_blocks() {
            sp.read_block_into(blk, attr, &mut a).unwrap();
            sm.read_block_into(blk, attr, &mut b).unwrap();
            assert_eq!(a, b, "attr {attr} block {blk}");
        }
    }
}

/// A snapshot's frozen bitmap equals a scan-built index over its
/// materialization — under ongoing appends, for every attribute.
#[test]
fn snapshot_bitmaps_are_exact_under_load() {
    let live = LiveTable::new(
        soak_schema(),
        LiveTableConfig::default()
            .with_tuples_per_block(16)
            .with_blocks_per_segment(2),
    )
    .unwrap();
    std::thread::scope(|scope| {
        let handle = {
            let live = &live;
            scope.spawn(move || {
                for i in 0..4_000u64 {
                    let w = (i % 8) as u32;
                    live.append_row(&[w, payload(w, i)]).unwrap();
                }
            })
        };
        for _ in 0..10 {
            let snap = live.snapshot();
            let t = snap.to_table().unwrap();
            let layout = snap.layout();
            for attr in 0..2 {
                let want = BitmapIndex::build(&t, attr, &layout);
                let got = snap.bitmap(attr);
                for v in 0..got.num_values() as u32 {
                    for blk in 0..layout.num_blocks() {
                        assert_eq!(got.block_has(v, blk), want.block_has(v, blk));
                    }
                }
            }
        }
        handle.join().unwrap();
    });
}
