//! Column-oriented tables of dictionary-encoded values.

use crate::schema::{AttrDef, Schema};

/// A column-oriented table: one `Vec<u32>` of dictionary codes per
/// attribute, all of identical length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<u32>>,
    n_rows: usize,
}

impl Table {
    /// Builds a table from a schema and matching columns.
    ///
    /// # Panics
    /// Panics if column counts/lengths disagree with the schema, or if any
    /// code exceeds its attribute's cardinality.
    pub fn new(schema: Schema, columns: Vec<Vec<u32>>) -> Self {
        assert_eq!(
            schema.len(),
            columns.len(),
            "one column per schema attribute"
        );
        let n_rows = columns.first().map_or(0, |c| c.len());
        for (i, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), n_rows, "column {i} length mismatch");
            let card = schema.attr(i).cardinality;
            debug_assert!(
                col.iter().all(|&v| v < card),
                "column {i} contains codes beyond cardinality {card}"
            );
        }
        Table {
            schema,
            columns,
            n_rows,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows `N`.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Full code column for an attribute.
    pub fn column(&self, attr: usize) -> &[u32] {
        &self.columns[attr]
    }

    /// The code of attribute `attr` in row `row`.
    #[inline]
    pub fn code(&self, attr: usize, row: usize) -> u32 {
        self.columns[attr][row]
    }

    /// Cardinality of an attribute (shorthand).
    pub fn cardinality(&self, attr: usize) -> u32 {
        self.schema.attr(attr).cardinality
    }

    /// Looks up an attribute index by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// Approximate in-memory size in bytes (codes only).
    pub fn size_bytes(&self) -> usize {
        self.columns.len() * self.n_rows * std::mem::size_of::<u32>()
    }

    /// Exact per-value counts of one attribute — ground truth for tests
    /// and experiment validation.
    pub fn value_counts(&self, attr: usize) -> Vec<u64> {
        let mut counts = vec![0u64; self.cardinality(attr) as usize];
        for &v in &self.columns[attr] {
            counts[v as usize] += 1;
        }
        counts
    }

    /// Exact `(z, x)` cross-tabulation: `result[z * |V_X| + x]` — the true
    /// candidate histograms for a histogram-generating query template.
    pub fn crosstab(&self, z_attr: usize, x_attr: usize) -> Vec<u64> {
        let vz = self.cardinality(z_attr) as usize;
        let vx = self.cardinality(x_attr) as usize;
        let mut counts = vec![0u64; vz * vx];
        let zc = &self.columns[z_attr];
        let xc = &self.columns[x_attr];
        for (&z, &x) in zc.iter().zip(xc) {
            counts[z as usize * vx + x as usize] += 1;
        }
        counts
    }
}

/// Builder used by data generators: accumulates row-major tuples, then
/// freezes into a columnar [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Vec<u32>>,
}

impl TableBuilder {
    /// Starts building a table with the given attributes, reserving space
    /// for `capacity` rows.
    pub fn new(attrs: Vec<AttrDef>, capacity: usize) -> Self {
        let n = attrs.len();
        TableBuilder {
            schema: Schema::new(attrs),
            columns: (0..n).map(|_| Vec::with_capacity(capacity)).collect(),
        }
    }

    /// Appends one row of codes.
    ///
    /// # Panics
    /// Panics if the row length does not match the schema.
    pub fn push_row(&mut self, row: &[u32]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Number of rows accumulated so far.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Freezes into a [`Table`].
    pub fn finish(self) -> Table {
        Table::new(self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 3), AttrDef::new("x", 2)]);
        Table::new(schema, vec![vec![0, 1, 2, 1, 0], vec![1, 0, 1, 1, 0]])
    }

    #[test]
    fn construction_and_access() {
        let t = small();
        assert_eq!(t.n_rows(), 5);
        assert_eq!(t.code(0, 2), 2);
        assert_eq!(t.code(1, 2), 1);
        assert_eq!(t.column(1), &[1, 0, 1, 1, 0]);
        assert_eq!(t.cardinality(0), 3);
        assert_eq!(t.attr_index("x"), Some(1));
        assert_eq!(t.size_bytes(), 2 * 5 * 4);
    }

    #[test]
    fn value_counts_are_exact() {
        let t = small();
        assert_eq!(t.value_counts(0), vec![2, 2, 1]);
        assert_eq!(t.value_counts(1), vec![2, 3]);
    }

    #[test]
    fn crosstab_matches_manual_count() {
        let t = small();
        // rows: (0,1) (1,0) (2,1) (1,1) (0,0)
        let ct = t.crosstab(0, 1);
        assert_eq!(ct, vec![1, 1, 1, 1, 0, 1]);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = TableBuilder::new(vec![AttrDef::new("a", 4), AttrDef::new("b", 4)], 2);
        b.push_row(&[1, 2]);
        b.push_row(&[3, 0]);
        assert_eq!(b.n_rows(), 2);
        let t = b.finish();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.code(0, 1), 3);
        assert_eq!(t.code(1, 0), 2);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(Schema::new(vec![AttrDef::new("a", 1)]), vec![vec![]]);
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.value_counts(0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_columns_panic() {
        let schema = Schema::new(vec![AttrDef::new("a", 2), AttrDef::new("b", 2)]);
        Table::new(schema, vec![vec![0, 1], vec![0]]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn builder_arity_mismatch_panics() {
        let mut b = TableBuilder::new(vec![AttrDef::new("a", 2)], 1);
        b.push_row(&[0, 1]);
    }
}
