//! The file-backed columnar storage backend.
//!
//! A block file persists one (pre-shuffled) [`Table`] in the same
//! geometry the engine reads it: fixed-size blocks of dictionary codes,
//! laid out attribute-major so one block's page for one attribute is a
//! single contiguous read. Every page carries a position-keyed checksum,
//! so bit rot *and* misplaced pages surface as [`StoreError::Corrupt`]
//! rather than silently wrong histograms.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic "FMCOL001"  tuples_per_block:u32  n_rows:u64  n_attrs:u32
//! │ per attr: name_len:u16  name:utf8  cardinality:u32
//! │ header_checksum:u64 (FNV-1a over all preceding header bytes) │
//! ├──────────────────────────────────────────────────────────────┤
//! │ attr 0, block 0: codes (block_len·4 bytes LE)  checksum:u64  │
//! │ attr 0, block 1: …                                           │
//! │ …                                                            │
//! │ attr 1, block 0: …                                           │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Page offsets are computable in O(1):
//! every block before the last is full, so attribute `a`'s region has a
//! fixed stride and block `b`'s page sits at
//! `header_len + a·stride + b·(tuples_per_block·4 + 8)`.
//!
//! [`FileBackend`] serves reads through a bounded, sharded **block
//! cache** with clock (second-chance) eviction: each cache shard is an
//! independently locked clock ring, so the engine's per-shard workers
//! rarely contend on the same lock, and the cache's footprint is capped
//! at a fixed number of pages regardless of table size. Cache misses
//! read the file with *positioned* reads (`pread` on Unix, no lock) and
//! with the cache-shard lock released, so concurrent workers overlap
//! their disk fetches instead of serializing on a file mutex.
//!
//! On top of the cache sits a **demand-aware readahead pipeline**:
//! [`StorageBackend::prefetch`] hints (contiguous runs of blocks that a
//! block-selection policy has marked for reading) land in a bounded
//! queue, and a small pool of background workers drains it, warming the
//! cache with every attribute page of the hinted blocks before the
//! demand reads arrive — block *selection* runs ahead of block *I/O*
//! (paper §4, Figure 6), so storage latency hides behind compute.
//! Hints are advisory: a full queue drops the oldest hint (the reader
//! has most likely caught up with it), a stale hint at worst warms pages
//! nobody reads, and a prefetch hitting a corrupt page stays silent —
//! the demand read rediscovers and reports the error. Prefetch
//! attribution ([`CacheStats::pages_prefetched`],
//! [`CacheStats::prefetched_hits`], and per-reader
//! [`crate::io::IoStats::pages_prefetch_hit`]) makes the overlap
//! measurable.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

#[cfg(not(unix))]
use std::io::{Seek, SeekFrom};

use crate::backend::{PageOrigin, StorageBackend};
use crate::block::BlockLayout;
use crate::error::{Result, StoreError};
use crate::schema::{AttrDef, Schema};
use crate::table::Table;

/// File magic: identifies format and version.
const MAGIC: &[u8; 8] = b"FMCOL001";

/// Bytes of the per-page checksum.
const PAGE_CHECKSUM_BYTES: u64 = 8;

/// Default block-cache capacity, in pages (≈ 2.4 MB at the paper's
/// 600-byte pages).
pub const DEFAULT_CACHE_BLOCKS: usize = 4096;

/// Number of independently locked cache shards.
const CACHE_SHARDS: usize = 8;

/// Default readahead worker count (see
/// [`FileBackend::with_prefetch_workers`]).
pub const DEFAULT_PREFETCH_WORKERS: usize = 2;

/// Bound on queued (not yet drained) prefetch hints. Beyond it the
/// *oldest* hint is dropped: hints describe where readers are heading,
/// so under backlog the oldest one is the most likely to have been
/// overtaken by its own demand reads already.
const PREFETCH_QUEUE_HINTS: usize = 64;

// ---------------------------------------------------------------- checksum

/// FNV-1a (64-bit) over `bytes`, starting from a caller-chosen basis so
/// page checksums are position-keyed: a page copied verbatim to another
/// slot still fails verification. Shared with the live table's WAL
/// (`crate::live::wal`), which keys record checksums by sequence number
/// under the same discipline.
pub(crate) fn fnv1a64(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The standard FNV-1a offset basis.
pub(crate) const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Position key mixed into a page's checksum basis.
fn page_basis(attr: usize, block: usize) -> u64 {
    FNV_BASIS ^ ((attr as u64) << 32) ^ block as u64
}

// ---------------------------------------------------------------- writer

/// Persists `table` to `path` in the block-file format, under a layout
/// with the given block size. Returns the number of bytes written.
///
/// The table should already be shuffled ([`crate::shuffle`]): the
/// sampling guarantees of everything reading the file assume on-disk
/// order is a uniform permutation.
///
/// # Panics
/// Panics if `tuples_per_block` is zero (as [`BlockLayout::new`] does).
pub fn write_table(path: &Path, table: &Table, tuples_per_block: usize) -> Result<u64> {
    write_table_impl(path, table, tuples_per_block, false)
}

/// Crash-safe variant of [`write_table`]: the table is written to a
/// sibling temp file (`<name>.tmp`), fsynced, atomically renamed to
/// `path`, and the parent directory is fsynced so the rename itself is
/// durable. A reader of `path` therefore observes either the previous
/// file (or nothing) or the complete new one — never a torn write. Any
/// failure removes the temp file and leaves `path` untouched.
///
/// This is the path the live table's sealer and compactor persist
/// through; [`write_table`] remains for offline pipelines where the
/// caller owns durability.
///
/// # Panics
/// Panics if `tuples_per_block` is zero (as [`BlockLayout::new`] does).
pub fn write_table_atomic(path: &Path, table: &Table, tuples_per_block: usize) -> Result<u64> {
    let tmp = tmp_sibling(path);
    let written = match write_table_impl(&tmp, table, tuples_per_block, true) {
        Ok(w) => w,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
    };
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Some(dir) = path.parent() {
        fsync_dir(dir)?;
    }
    Ok(written)
}

/// The sibling temp-file name atomic writers stage through: the final
/// name with `.tmp` appended (same directory, so the rename cannot
/// cross filesystems). Recovery scans ignore and clean up `*.tmp`.
pub(crate) fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Fsyncs a directory so a just-performed rename/unlink in it is
/// durable. On non-Unix platforms directories cannot be opened for
/// syncing; the rename's own atomicity is the best guarantee there.
pub(crate) fn fsync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

fn write_table_impl(
    path: &Path,
    table: &Table,
    tuples_per_block: usize,
    sync: bool,
) -> Result<u64> {
    let layout = BlockLayout::new(table.n_rows(), tuples_per_block);
    let mut header = Vec::new();
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&(tuples_per_block as u32).to_le_bytes());
    header.extend_from_slice(&(table.n_rows() as u64).to_le_bytes());
    header.extend_from_slice(&(table.schema().len() as u32).to_le_bytes());
    for attr in table.schema().attrs() {
        let name = attr.name.as_bytes();
        assert!(name.len() <= u16::MAX as usize, "attribute name too long");
        header.extend_from_slice(&(name.len() as u16).to_le_bytes());
        header.extend_from_slice(name);
        header.extend_from_slice(&attr.cardinality.to_le_bytes());
    }
    header.extend_from_slice(&fnv1a64(FNV_BASIS, &header).to_le_bytes());

    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(&header)?;
    let mut written = header.len() as u64;
    let mut page = Vec::with_capacity(tuples_per_block * 4 + 8);
    for a in 0..table.schema().len() {
        let col = table.column(a);
        for b in 0..layout.num_blocks() {
            page.clear();
            for &code in &col[layout.rows_of_block(b)] {
                page.extend_from_slice(&code.to_le_bytes());
            }
            let ck = fnv1a64(page_basis(a, b), &page);
            page.extend_from_slice(&ck.to_le_bytes());
            out.write_all(&page)?;
            written += page.len() as u64;
        }
    }
    out.flush()?;
    if sync {
        out.get_ref().sync_all()?;
    }
    Ok(written)
}

// ---------------------------------------------------------------- cache

/// Block-cache observability counters (monotone since backend creation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Cache-pressure events: second chances revoked by the clock hand
    /// (a *referenced* — i.e. recently re-used — page had its reference
    /// bit stripped to make eviction possible). Zero while the working
    /// set fits; grows with every sweep once concurrent readers push the
    /// combined working set past capacity, which makes it the leading
    /// indicator of hit-rate collapse under multi-query load.
    pub pressure: u64,
    /// Pages the readahead workers loaded into the cache on a
    /// [`StorageBackend::prefetch`] hint. Prefetch loads are **not**
    /// misses: [`Self::hits`]` + `[`Self::misses`] keeps counting exactly
    /// the demand reads, so hit-rate semantics are unchanged by turning
    /// prefetching on.
    pub pages_prefetched: u64,
    /// Demand hits served by a prefetched page that had not been
    /// demand-hit before (each prefetched page counts at most once).
    /// `prefetched_hits / pages_prefetched` is the useful-prefetch ratio;
    /// the gap to `pages_prefetched` bounds wasted readahead.
    pub prefetched_hits: u64,
}

impl CacheStats {
    /// Global hit rate (1.0 before any request).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The per-field difference `self − earlier` (both monotone), for
    /// windowed measurements over a long-lived backend.
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            pressure: self.pressure - earlier.pressure,
            pages_prefetched: self.pages_prefetched - earlier.pages_prefetched,
            prefetched_hits: self.prefetched_hits - earlier.prefetched_hits,
        }
    }
}

#[derive(Debug)]
struct Slot {
    key: u64,
    page: Vec<u32>,
    referenced: bool,
    /// Loaded by a readahead worker and not demand-hit yet; cleared on
    /// the first demand hit so each prefetched page is attributed as
    /// useful at most once.
    prefetched: bool,
}

#[derive(Debug)]
struct CacheShard {
    slots: Vec<Slot>,
    map: HashMap<u64, usize>,
    hand: usize,
    cap: usize,
}

/// What one [`CacheShard::insert`] did, for the shared counters.
#[derive(Debug, Clone, Copy, Default)]
struct InsertOutcome {
    /// A page was evicted to make room.
    evicted: bool,
    /// Reference bits the clock hand had to strip before finding a
    /// victim (cache-pressure events).
    second_chances_revoked: u64,
}

impl CacheShard {
    /// Inserts a page, clock-evicting if the shard is full.
    fn insert(&mut self, key: u64, page: Vec<u32>, prefetched: bool) -> InsertOutcome {
        let mut outcome = InsertOutcome::default();
        if self.cap == 0 {
            return outcome;
        }
        if self.slots.len() < self.cap {
            self.map.insert(key, self.slots.len());
            self.slots.push(Slot {
                key,
                page,
                referenced: true,
                prefetched,
            });
            return outcome;
        }
        loop {
            let victim = &mut self.slots[self.hand];
            if victim.referenced {
                victim.referenced = false;
                outcome.second_chances_revoked += 1;
                self.hand = (self.hand + 1) % self.cap;
            } else {
                self.map.remove(&victim.key);
                self.map.insert(key, self.hand);
                *victim = Slot {
                    key,
                    page,
                    referenced: true,
                    prefetched,
                };
                self.hand = (self.hand + 1) % self.cap;
                outcome.evicted = true;
                return outcome;
            }
        }
    }
}

/// Bounded page cache: `CACHE_SHARDS` independently locked clock rings.
#[derive(Debug)]
struct BlockCache {
    shards: Vec<Mutex<CacheShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    pressure: AtomicU64,
    prefetched: AtomicU64,
    prefetched_hits: AtomicU64,
}

impl BlockCache {
    fn new(capacity_blocks: usize) -> Self {
        let cache = BlockCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(CacheShard {
                        slots: Vec::new(),
                        map: HashMap::new(),
                        hand: 0,
                        cap: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pressure: AtomicU64::new(0),
            prefetched: AtomicU64::new(0),
            prefetched_hits: AtomicU64::new(0),
        };
        cache.reset(capacity_blocks);
        cache
    }

    /// Drops every cached page, rebounds the cache at `capacity_blocks`
    /// and zeroes the counters. Interior mutability (`&self`) because the
    /// cache is shared with readahead workers through an `Arc`.
    fn reset(&self, capacity_blocks: usize) {
        assert!(capacity_blocks > 0, "cache capacity must be positive");
        // Distribute the capacity exactly: the first `capacity % SHARDS`
        // shards get one extra slot, so the total bound is the requested
        // one (a shard with capacity 0 simply never caches).
        for (i, shard) in self.shards.iter().enumerate() {
            let cap =
                capacity_blocks / CACHE_SHARDS + usize::from(i < capacity_blocks % CACHE_SHARDS);
            let mut guard = shard.lock().unwrap();
            *guard = CacheShard {
                slots: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                cap,
            };
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.pressure.store(0, Ordering::Relaxed);
        self.prefetched.store(0, Ordering::Relaxed);
        self.prefetched_hits.store(0, Ordering::Relaxed);
    }

    fn record_insert_outcome(&self, outcome: InsertOutcome) {
        if outcome.evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.second_chances_revoked > 0 {
            self.pressure
                .fetch_add(outcome.second_chances_revoked, Ordering::Relaxed);
        }
    }

    /// Copies the cached page for `key` into `dest`, or loads it with
    /// `load`, caches a copy, and leaves the loaded page in `dest`.
    /// Returns where the page came from (always `CacheHit`,
    /// `PrefetchedHit` or `CacheMiss`).
    fn get_or_load(
        &self,
        key: u64,
        dest: &mut Vec<u32>,
        load: impl FnOnce(&mut Vec<u32>) -> Result<()>,
    ) -> Result<PageOrigin> {
        // Consecutive block ids land in different shards, so the engine's
        // contiguous-range shard workers spread over all locks.
        let shard = &self.shards[(key % CACHE_SHARDS as u64) as usize];
        {
            let mut guard = shard.lock().unwrap();
            if let Some(&i) = guard.map.get(&key) {
                let slot = &mut guard.slots[i];
                slot.referenced = true;
                let first_prefetched_hit = std::mem::take(&mut slot.prefetched);
                dest.clear();
                dest.extend_from_slice(&slot.page);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(if first_prefetched_hit {
                    self.prefetched_hits.fetch_add(1, Ordering::Relaxed);
                    PageOrigin::PrefetchedHit
                } else {
                    PageOrigin::CacheHit
                });
            }
        }
        // Load with the shard lock RELEASED: misses on different pages
        // proceed fully in parallel. Two racing readers of the same page
        // may both hit the disk; that is benign (whoever inserts second
        // finds the key present and skips the insert).
        load(dest)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.lock().unwrap();
        if !guard.map.contains_key(&key) {
            let outcome = guard.insert(key, dest.clone(), false);
            drop(guard);
            self.record_insert_outcome(outcome);
        }
        Ok(PageOrigin::CacheMiss)
    }

    /// Readahead-side entry: loads the page for `key` into the cache if
    /// it is not already present, marking the slot prefetched. Unlike
    /// [`Self::get_or_load`] this counts neither a hit nor a miss —
    /// prefetch traffic must not distort demand hit rates — only
    /// `pages_prefetched`. Returns whether a page was actually loaded.
    fn prefetch(
        &self,
        key: u64,
        scratch: &mut Vec<u32>,
        load: impl FnOnce(&mut Vec<u32>) -> Result<()>,
    ) -> Result<bool> {
        let shard = &self.shards[(key % CACHE_SHARDS as u64) as usize];
        {
            let guard = shard.lock().unwrap();
            if guard.cap == 0 || guard.map.contains_key(&key) {
                return Ok(false);
            }
        }
        // Same lock discipline as the demand path: fetch with the shard
        // lock released; racing demand reads of the same page may
        // duplicate the disk fetch, which is benign.
        load(scratch)?;
        let mut guard = shard.lock().unwrap();
        if guard.map.contains_key(&key) {
            // A demand read won the race: that page is already counted
            // (as a miss) and must not be re-flagged prefetched.
            return Ok(false);
        }
        let outcome = guard.insert(key, scratch.clone(), true);
        // Count the page BEFORE releasing the shard lock: a demand hit
        // on this page can only happen after acquiring the same lock, so
        // its `prefetched_hits` increment is ordered after this one —
        // `prefetched_hits <= pages_prefetched` holds for any observer
        // synchronized with a hit (counting after the unlock would let a
        // racing hit make a stats snapshot violate the invariant).
        self.prefetched.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        self.record_insert_outcome(outcome);
        Ok(true)
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pressure: self.pressure.load(Ordering::Relaxed),
            pages_prefetched: self.prefetched.load(Ordering::Relaxed),
            prefetched_hits: self.prefetched_hits.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------- backend

/// Positioned-read file handle: on Unix, `pread` through
/// `FileExt::read_exact_at` needs no lock at all, so concurrent shard
/// workers overlap their disk fetches; elsewhere a mutexed seek+read
/// fallback keeps the code portable.
#[derive(Debug)]
struct PageFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl PageFile {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            PageFile { file }
        }
        #[cfg(not(unix))]
        {
            PageFile {
                file: Mutex::new(file),
            }
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, off)
        }
        #[cfg(not(unix))]
        {
            let mut f = self.file.lock().unwrap();
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(buf)
        }
    }
}

/// The shared, immutable heart of a [`FileBackend`]: everything both the
/// demand read path and the readahead workers need. Lives behind an
/// `Arc` so the workers (plain `std::thread`s, which need `'static`
/// captures) can outlive any particular borrow of the backend.
#[derive(Debug)]
struct FileInner {
    file: PageFile,
    schema: Schema,
    layout: BlockLayout,
    /// Offset of the first page (= header length).
    data_off: u64,
    /// Bytes of one attribute's page region.
    attr_stride: u64,
    cache: BlockCache,
    /// Simulated extra latency per page *fetch from the medium*, in
    /// nanoseconds (0 = off). Unlike the reader-side
    /// [`crate::io::BlockReader::with_simulated_latency`] (which charges
    /// every block access), this models a slow storage medium: cache
    /// hits skip it, and readahead workers absorb it in the background —
    /// exactly the cost structure prefetching exists to hide, so
    /// experiments can reproduce disk-like regimes on a page-cached
    /// file. Implemented as a blocking `sleep`, like real I/O: the core
    /// is released, not burned.
    medium_latency_ns: AtomicU64,
}

impl FileInner {
    /// Reads one page from disk into `dest`, verifying its checksum.
    fn load_page(&self, attr: usize, b: usize, dest: &mut Vec<u32>) -> Result<()> {
        let latency = self.medium_latency_ns.load(Ordering::Relaxed);
        if latency > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(latency));
        }
        let block_len = self.layout.block_len(b);
        let page_bytes = block_len * 4 + PAGE_CHECKSUM_BYTES as usize;
        let off = self.data_off
            + attr as u64 * self.attr_stride
            + b as u64 * (self.layout.tuples_per_block() as u64 * 4 + PAGE_CHECKSUM_BYTES);
        let mut buf = vec![0u8; page_bytes];
        self.file.read_exact_at(&mut buf, off)?;
        let (codes, ck) = buf.split_at(block_len * 4);
        let stored = u64::from_le_bytes(ck.try_into().unwrap());
        let computed = fnv1a64(page_basis(attr, b), codes);
        if stored != computed {
            return Err(StoreError::Corrupt {
                attr,
                block: b,
                detail: format!("checksum mismatch (stored {stored:#x}, computed {computed:#x})"),
            });
        }
        dest.clear();
        dest.reserve(block_len);
        for chunk in codes.chunks_exact(4) {
            dest.push(u32::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(())
    }

    /// Warms the cache with every attribute page of block `b`. Failures
    /// are deliberately swallowed: a prefetch must never take a backend
    /// down, and a corrupt page will surface — as the proper
    /// [`StoreError::Corrupt`] — on the demand read that needs it.
    fn prefetch_block(&self, b: usize, scratch: &mut Vec<u32>) {
        for attr in 0..self.schema.len() {
            let key = page_key(attr, b);
            let _ = self
                .cache
                .prefetch(key, scratch, |dest| self.load_page(attr, b, dest));
        }
    }
}

/// The cache key of one attribute page.
fn page_key(attr: usize, b: usize) -> u64 {
    ((attr as u64) << 32) | b as u64
}

/// Hint queue between [`StorageBackend::prefetch`] callers and the
/// readahead workers: bounded FIFO of block runs plus a shutdown flag.
#[derive(Debug)]
struct PrefetchQueue {
    state: Mutex<PrefetchState>,
    cv: Condvar,
}

#[derive(Debug)]
struct PrefetchState {
    hints: VecDeque<Range<usize>>,
    shutdown: bool,
}

impl PrefetchQueue {
    fn new() -> Self {
        PrefetchQueue {
            state: Mutex::new(PrefetchState {
                hints: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a hint, dropping the oldest one under backlog (hints are
    /// advisory; see [`PREFETCH_QUEUE_HINTS`]).
    fn push(&self, hint: Range<usize>) {
        let mut s = self.state.lock().unwrap();
        if s.shutdown {
            return;
        }
        if s.hints.len() >= PREFETCH_QUEUE_HINTS {
            s.hints.pop_front();
        }
        s.hints.push_back(hint);
        drop(s);
        self.cv.notify_one();
    }

    /// Blocks for the next hint; `None` once shutdown is requested.
    fn pop(&self) -> Option<Range<usize>> {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.shutdown {
                return None;
            }
            if let Some(h) = s.hints.pop_front() {
                return Some(h);
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Requests shutdown: pending hints are abandoned and all workers
    /// wake to exit (each finishes at most its current hint).
    ///
    /// Poison-tolerant: this runs from [`FileBackend`]'s `Drop`, so if
    /// a readahead worker ever panicked while holding the lock, an
    /// `unwrap` here would panic *inside drop* — a double panic and
    /// process abort when the backend is dropped during an unwind. A
    /// poisoned hint queue is still safe to tear down: the flag and
    /// queue are plain data.
    fn shutdown(&self) {
        let mut s = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        s.shutdown = true;
        s.hints.clear();
        drop(s);
        self.cv.notify_all();
    }
}

/// The running readahead pool of one backend.
#[derive(Debug)]
struct PrefetchPool {
    queue: Arc<PrefetchQueue>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PrefetchPool {
    fn spawn(inner: &Arc<FileInner>, workers: usize) -> Self {
        let queue = Arc::new(PrefetchQueue::new());
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(inner);
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut scratch = Vec::new();
                    while let Some(hint) = queue.pop() {
                        for b in hint {
                            inner.prefetch_block(b, &mut scratch);
                        }
                    }
                })
            })
            .collect();
        PrefetchPool {
            queue,
            workers: handles,
        }
    }

    fn shutdown(&mut self) {
        self.queue.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A read-only [`StorageBackend`] over a block file written by
/// [`write_table`], with a bounded block cache and a demand-aware
/// readahead pool (see the [module docs](self)).
///
/// Cloning is not supported; share one backend across threads by
/// reference (all methods take `&self`).
#[derive(Debug)]
pub struct FileBackend {
    inner: Arc<FileInner>,
    /// `None` when prefetching is disabled
    /// ([`Self::with_prefetch_workers`]`(0)`).
    prefetch: Option<PrefetchPool>,
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        if let Some(pool) = &mut self.prefetch {
            pool.shutdown();
        }
    }
}

impl FileBackend {
    /// Opens a block file, validating its header and overall geometry,
    /// with the default cache capacity ([`DEFAULT_CACHE_BLOCKS`]) and
    /// readahead pool ([`DEFAULT_PREFETCH_WORKERS`]).
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = File::open(path)?;
        let mut header = vec![0u8; 8 + 4 + 8 + 4];
        file.read_exact(&mut header)
            .map_err(|_| StoreError::Format("truncated header".into()))?;
        if &header[..8] != MAGIC {
            return Err(StoreError::Format("bad magic".into()));
        }
        let tuples_per_block = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let n_rows = u64::from_le_bytes(header[12..20].try_into().unwrap());
        let n_attrs = u32::from_le_bytes(header[20..24].try_into().unwrap()) as usize;
        if tuples_per_block == 0 {
            return Err(StoreError::Format("zero block size".into()));
        }
        if n_attrs == 0 || n_attrs > u16::MAX as usize {
            return Err(StoreError::Format(format!(
                "implausible attr count {n_attrs}"
            )));
        }
        if n_rows > u32::MAX as u64 * tuples_per_block as u64 {
            return Err(StoreError::Format("row count overflows block ids".into()));
        }
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let mut len_buf = [0u8; 2];
            file.read_exact(&mut len_buf)
                .map_err(|_| StoreError::Format("truncated attribute table".into()))?;
            header.extend_from_slice(&len_buf);
            let name_len = u16::from_le_bytes(len_buf) as usize;
            let mut rest = vec![0u8; name_len + 4];
            file.read_exact(&mut rest)
                .map_err(|_| StoreError::Format("truncated attribute table".into()))?;
            header.extend_from_slice(&rest);
            let name = std::str::from_utf8(&rest[..name_len])
                .map_err(|_| StoreError::Format("attribute name is not UTF-8".into()))?
                .to_string();
            let cardinality = u32::from_le_bytes(rest[name_len..].try_into().unwrap());
            attrs.push(AttrDef::new(name, cardinality));
        }
        let mut ck_buf = [0u8; 8];
        file.read_exact(&mut ck_buf)
            .map_err(|_| StoreError::Format("truncated header checksum".into()))?;
        let stored = u64::from_le_bytes(ck_buf);
        let computed = fnv1a64(FNV_BASIS, &header);
        if stored != computed {
            return Err(StoreError::Format(format!(
                "header checksum mismatch (stored {stored:#x}, computed {computed:#x})"
            )));
        }
        let data_off = header.len() as u64 + 8;
        let layout = BlockLayout::new(n_rows as usize, tuples_per_block);
        let nb = layout.num_blocks() as u64;
        // Checked arithmetic throughout: these values come from the file,
        // and a crafted header must yield a Format error, not an
        // overflow panic.
        let attr_stride = n_rows
            .checked_mul(4)
            .and_then(|codes| codes.checked_add(nb.checked_mul(PAGE_CHECKSUM_BYTES)?))
            .ok_or_else(|| StoreError::Format("geometry overflows u64".into()))?;
        let expected_len = (n_attrs as u64)
            .checked_mul(attr_stride)
            .and_then(|pages| pages.checked_add(data_off))
            .ok_or_else(|| StoreError::Format("geometry overflows u64".into()))?;
        let actual_len = file.metadata()?.len();
        if actual_len != expected_len {
            return Err(StoreError::Format(format!(
                "file is {actual_len} bytes, geometry requires {expected_len}"
            )));
        }
        let inner = Arc::new(FileInner {
            file: PageFile::new(file),
            schema: Schema::new(attrs),
            layout,
            data_off,
            attr_stride,
            cache: BlockCache::new(DEFAULT_CACHE_BLOCKS),
            medium_latency_ns: AtomicU64::new(0),
        });
        let prefetch = (DEFAULT_PREFETCH_WORKERS > 0)
            .then(|| PrefetchPool::spawn(&inner, DEFAULT_PREFETCH_WORKERS));
        Ok(FileBackend { inner, prefetch })
    }

    /// Writes `table` to `path` and opens it — the one-call persistence
    /// path used by preprocessing pipelines.
    pub fn create(path: &Path, table: &Table, tuples_per_block: usize) -> Result<Self> {
        write_table(path, table, tuples_per_block)?;
        Self::open(path)
    }

    /// Rebounds the block cache at `capacity_blocks` pages, dropping
    /// every cached page and resetting cache statistics.
    pub fn with_cache_blocks(self, capacity_blocks: usize) -> Self {
        self.inner.cache.reset(capacity_blocks);
        self
    }

    /// Sets a simulated per-page *medium* latency in nanoseconds: every
    /// page fetch from the file — demand miss or readahead — blocks
    /// (sleeps, releasing the core, like real I/O) this long before
    /// reading; cache hits pay nothing. Unlike the reader-side
    /// [`crate::io::BlockReader::with_simulated_latency`] this models a
    /// slow *medium*, which is exactly the cost prefetching can hide —
    /// use it to reproduce disk-like regimes on a page-cached file.
    /// `0` turns it off.
    pub fn with_simulated_medium_latency_ns(self, ns: u64) -> Self {
        self.inner.medium_latency_ns.store(ns, Ordering::Relaxed);
        self
    }

    /// Resizes the readahead pool to `workers` background threads
    /// (`0` disables prefetching entirely: hints are dropped at the
    /// backend boundary). The default is [`DEFAULT_PREFETCH_WORKERS`].
    pub fn with_prefetch_workers(mut self, workers: usize) -> Self {
        if let Some(pool) = &mut self.prefetch {
            pool.shutdown();
        }
        self.prefetch = (workers > 0).then(|| PrefetchPool::spawn(&self.inner, workers));
        self
    }

    /// Cache hit/miss/eviction/prefetch counters since creation (or the
    /// last [`Self::with_cache_blocks`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }
}

impl StorageBackend for FileBackend {
    fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    fn layout(&self) -> BlockLayout {
        self.inner.layout
    }

    fn read_block_into(&self, b: usize, attr: usize, out: &mut Vec<u32>) -> Result<PageOrigin> {
        let inner = &*self.inner;
        assert!(attr < inner.schema.len(), "attribute {attr} out of range");
        assert!(b < inner.layout.num_blocks(), "block {b} out of range");
        inner.cache.get_or_load(page_key(attr, b), out, |dest| {
            inner.load_page(attr, b, dest)
        })
    }

    fn prefetch(&self, blocks: Range<usize>) {
        let Some(pool) = &self.prefetch else {
            return;
        };
        // Clamp rather than assert: hints are advisory and may be
        // computed from slightly stale state.
        let clamped = blocks.start.min(self.inner.layout.num_blocks())
            ..blocks.end.min(self.inner.layout.num_blocks());
        if !clamped.is_empty() {
            pool.queue.push(clamped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    static UNIQ: AtomicUsize = AtomicUsize::new(0);

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fastmatch_file_{}_{}_{}.fmb",
            tag,
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn table(rows: usize) -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 7), AttrDef::new("x", 3)]);
        let z: Vec<u32> = (0..rows as u32).map(|r| r.wrapping_mul(13) % 7).collect();
        let x: Vec<u32> = (0..rows as u32).map(|r| r.wrapping_mul(5) % 3).collect();
        Table::new(schema, vec![z, x])
    }

    #[test]
    fn prefetch_queue_shutdown_survives_poison() {
        // Poison the hint-queue mutex the way a panicking readahead
        // worker would, then shut down: this path runs from
        // `FileBackend::drop`, where a second panic aborts the process.
        let q = Arc::new(PrefetchQueue::new());
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let _guard = q2.state.lock().unwrap();
            panic!("simulated readahead worker panic");
        });
        assert!(worker.join().is_err(), "worker must poison the lock");
        assert!(q.state.is_poisoned());
        q.shutdown();
        let s = match q.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        assert!(s.shutdown, "shutdown flag must be set despite poison");
        assert!(s.hints.is_empty());
    }

    #[test]
    fn roundtrip_preserves_all_pages() {
        let t = table(103);
        let path = tmp_path("roundtrip");
        let be = FileBackend::create(&path, &t, 10).unwrap();
        assert_eq!(be.schema().len(), 2);
        assert_eq!(be.schema().attr(0).name, "z");
        assert_eq!(be.cardinality(0), 7);
        assert_eq!(be.n_rows(), 103);
        let layout = be.layout();
        let mut buf = Vec::new();
        for a in 0..2 {
            for b in 0..layout.num_blocks() {
                be.read_block_into(b, a, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), &t.column(a)[layout.rows_of_block(b)]);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = Table::new(Schema::new(vec![AttrDef::new("a", 1)]), vec![vec![]]);
        let path = tmp_path("empty");
        let be = FileBackend::create(&path, &t, 16).unwrap();
        assert_eq!(be.n_rows(), 0);
        assert_eq!(be.layout().num_blocks(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_page_checksum_is_an_error_not_a_panic() {
        let t = table(64);
        let path = tmp_path("corrupt");
        write_table(&path, &t, 8).unwrap();
        // Flip the final byte: inside the last page's checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let be = FileBackend::open(&path).unwrap();
        let layout = be.layout();
        let mut buf = Vec::new();
        // Untouched page still reads fine…
        be.read_block_into(0, 0, &mut buf).unwrap();
        // …the damaged one surfaces Corrupt.
        let err = be
            .read_block_into(layout.num_blocks() - 1, 1, &mut buf)
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { attr: 1, .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_header_is_rejected_at_open() {
        let t = table(16);
        let path = tmp_path("badheader");
        write_table(&path, &t, 8).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x01; // tuples_per_block field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileBackend::open(&path),
            Err(StoreError::Format(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected_at_open() {
        let t = table(40);
        let path = tmp_path("trunc");
        write_table(&path, &t, 8).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            FileBackend::open(&path),
            Err(StoreError::Format(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp_path("magic");
        std::fs::write(&path, b"NOTAFILExxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            FileBackend::open(&path),
            Err(StoreError::Format(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cache_hits_on_rereads_and_stays_bounded() {
        let t = table(400); // 50 blocks of 8 per attr
        let path = tmp_path("cache");
        let be = FileBackend::create(&path, &t, 8)
            .unwrap()
            .with_cache_blocks(16);
        let mut buf = Vec::new();
        for b in 0..50 {
            be.read_block_into(b, 0, &mut buf).unwrap();
        }
        let s1 = be.cache_stats();
        assert_eq!(s1.misses, 50);
        assert_eq!(s1.hits, 0);
        assert!(
            s1.evictions > 0,
            "a 16-page cache must evict under 50 pages"
        );
        // A hot block re-read within capacity hits.
        be.read_block_into(49, 0, &mut buf).unwrap();
        let s2 = be.cache_stats();
        assert_eq!(s2.hits, 1);
        // Data stays correct through eviction churn.
        for b in (0..50).rev() {
            be.read_block_into(b, 0, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), &t.column(0)[be.layout().rows_of_block(b)]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        let t = table(256);
        let path = tmp_path("concurrent");
        let be = FileBackend::create(&path, &t, 8)
            .unwrap()
            .with_cache_blocks(8);
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let be = &be;
                let t = &t;
                scope.spawn(move || {
                    let layout = be.layout();
                    let mut buf = Vec::new();
                    for round in 0..20 {
                        for b in 0..layout.num_blocks() {
                            let a = (b + w + round) % 2;
                            be.read_block_into(b, a, &mut buf).unwrap();
                            assert_eq!(buf.as_slice(), &t.column(a)[layout.rows_of_block(b)]);
                        }
                    }
                });
            }
        });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crafted_overflowing_header_is_rejected_not_panicking() {
        // A header whose geometry overflows u64 (valid checksum and all)
        // must yield a Format error — never an arithmetic panic.
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&u32::MAX.to_le_bytes()); // tuples_per_block
        header.extend_from_slice(&(1u64 << 63).to_le_bytes()); // n_rows
        header.extend_from_slice(&1u32.to_le_bytes()); // n_attrs
        header.extend_from_slice(&1u16.to_le_bytes());
        header.extend_from_slice(b"z");
        header.extend_from_slice(&4u32.to_le_bytes());
        header.extend_from_slice(&fnv1a64(FNV_BASIS, &header).to_le_bytes());
        let path = tmp_path("overflow");
        std::fs::write(&path, &header).unwrap();
        assert!(matches!(
            FileBackend::open(&path),
            Err(StoreError::Format(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    /// Polls until the backend's prefetched-page counter reaches `want`
    /// (readahead is asynchronous; generous timeout, fails loudly).
    fn wait_for_prefetched(be: &FileBackend, want: u64) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while be.cache_stats().pages_prefetched < want {
            assert!(
                std::time::Instant::now() < deadline,
                "prefetcher stalled: {} of {want} pages after 10s",
                be.cache_stats().pages_prefetched
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn prefetch_warms_cache_and_attributes_first_hits() {
        let t = table(160); // 20 blocks of 8 per attr
        let path = tmp_path("prefetch");
        let be = FileBackend::create(&path, &t, 8).unwrap();
        let nb = be.layout().num_blocks();
        be.prefetch(0..nb);
        wait_for_prefetched(&be, 2 * nb as u64);
        let s = be.cache_stats();
        assert_eq!(s.pages_prefetched, 2 * nb as u64);
        assert_eq!(s.misses, 0, "prefetch loads must not count as misses");
        assert_eq!(s.hits, 0, "prefetch loads must not count as hits");

        // Every demand read is now a first hit on a prefetched page…
        let mut buf = Vec::new();
        for b in 0..nb {
            let origin = be.read_block_into(b, 0, &mut buf).unwrap();
            assert_eq!(origin, PageOrigin::PrefetchedHit, "block {b}");
            assert_eq!(buf.as_slice(), &t.column(0)[be.layout().rows_of_block(b)]);
        }
        // …and a re-read is an ordinary cache hit (one attribution each).
        let origin = be.read_block_into(0, 0, &mut buf).unwrap();
        assert_eq!(origin, PageOrigin::CacheHit);
        let s = be.cache_stats();
        assert_eq!(s.prefetched_hits, nb as u64);
        assert_eq!(s.hits, nb as u64 + 1);
        assert_eq!(s.misses, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disabled_prefetch_drops_hints() {
        let t = table(80);
        let path = tmp_path("noprefetch");
        let be = FileBackend::create(&path, &t, 8)
            .unwrap()
            .with_prefetch_workers(0);
        be.prefetch(0..be.layout().num_blocks());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(be.cache_stats().pages_prefetched, 0);
        let mut buf = Vec::new();
        let origin = be.read_block_into(0, 0, &mut buf).unwrap();
        assert_eq!(origin, PageOrigin::CacheMiss);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_hints_are_clamped_not_fatal() {
        let t = table(80); // 10 blocks
        let path = tmp_path("clamphint");
        let be = FileBackend::create(&path, &t, 8).unwrap();
        let nb = be.layout().num_blocks();
        be.prefetch(nb..nb + 100); // entirely out of range: dropped
        be.prefetch(nb - 2..nb + 5); // clamped to the last two blocks
        wait_for_prefetched(&be, 4);
        assert_eq!(be.cache_stats().pages_prefetched, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prefetch_of_corrupt_page_is_silent_and_demand_read_reports_it() {
        let t = table(64);
        let path = tmp_path("prefetch_corrupt");
        write_table(&path, &t, 8).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // damage the very last page (attr 1)
        std::fs::write(&path, &bytes).unwrap();
        let be = FileBackend::open(&path).unwrap();
        let nb = be.layout().num_blocks();
        be.prefetch(0..nb);
        // The healthy pages arrive; the damaged one is silently skipped.
        wait_for_prefetched(&be, 2 * nb as u64 - 1);
        let mut buf = Vec::new();
        let err = be.read_block_into(nb - 1, 1, &mut buf).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { attr: 1, .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_temp() {
        let t = table(96);
        let path = tmp_path("atomic");
        let written = write_table_atomic(&path, &t, 8).unwrap();
        assert!(written > 0);
        assert!(
            !tmp_sibling(&path).exists(),
            "temp file must be renamed away"
        );
        let be = FileBackend::open(&path).unwrap();
        let mut buf = Vec::new();
        for b in 0..be.layout().num_blocks() {
            be.read_block_into(b, 0, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), &t.column(0)[be.layout().rows_of_block(b)]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_write_is_never_observed_at_the_final_name() {
        // Simulate the crash the atomic path exists for: a writer dies
        // mid-stream. With staging, the partial bytes sit at the temp
        // name — the final name stays absent, so no reader ever opens a
        // torn file there.
        let t = table(64);
        let path = tmp_path("atomic_partial");
        let full = {
            // A complete image, to truncate into a "partial write".
            let scratch = tmp_path("atomic_partial_src");
            write_table(&scratch, &t, 8).unwrap();
            let bytes = std::fs::read(&scratch).unwrap();
            std::fs::remove_file(&scratch).unwrap();
            bytes
        };
        std::fs::write(tmp_sibling(&path), &full[..full.len() / 2]).unwrap();
        assert!(!path.exists(), "torn write stays at the temp name");
        // A retry overwrites the stale temp file and publishes whole.
        write_table_atomic(&path, &t, 8).unwrap();
        assert!(!tmp_sibling(&path).exists());
        assert!(FileBackend::open(&path).is_ok());
        // Contrast: a pre-existing torn file AT the final name (the old
        // non-atomic hazard) is replaced atomically, never read back.
        std::fs::write(&path, &full[..full.len() / 3]).unwrap();
        assert!(
            FileBackend::open(&path).is_err(),
            "torn file must not validate"
        );
        write_table_atomic(&path, &t, 8).unwrap();
        let be = FileBackend::open(&path).unwrap();
        assert_eq!(be.n_rows(), 64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_failure_leaves_nothing_behind() {
        let t = table(32);
        let missing = std::env::temp_dir()
            .join(format!("fastmatch_no_such_dir_{}", std::process::id()))
            .join("seg.fmb");
        let err = write_table_atomic(&missing, &t, 8);
        assert!(err.is_err());
        assert!(!missing.exists());
        assert!(!tmp_sibling(&missing).exists());
    }

    #[test]
    fn page_checksums_are_position_keyed() {
        assert_ne!(page_basis(0, 1), page_basis(1, 0));
        assert_ne!(
            fnv1a64(page_basis(0, 0), b"abc"),
            fnv1a64(page_basis(0, 1), b"abc")
        );
    }
}
