//! The block I/O manager (paper §4.1).
//!
//! All data access goes through [`BlockReader`], which services requests at
//! block granularity and accounts for what was read versus skipped. A
//! reader runs over any [`StorageBackend`]: the in-memory table view (the
//! seed regime, with an optional simulated per-block latency so the
//! relative cost of I/O versus decision-making can be studied on fast
//! in-memory data) or a real backend such as
//! [`crate::file::FileBackend`], where block reads are disk reads through
//! a bounded cache and can fail ([`BlockReader::try_block_slices`]).
//!
//! For multi-core executors, [`BlockReader::shard`] splits the block
//! sequence into `n` disjoint contiguous ranges, each served by its own
//! [`ShardedBlockReader`] with independent [`IoStats`]; per-shard stats
//! aggregate back into a whole-run view with [`IoStats::merge`] (or `+=`).

use std::ops::Range;
use std::sync::Arc;

use crate::backend::{PageOrigin, StorageBackend};
use crate::block::BlockLayout;
use crate::error::Result;
use crate::table::Table;

/// I/O accounting: how much data a run touched, and — when the source is
/// a cached backend — how the shared cache treated this reader's pages.
///
/// The cache fields attribute *shared*-cache behavior to the reader that
/// experienced it: two queries hammering one [`crate::file::FileBackend`]
/// each see their own hit/miss split even though the cache itself only
/// keeps global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Blocks fully read.
    pub blocks_read: u64,
    /// Blocks skipped by block-selection policies.
    pub blocks_skipped: u64,
    /// Tuples delivered to the consumer.
    pub tuples_read: u64,
    /// Attribute pages this reader got from the backend's cache.
    pub pages_cache_hit: u64,
    /// Attribute pages this reader's requests fetched from the medium.
    pub pages_cache_miss: u64,
    /// Subset of [`Self::pages_cache_hit`] that were the *first* demand
    /// hit on a page the backend's readahead pool had prefetched — the
    /// per-reader measure of how much prefetching actually hid I/O for
    /// this run (a page only counts once; later re-hits are ordinary
    /// cache hits).
    pub pages_prefetch_hit: u64,
}

impl IoStats {
    /// Fraction of visited blocks that were read (1.0 when nothing was
    /// visited).
    pub fn read_fraction(&self) -> f64 {
        let total = self.blocks_read + self.blocks_skipped;
        if total == 0 {
            1.0
        } else {
            self.blocks_read as f64 / total as f64
        }
    }

    /// This reader's cache hit rate (1.0 when no cached backend was
    /// involved — an uncached source never misses).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.pages_cache_hit + self.pages_cache_miss;
        if total == 0 {
            1.0
        } else {
            self.pages_cache_hit as f64 / total as f64
        }
    }

    /// Folds another accounting record into this one (shard aggregation).
    pub fn merge(&mut self, other: IoStats) {
        self.blocks_read += other.blocks_read;
        self.blocks_skipped += other.blocks_skipped;
        self.tuples_read += other.tuples_read;
        self.pages_cache_hit += other.pages_cache_hit;
        self.pages_cache_miss += other.pages_cache_miss;
        self.pages_prefetch_hit += other.pages_prefetch_hit;
    }

    /// The per-field difference `self − other`; `other` must be an
    /// earlier snapshot of the same accounting stream (every counter
    /// monotone ≤ `self`'s). Used to charge one scheduling quantum's I/O
    /// to its query without zeroing the underlying reader.
    ///
    /// # Panics
    /// Panics — in **all** build profiles — if any field of `other`
    /// exceeds `self`'s. A misordered snapshot would otherwise wrap the
    /// `u64` subtraction and silently corrupt every downstream per-query
    /// attribution, so it must fail loudly rather than only under
    /// `debug_assertions`.
    pub fn since(&self, other: IoStats) -> IoStats {
        assert!(
            self.blocks_read >= other.blocks_read
                && self.blocks_skipped >= other.blocks_skipped
                && self.tuples_read >= other.tuples_read
                && self.pages_cache_hit >= other.pages_cache_hit
                && self.pages_cache_miss >= other.pages_cache_miss
                && self.pages_prefetch_hit >= other.pages_prefetch_hit,
            "IoStats::since with a later snapshot: {self:?} since {other:?}"
        );
        IoStats {
            blocks_read: self.blocks_read - other.blocks_read,
            blocks_skipped: self.blocks_skipped - other.blocks_skipped,
            tuples_read: self.tuples_read - other.tuples_read,
            pages_cache_hit: self.pages_cache_hit - other.pages_cache_hit,
            pages_cache_miss: self.pages_cache_miss - other.pages_cache_miss,
            pages_prefetch_hit: self.pages_prefetch_hit - other.pages_prefetch_hit,
        }
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, other: IoStats) {
        self.merge(other);
    }
}

impl std::iter::Sum for IoStats {
    fn sum<I: Iterator<Item = IoStats>>(iter: I) -> IoStats {
        let mut total = IoStats::default();
        for s in iter {
            total.merge(s);
        }
        total
    }
}

/// Where a reader's blocks come from. References or `Arc` handles only —
/// cheap to clone, so sharding and cloning a reader never duplicates
/// data.
#[derive(Debug, Clone)]
enum Source<'a> {
    /// Direct in-memory table access: `block_slices` is zero-copy.
    Mem(&'a Table),
    /// Any pluggable backend: pages are read into the reader's scratch
    /// buffers (and may fail).
    Backend(&'a dyn StorageBackend),
    /// A shared-ownership backend: the reader co-owns the source, so it
    /// can outlive the scope that created it (the seam live-table
    /// snapshots ride through — a query service can admit a query over a
    /// snapshot taken *inside* its serve scope).
    Shared(Arc<dyn StorageBackend>),
}

/// Synchronous block reader over a storage source with a fixed layout.
/// Cloning yields an independent reader over the same (shared, immutable)
/// data; use [`BlockReader::shard`] for views with zeroed statistics.
#[derive(Debug, Clone)]
pub struct BlockReader<'a> {
    source: Source<'a>,
    layout: BlockLayout,
    stats: IoStats,
    /// Simulated extra latency per block read, in nanoseconds (0 = off).
    latency_ns_per_block: u64,
    /// Scratch pages for backend reads (empty on the in-memory path).
    zbuf: Vec<u32>,
    xbuf: Vec<u32>,
}

impl<'a> BlockReader<'a> {
    /// Creates a reader over an in-memory `table` with the given layout.
    pub fn new(table: &'a Table, layout: BlockLayout) -> Self {
        assert_eq!(table.n_rows(), layout.n_rows(), "layout/table mismatch");
        BlockReader {
            source: Source::Mem(table),
            layout,
            stats: IoStats::default(),
            latency_ns_per_block: 0,
            zbuf: Vec::new(),
            xbuf: Vec::new(),
        }
    }

    /// Creates a reader over any [`StorageBackend`], taking the layout
    /// from the backend.
    pub fn over_backend(backend: &'a dyn StorageBackend) -> Self {
        BlockReader {
            layout: backend.layout(),
            source: Source::Backend(backend),
            stats: IoStats::default(),
            latency_ns_per_block: 0,
            zbuf: Vec::new(),
            xbuf: Vec::new(),
        }
    }

    /// Creates a reader that co-owns its backend: the `'static` twin of
    /// [`Self::over_backend`] for sources the caller cannot keep borrowed
    /// long enough — e.g. a live-table snapshot taken mid-serve and
    /// handed to scheduler tasks that outlive the submitting scope.
    pub fn over_shared(backend: Arc<dyn StorageBackend>) -> BlockReader<'static> {
        BlockReader {
            layout: backend.layout(),
            source: Source::Shared(backend),
            stats: IoStats::default(),
            latency_ns_per_block: 0,
            zbuf: Vec::new(),
            xbuf: Vec::new(),
        }
    }

    /// Enables a simulated per-block latency (busy-wait of `ns`
    /// nanoseconds on every block read), layered on top of whatever the
    /// source itself costs.
    pub fn with_simulated_latency(mut self, ns: u64) -> Self {
        self.latency_ns_per_block = ns;
        self
    }

    /// The layout in use.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Reads block `b`, invoking `visit(z_code, x_code)` for every tuple,
    /// where codes come from the two given attributes. Returns the number
    /// of tuples visited.
    ///
    /// # Panics
    /// Panics if the storage read fails (see [`Self::try_block_slices`]
    /// for the fallible path).
    #[inline]
    pub fn read_block_pair(
        &mut self,
        b: usize,
        z_attr: usize,
        x_attr: usize,
        mut visit: impl FnMut(u32, u32),
    ) -> usize {
        let (z, x) = self.block_slices(b, z_attr, x_attr);
        for (&zc, &xc) in z.iter().zip(x) {
            visit(zc, xc);
        }
        z.len()
    }

    /// Reads block `b`, returning the raw code slices of the two given
    /// attributes (aligned row-wise) — zero-copy on the in-memory path,
    /// served from the reader's scratch pages on backend paths.
    ///
    /// # Panics
    /// Panics if the storage read fails; hot loops that cannot propagate
    /// errors use this, everything else should prefer
    /// [`Self::try_block_slices`].
    #[inline]
    pub fn block_slices(&mut self, b: usize, z_attr: usize, x_attr: usize) -> (&[u32], &[u32]) {
        match self.try_block_slices(b, z_attr, x_attr) {
            Ok(pair) => pair,
            Err(e) => panic!("storage read of block {b} failed: {e}"),
        }
    }

    /// Fallible twin of [`Self::block_slices`]: storage-level failures
    /// (I/O errors, corrupt pages) surface as `Err` instead of a panic.
    /// Statistics are only updated on success.
    #[inline]
    pub fn try_block_slices(
        &mut self,
        b: usize,
        z_attr: usize,
        x_attr: usize,
    ) -> Result<(&[u32], &[u32])> {
        if self.latency_ns_per_block > 0 {
            busy_wait_ns(self.latency_ns_per_block);
        }
        let backend: &dyn StorageBackend = match &self.source {
            Source::Mem(table) => {
                let table: &'a Table = table;
                let range = self.layout.rows_of_block(b);
                let z = &table.column(z_attr)[range.clone()];
                let x = &table.column(x_attr)[range];
                self.stats.blocks_read += 1;
                self.stats.tuples_read += z.len() as u64;
                return Ok((z, x));
            }
            Source::Backend(backend) => *backend,
            Source::Shared(backend) => &**backend,
        };
        let origins =
            backend.read_block_pair_into(b, z_attr, x_attr, &mut self.zbuf, &mut self.xbuf)?;
        for origin in origins {
            match origin {
                PageOrigin::CacheHit => self.stats.pages_cache_hit += 1,
                PageOrigin::PrefetchedHit => {
                    // A prefetched page's first demand hit is still
                    // a cache hit; the extra counter attributes it
                    // to the readahead pipeline.
                    self.stats.pages_cache_hit += 1;
                    self.stats.pages_prefetch_hit += 1;
                }
                PageOrigin::CacheMiss => self.stats.pages_cache_miss += 1,
                PageOrigin::Memory => {}
            }
        }
        self.stats.blocks_read += 1;
        self.stats.tuples_read += self.zbuf.len() as u64;
        Ok((&self.zbuf, &self.xbuf))
    }

    /// Records that block `b` was deliberately skipped.
    #[inline]
    pub fn skip_block(&mut self, _b: usize) {
        self.stats.blocks_skipped += 1;
    }

    /// Records `n` skipped blocks at once (used when a lookahead thread
    /// reports skips in bulk).
    #[inline]
    pub fn skip_blocks(&mut self, n: u64) {
        self.stats.blocks_skipped += n;
    }

    /// Returns shard `index` of `of`: an independent reader restricted to
    /// a contiguous range of blocks, with zeroed statistics. The `of`
    /// shards partition `0..num_blocks` exactly (sizes differ by at most
    /// one), so concurrent shard readers never touch the same block.
    ///
    /// # Panics
    /// Panics unless `index < of`.
    pub fn shard(&self, index: usize, of: usize) -> ShardedBlockReader<'a> {
        assert!(of > 0, "shard count must be positive");
        assert!(index < of, "shard index {index} out of {of}");
        let nb = self.layout.num_blocks();
        let base = nb / of;
        let rem = nb % of;
        let start = index * base + index.min(rem);
        let len = base + usize::from(index < rem);
        let mut inner = self.clone();
        inner.stats = IoStats::default();
        ShardedBlockReader {
            inner,
            blocks: start..start + len,
        }
    }
}

/// A [`BlockReader`] view restricted to one shard's contiguous block
/// range, created by [`BlockReader::shard`]. Accesses outside the range
/// panic, so disjointness across concurrent shard workers is enforced,
/// not just intended. Statistics are per shard; aggregate them with
/// [`IoStats::merge`].
#[derive(Debug, Clone)]
pub struct ShardedBlockReader<'a> {
    inner: BlockReader<'a>,
    blocks: Range<usize>,
}

impl<'a> ShardedBlockReader<'a> {
    /// The block ids this shard owns.
    pub fn blocks(&self) -> Range<usize> {
        self.blocks.clone()
    }

    /// Number of blocks in the shard.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether block `b` belongs to this shard.
    pub fn contains(&self, b: usize) -> bool {
        self.blocks.contains(&b)
    }

    /// The layout in use.
    pub fn layout(&self) -> &BlockLayout {
        self.inner.layout()
    }

    /// This shard's accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    /// Reads block `b` (which must belong to the shard), returning the raw
    /// code slices of the two given attributes. See
    /// [`BlockReader::block_slices`].
    ///
    /// # Panics
    /// Panics if `b` lies outside the shard's range, or if the storage
    /// read fails (see [`Self::try_block_slices`]).
    #[inline]
    pub fn block_slices(&mut self, b: usize, z_attr: usize, x_attr: usize) -> (&[u32], &[u32]) {
        assert!(
            self.blocks.contains(&b),
            "block {b} outside shard range {:?}",
            self.blocks
        );
        self.inner.block_slices(b, z_attr, x_attr)
    }

    /// Fallible twin of [`Self::block_slices`].
    ///
    /// # Panics
    /// Panics if `b` lies outside the shard's range (a caller bug, unlike
    /// a storage failure).
    #[inline]
    pub fn try_block_slices(
        &mut self,
        b: usize,
        z_attr: usize,
        x_attr: usize,
    ) -> Result<(&[u32], &[u32])> {
        assert!(
            self.blocks.contains(&b),
            "block {b} outside shard range {:?}",
            self.blocks
        );
        self.inner.try_block_slices(b, z_attr, x_attr)
    }

    /// Records that block `b` (which must belong to the shard) was
    /// deliberately skipped.
    ///
    /// # Panics
    /// Panics if `b` lies outside the shard's range.
    #[inline]
    pub fn skip_block(&mut self, b: usize) {
        assert!(
            self.blocks.contains(&b),
            "block {b} outside shard range {:?}",
            self.blocks
        );
        self.inner.skip_block(b);
    }

    /// Bulk twin of [`Self::skip_block`]: records a whole contiguous run
    /// of deliberately skipped blocks at once, with the same shard-range
    /// validation — so window-granular skip accounting from lookahead
    /// marking neither loops per block nor bypasses the range check via
    /// the inner reader. An empty range is a no-op.
    ///
    /// # Panics
    /// Panics if any block of a non-empty `blocks` lies outside the
    /// shard's range.
    #[inline]
    pub fn skip_blocks(&mut self, blocks: Range<usize>) {
        if blocks.is_empty() {
            return;
        }
        assert!(
            blocks.start >= self.blocks.start && blocks.end <= self.blocks.end,
            "blocks {blocks:?} outside shard range {:?}",
            self.blocks
        );
        self.inner.skip_blocks(blocks.len() as u64);
    }
}

fn busy_wait_ns(ns: u64) {
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 4), AttrDef::new("x", 4)]);
        let z: Vec<u32> = (0..20).map(|r| r % 4).collect();
        let x: Vec<u32> = (0..20).map(|r| (r / 5) % 4).collect();
        Table::new(schema, vec![z, x])
    }

    #[test]
    fn reads_deliver_aligned_pairs() {
        let t = table();
        let mut reader = BlockReader::new(&t, BlockLayout::new(20, 5));
        let mut seen = Vec::new();
        let n = reader.read_block_pair(1, 0, 1, |z, x| seen.push((z, x)));
        assert_eq!(n, 5);
        // block 1 covers rows 5..10: z = r % 4, x = 1
        let expected: Vec<(u32, u32)> = (5..10).map(|r| (r % 4, 1)).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn stats_track_reads_and_skips() {
        let t = table();
        let mut reader = BlockReader::new(&t, BlockLayout::new(20, 5));
        reader.read_block_pair(0, 0, 1, |_, _| {});
        reader.read_block_pair(2, 0, 1, |_, _| {});
        reader.skip_block(1);
        let s = reader.stats();
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.blocks_skipped, 1);
        assert_eq!(s.tuples_read, 10);
        assert!((s.read_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn short_tail_block() {
        let t = table();
        let mut reader = BlockReader::new(&t, BlockLayout::new(20, 7));
        let mut n_seen = 0;
        let n = reader.read_block_pair(2, 0, 1, |_, _| n_seen += 1);
        assert_eq!(n, 6); // rows 14..20
        assert_eq!(n_seen, 6);
    }

    #[test]
    fn empty_stats_read_fraction() {
        let t = table();
        let reader = BlockReader::new(&t, BlockLayout::new(20, 5));
        assert_eq!(reader.stats().read_fraction(), 1.0);
    }

    #[test]
    fn shards_partition_blocks_exactly() {
        let t = table();
        for nb_size in [3usize, 5, 7] {
            let reader = BlockReader::new(&t, BlockLayout::new(20, nb_size));
            let nb = reader.layout().num_blocks();
            for of in 1..=6usize {
                let mut covered = vec![false; nb];
                let mut prev_end = 0usize;
                for i in 0..of {
                    let s = reader.shard(i, of);
                    let r = s.blocks();
                    assert_eq!(r.start, prev_end, "shard {i}/{of} not contiguous");
                    prev_end = r.end;
                    for b in r {
                        assert!(!covered[b], "block {b} covered twice");
                        covered[b] = true;
                    }
                }
                assert_eq!(prev_end, nb);
                assert!(covered.iter().all(|&c| c), "of = {of}");
            }
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let t = table();
        let reader = BlockReader::new(&t, BlockLayout::new(20, 3)); // 7 blocks
        let sizes: Vec<usize> = (0..3).map(|i| reader.shard(i, 3).num_blocks()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert_eq!(
            *sizes.iter().max().unwrap() - *sizes.iter().min().unwrap(),
            1
        );
    }

    #[test]
    fn per_shard_stats_aggregate_to_sequential_totals() {
        let t = table();
        let layout = BlockLayout::new(20, 5); // 4 blocks
                                              // Sequential reference: read blocks 0, 2, 3; skip 1.
        let mut seq = BlockReader::new(&t, layout);
        for b in [0usize, 2, 3] {
            seq.block_slices(b, 0, 1);
        }
        seq.skip_block(1);
        // Sharded: 2 shards of 2 blocks, same read/skip pattern.
        let reader = BlockReader::new(&t, layout);
        let mut s0 = reader.shard(0, 2);
        let mut s1 = reader.shard(1, 2);
        s0.block_slices(0, 0, 1);
        s0.skip_block(1);
        s1.block_slices(2, 0, 1);
        s1.block_slices(3, 0, 1);
        let total: IoStats = [s0.stats(), s1.stats()].into_iter().sum();
        assert_eq!(total, seq.stats());
        let mut merged = s0.stats();
        merged += s1.stats();
        assert_eq!(merged, total);
    }

    #[test]
    fn shard_delivers_same_slices_as_whole_reader() {
        let t = table();
        let layout = BlockLayout::new(20, 7);
        let mut whole = BlockReader::new(&t, layout);
        let mut shard = BlockReader::new(&t, layout).shard(1, 3); // owns block 1
        let (wz, wx) = whole.block_slices(1, 0, 1);
        let (wz, wx) = (wz.to_vec(), wx.to_vec());
        let (sz, sx) = shard.block_slices(1, 0, 1);
        assert_eq!(wz, sz);
        assert_eq!(wx, sx);
    }

    #[test]
    #[should_panic(expected = "outside shard range")]
    fn shard_rejects_foreign_blocks() {
        let t = table();
        let mut s = BlockReader::new(&t, BlockLayout::new(20, 5)).shard(0, 2);
        s.block_slices(3, 0, 1);
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn shard_index_must_be_in_range() {
        let t = table();
        BlockReader::new(&t, BlockLayout::new(20, 5)).shard(2, 2);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let t = table();
        let layout = BlockLayout::new(20, 5);
        let mut reader = BlockReader::new(&t, layout);
        reader.block_slices(0, 0, 1);
        let snap = reader.stats();
        reader.block_slices(1, 0, 1);
        reader.skip_block(2);
        let delta = reader.stats().since(snap);
        assert_eq!(delta.blocks_read, 1);
        assert_eq!(delta.blocks_skipped, 1);
        assert_eq!(delta.tuples_read, 5);
    }

    /// The monotonicity guard must hold in *release* builds too: this
    /// test runs under every profile, and CI additionally executes it
    /// with `--release` — a wrapped subtraction instead of a panic here
    /// means per-query attribution is being silently corrupted.
    #[test]
    #[should_panic(expected = "later snapshot")]
    fn since_panics_on_misordered_snapshots_in_all_builds() {
        let earlier = IoStats::default();
        let later = IoStats {
            blocks_read: 3,
            ..IoStats::default()
        };
        let _ = earlier.since(later);
    }

    #[test]
    fn shard_skip_blocks_accounts_in_bulk() {
        let t = table();
        let layout = BlockLayout::new(20, 5); // 4 blocks
        let mut s = BlockReader::new(&t, layout).shard(0, 1);
        s.skip_blocks(1..4);
        s.skip_blocks(2..2); // empty: no-op, even though degenerate
        assert_eq!(s.stats().blocks_skipped, 3);
    }

    #[test]
    #[should_panic(expected = "outside shard range")]
    fn shard_skip_blocks_rejects_foreign_ranges() {
        let t = table();
        let mut s = BlockReader::new(&t, BlockLayout::new(20, 5)).shard(0, 2);
        s.skip_blocks(1..3); // block 2 belongs to shard 1
    }

    #[test]
    fn simulated_latency_slows_reads() {
        let t = table();
        let layout = BlockLayout::new(20, 5);
        let mut slow = BlockReader::new(&t, layout).with_simulated_latency(200_000);
        let start = std::time::Instant::now();
        for b in 0..4 {
            slow.read_block_pair(b, 0, 1, |_, _| {});
        }
        assert!(start.elapsed() >= std::time::Duration::from_nanos(4 * 200_000));
    }
}
