//! The block I/O manager (paper §4.1).
//!
//! All data access goes through [`BlockReader`], which services requests at
//! block granularity and accounts for what was read versus skipped. The
//! reader can inject a simulated per-block latency (busy-wait) so that the
//! relative cost of I/O versus decision-making — the motivation for the
//! asynchronous lookahead design — can be studied on fast in-memory data.

use crate::block::BlockLayout;
use crate::table::Table;

/// I/O accounting: how much data a run touched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Blocks fully read.
    pub blocks_read: u64,
    /// Blocks skipped by block-selection policies.
    pub blocks_skipped: u64,
    /// Tuples delivered to the consumer.
    pub tuples_read: u64,
}

impl IoStats {
    /// Fraction of visited blocks that were read (1.0 when nothing was
    /// visited).
    pub fn read_fraction(&self) -> f64 {
        let total = self.blocks_read + self.blocks_skipped;
        if total == 0 {
            1.0
        } else {
            self.blocks_read as f64 / total as f64
        }
    }
}

/// Synchronous block reader over a table with a fixed layout.
#[derive(Debug)]
pub struct BlockReader<'a> {
    table: &'a Table,
    layout: BlockLayout,
    stats: IoStats,
    /// Simulated extra latency per block read, in nanoseconds (0 = off).
    latency_ns_per_block: u64,
}

impl<'a> BlockReader<'a> {
    /// Creates a reader over `table` with the given layout.
    pub fn new(table: &'a Table, layout: BlockLayout) -> Self {
        assert_eq!(table.n_rows(), layout.n_rows(), "layout/table mismatch");
        BlockReader {
            table,
            layout,
            stats: IoStats::default(),
            latency_ns_per_block: 0,
        }
    }

    /// Enables a simulated per-block latency (busy-wait of `ns`
    /// nanoseconds on every block read).
    pub fn with_simulated_latency(mut self, ns: u64) -> Self {
        self.latency_ns_per_block = ns;
        self
    }

    /// The layout in use.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Reads block `b`, invoking `visit(z_code, x_code)` for every tuple,
    /// where codes come from the two given attributes. Returns the number
    /// of tuples visited.
    #[inline]
    pub fn read_block_pair(
        &mut self,
        b: usize,
        z_attr: usize,
        x_attr: usize,
        mut visit: impl FnMut(u32, u32),
    ) -> usize {
        if self.latency_ns_per_block > 0 {
            busy_wait_ns(self.latency_ns_per_block);
        }
        let range = self.layout.rows_of_block(b);
        let z = &self.table.column(z_attr)[range.clone()];
        let x = &self.table.column(x_attr)[range];
        for (&zc, &xc) in z.iter().zip(x) {
            visit(zc, xc);
        }
        self.stats.blocks_read += 1;
        self.stats.tuples_read += z.len() as u64;
        z.len()
    }

    /// Reads block `b`, returning the raw code slices of the two given
    /// attributes (aligned row-wise). The zero-copy variant of
    /// [`Self::read_block_pair`] used by batched consumers.
    #[inline]
    pub fn block_slices(&mut self, b: usize, z_attr: usize, x_attr: usize) -> (&[u32], &[u32]) {
        if self.latency_ns_per_block > 0 {
            busy_wait_ns(self.latency_ns_per_block);
        }
        let range = self.layout.rows_of_block(b);
        let z = &self.table.column(z_attr)[range.clone()];
        let x = &self.table.column(x_attr)[range];
        self.stats.blocks_read += 1;
        self.stats.tuples_read += z.len() as u64;
        (z, x)
    }

    /// Records that block `b` was deliberately skipped.
    #[inline]
    pub fn skip_block(&mut self, _b: usize) {
        self.stats.blocks_skipped += 1;
    }

    /// Records `n` skipped blocks at once (used when a lookahead thread
    /// reports skips in bulk).
    #[inline]
    pub fn skip_blocks(&mut self, n: u64) {
        self.stats.blocks_skipped += n;
    }
}

fn busy_wait_ns(ns: u64) {
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 4), AttrDef::new("x", 4)]);
        let z: Vec<u32> = (0..20).map(|r| r % 4).collect();
        let x: Vec<u32> = (0..20).map(|r| (r / 5) % 4).collect();
        Table::new(schema, vec![z, x])
    }

    #[test]
    fn reads_deliver_aligned_pairs() {
        let t = table();
        let mut reader = BlockReader::new(&t, BlockLayout::new(20, 5));
        let mut seen = Vec::new();
        let n = reader.read_block_pair(1, 0, 1, |z, x| seen.push((z, x)));
        assert_eq!(n, 5);
        // block 1 covers rows 5..10: z = r % 4, x = 1
        let expected: Vec<(u32, u32)> = (5..10).map(|r| (r % 4, 1)).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn stats_track_reads_and_skips() {
        let t = table();
        let mut reader = BlockReader::new(&t, BlockLayout::new(20, 5));
        reader.read_block_pair(0, 0, 1, |_, _| {});
        reader.read_block_pair(2, 0, 1, |_, _| {});
        reader.skip_block(1);
        let s = reader.stats();
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.blocks_skipped, 1);
        assert_eq!(s.tuples_read, 10);
        assert!((s.read_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn short_tail_block() {
        let t = table();
        let mut reader = BlockReader::new(&t, BlockLayout::new(20, 7));
        let mut n_seen = 0;
        let n = reader.read_block_pair(2, 0, 1, |_, _| n_seen += 1);
        assert_eq!(n, 6); // rows 14..20
        assert_eq!(n_seen, 6);
    }

    #[test]
    fn empty_stats_read_fraction() {
        let t = table();
        let reader = BlockReader::new(&t, BlockLayout::new(20, 5));
        assert_eq!(reader.stats().read_fraction(), 1.0);
    }

    #[test]
    fn simulated_latency_slows_reads() {
        let t = table();
        let layout = BlockLayout::new(20, 5);
        let mut slow = BlockReader::new(&t, layout).with_simulated_latency(200_000);
        let start = std::time::Instant::now();
        for b in 0..4 {
            slow.read_block_pair(b, 0, 1, |_, _| {});
        }
        assert!(start.elapsed() >= std::time::Duration::from_nanos(4 * 200_000));
    }
}
