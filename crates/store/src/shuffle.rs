//! Random-permutation preprocessing (paper §4.2, Challenge 1).
//!
//! FastMatch randomly permutes the tuples of the dataset once, up front.
//! After that, a *sequential* scan starting at any position yields tuples
//! in uniform-without-replacement order — random sampling at sequential-I/O
//! cost. The same trick is used by other online-AQP systems the paper cites.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::table::Table;

/// Returns a uniformly random permutation of `0..n` (Fisher–Yates).
pub fn permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// Produces a new table whose rows are a seeded uniform permutation of the
/// input's rows (the same permutation applied to every column).
pub fn shuffle_table(table: &Table, seed: u64) -> Table {
    let perm = permutation(table.n_rows(), seed);
    apply_permutation(table, &perm)
}

/// Applies an explicit permutation: output row `i` is input row `perm[i]`.
pub fn apply_permutation(table: &Table, perm: &[u32]) -> Table {
    assert_eq!(perm.len(), table.n_rows(), "permutation length mismatch");
    let columns: Vec<Vec<u32>> = (0..table.schema().len())
        .map(|a| {
            let src = table.column(a);
            perm.iter().map(|&r| src[r as usize]).collect()
        })
        .collect();
    Table::new(table.schema().clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;

    fn seq_table(n: usize) -> Table {
        let schema =
            crate::schema::Schema::new(vec![AttrDef::new("a", n as u32), AttrDef::new("b", 2)]);
        Table::new(
            schema,
            vec![
                (0..n as u32).collect(),
                (0..n as u32).map(|v| v % 2).collect(),
            ],
        )
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(1000, 42);
        let mut seen = vec![false; 1000];
        for &v in &p {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        assert_eq!(permutation(100, 7), permutation(100, 7));
        assert_ne!(permutation(100, 7), permutation(100, 8));
    }

    #[test]
    fn shuffle_preserves_row_multiset_and_alignment() {
        let t = seq_table(500);
        let s = shuffle_table(&t, 3);
        assert_eq!(s.n_rows(), 500);
        // Row alignment across columns must be preserved: b == a % 2.
        for r in 0..500 {
            assert_eq!(s.code(1, r), s.code(0, r) % 2);
        }
        // Multiset of column-a values preserved.
        let mut vals: Vec<u32> = s.column(0).to_vec();
        vals.sort_unstable();
        assert_eq!(vals, (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_actually_moves_rows() {
        let t = seq_table(500);
        let s = shuffle_table(&t, 3);
        let moved = (0..500).filter(|&r| s.code(0, r) != r as u32).count();
        assert!(moved > 400, "only {moved} rows moved");
    }

    #[test]
    fn apply_identity_is_noop() {
        let t = seq_table(10);
        let ident: Vec<u32> = (0..10).collect();
        assert_eq!(apply_permutation(&t, &ident), t);
    }

    #[test]
    fn shuffled_prefix_looks_uniform() {
        // A prefix of the shuffled table should contain each value class in
        // roughly its global proportion — the property HistSim's stage-1
        // hypergeometric model relies on.
        let n = 20_000;
        let t = seq_table(n);
        let s = shuffle_table(&t, 11);
        let prefix = 2_000;
        let odd = (0..prefix).filter(|&r| s.code(1, r) == 1).count();
        let frac = odd as f64 / prefix as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "permutation length mismatch")]
    fn wrong_length_permutation_panics() {
        apply_permutation(&seq_table(5), &[0, 1, 2]);
    }
}
